//! Union filesystem modelled on Aufs, as used by Maxoid (§4.2 of the paper).
//!
//! A union presents an ordered stack of *branches* (directories in the
//! backing [`Store`]) through a single mount point. The highest-priority
//! branch that contains a name wins; only the top branch is writable, so
//! every write is sandboxed there. Modifying a file that lives in a lower
//! branch triggers **copy-up** (whole-file copy into the writable branch),
//! and deleting a lower-branch file creates a **whiteout** marker
//! (`.wh.<name>`) in the writable branch that hides the lower entry.
//!
//! Two Maxoid-specific details are reproduced here:
//!
//! - The paper modifies Aufs to *always allow read* so that a delegate
//!   (different UID) can read its initiator's private branch. This is the
//!   [`Union::maxoid_access`] flag; the permission bypass itself is applied
//!   by the [`crate::fs::Vfs`] layer.
//! - Copy-up is file-granularity, which is why the paper's Table 3 shows
//!   `append` as the worst case for delegates (the whole original file is
//!   copied before the append). The cost model emerges naturally here.

use crate::cred::{Mode, Uid};
use crate::error::{VfsError, VfsResult};
use crate::path::VPath;
use crate::store::{DirEntry, Metadata, Store};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Prefix used for whiteout marker files, matching Aufs.
pub const WHITEOUT_PREFIX: &str = ".wh.";

/// Prefix used for append-delta files in block-granularity copy-up mode.
pub const APPEND_DELTA_PREFIX: &str = ".ad.";

/// Copy-up granularity for appends to lower-branch files.
///
/// The paper (§7.2.1) notes that append is Maxoid's worst case because
/// Aufs copies the *whole file* before appending, and that "the overhead
/// could be reduced if a block-level copy-on-write file system were
/// used". [`CopyUpGranularity::Block`] implements that alternative: an
/// append to a lower-branch file writes only the appended bytes into a
/// per-file delta in the writable branch; reads merge base + delta. The
/// ablation bench compares both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CopyUpGranularity {
    /// Aufs behaviour: whole-file copy into the writable branch (paper
    /// default).
    #[default]
    File,
    /// Append-delta behaviour: only new bytes are written; reads merge.
    Block,
}

/// One branch of a union mount.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// Directory in the backing store that holds this branch's files.
    pub host: VPath,
    /// True when this branch accepts writes. Only the first (index 0)
    /// branch may be writable.
    pub writable: bool,
}

impl Branch {
    /// Creates a read-write branch.
    pub fn rw(host: VPath) -> Self {
        Branch { host, writable: true }
    }

    /// Creates a read-only branch.
    pub fn ro(host: VPath) -> Self {
        Branch { host, writable: false }
    }
}

/// An Aufs-style union over an ordered list of branches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Union {
    branches: Vec<Branch>,
    /// Maxoid's "always allow read" modification (§4.2): when set, the VFS
    /// layer skips mode checks for reads through this mount, and permits
    /// redirected writes whose copies land in the writable branch.
    pub maxoid_access: bool,
    /// How appends to lower-branch files are copied up.
    pub granularity: CopyUpGranularity,
    /// Memoized path resolutions, validated against the store's
    /// visibility generation.
    cache: ResolveCache,
    /// The store visibility-generation shards covering this union's
    /// branch hosts (sorted, deduped). Cache validation stamps only these
    /// counters, so namespace churn in other tenants' branches never
    /// invalidates this union's resolutions.
    gen_shards: Vec<usize>,
}

/// Entry cap for the resolution cache; cleared wholesale when full.
const RESOLVE_CACHE_CAP: usize = 1024;

/// Per-union memo of [`Union::effective`] results.
///
/// Maps a mount-relative path to the branch resolution (`Some(Located)`
/// or a cached negative) stamped with the [`Store::visibility_gen`] it
/// was computed under; a stale stamp is a miss. Namespaces holding the
/// union are shared across threads during concurrent reads, so the map
/// sits behind a `Mutex` and the counters are atomics. The cache is
/// runtime state, not filesystem state: clones start cold and equality
/// ignores it (only the enabled flag is configuration, and it defaults
/// on everywhere).
#[derive(Debug, Default)]
struct ResolveCache {
    disabled: AtomicBool,
    map: Mutex<HashMap<String, (Option<Located>, u64)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Clone for ResolveCache {
    fn clone(&self) -> Self {
        ResolveCache {
            disabled: AtomicBool::new(self.disabled.load(Ordering::Relaxed)),
            ..Default::default()
        }
    }
}

impl PartialEq for ResolveCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for ResolveCache {}

impl ResolveCache {
    /// `Some(resolution)` on a valid hit, `None` on miss or when
    /// disabled. Counters (and their obs mirrors) track only enabled
    /// lookups.
    fn lookup(&self, rel: &str, gen: u64) -> Option<Option<Located>> {
        if self.disabled.load(Ordering::Relaxed) {
            return None;
        }
        if let Some((loc, stamp)) = self.map.lock().expect("resolve cache poisoned").get(rel) {
            if *stamp == gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                maxoid_obs::counter_add("vfs.union.resolve_cache_hits", 1);
                return Some(loc.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        maxoid_obs::counter_add("vfs.union.resolve_cache_misses", 1);
        None
    }

    fn insert(&self, rel: &str, gen: u64, loc: Option<Located>) {
        if self.disabled.load(Ordering::Relaxed) {
            return;
        }
        let mut map = self.map.lock().expect("resolve cache poisoned");
        if map.len() >= RESOLVE_CACHE_CAP {
            map.clear();
        }
        map.insert(rel.to_string(), (loc, gen));
    }

    fn clear(&self) {
        self.map.lock().expect("resolve cache poisoned").clear();
    }
}

/// Where an effective (visible) node was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Located {
    /// Index of the branch containing the node.
    pub branch: usize,
    /// Full host path of the node in the backing store.
    pub host: VPath,
}

fn join_rel(base: &VPath, rel: &str) -> VfsResult<VPath> {
    if rel.is_empty() {
        Ok(base.clone())
    } else {
        base.join(rel)
    }
}

fn whiteout_name(name: &str) -> String {
    format!("{WHITEOUT_PREFIX}{name}")
}

fn delta_name(name: &str) -> String {
    format!("{APPEND_DELTA_PREFIX}{name}")
}

/// Splits a relative path into (parent, name); `rel` must be non-empty.
fn split_rel(rel: &str) -> (&str, &str) {
    match rel.rfind('/') {
        Some(idx) => (&rel[..idx], &rel[idx + 1..]),
        None => ("", rel),
    }
}

impl Union {
    /// Creates a union from ordered branches (index 0 = highest priority).
    ///
    /// # Panics
    ///
    /// Panics if a branch other than index 0 is writable, or no branch is
    /// given — both indicate a branch-manager bug, not a runtime condition.
    pub fn new(branches: Vec<Branch>, maxoid_access: bool) -> Self {
        assert!(!branches.is_empty(), "union requires at least one branch");
        for (i, b) in branches.iter().enumerate() {
            assert!(i == 0 || !b.writable, "only the top branch may be writable");
        }
        // A branch rooted at the store root can see mutations under any
        // prefix, so it must validate against every generation shard.
        let mut gen_shards: Vec<usize> = Vec::new();
        for b in &branches {
            match Store::vis_branch_shard(&b.host) {
                Some(sh) => gen_shards.push(sh),
                None => {
                    gen_shards = (0..crate::store::VIS_SHARDS).collect();
                    break;
                }
            }
        }
        gen_shards.sort_unstable();
        gen_shards.dedup();
        Union {
            branches,
            maxoid_access,
            granularity: CopyUpGranularity::File,
            cache: ResolveCache::default(),
            gen_shards,
        }
    }

    /// Sets the copy-up granularity (builder style).
    pub fn with_granularity(mut self, granularity: CopyUpGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Enables or disables the path-resolution cache (builder style; on
    /// by default). Used by the cache-equivalence tests and ablations.
    pub fn with_resolve_cache(self, on: bool) -> Self {
        self.set_resolve_cache(on);
        self
    }

    /// Enables or disables the resolution cache in place (bench and
    /// diagnostics hook). Toggling in either direction drops memoized
    /// resolutions.
    pub fn set_resolve_cache(&self, on: bool) {
        self.cache.disabled.store(!on, Ordering::Relaxed);
        self.cache.clear();
    }

    /// Whether the resolution cache is active.
    pub fn resolve_cache_enabled(&self) -> bool {
        !self.cache.disabled.load(Ordering::Relaxed)
    }

    /// `(hits, misses)` of the resolution cache since construction.
    pub fn resolve_cache_stats(&self) -> (u64, u64) {
        (self.cache.hits.load(Ordering::Relaxed), self.cache.misses.load(Ordering::Relaxed))
    }

    /// Drops every memoized resolution. The store's visibility generation
    /// already invalidates implicitly; coarse events (volatile
    /// commit/clear, branch surgery) call this for an explicit flush.
    pub fn invalidate_resolutions(&self) {
        self.cache.clear();
    }

    /// Host path of the append-delta file for `rel` in the top branch.
    fn delta_host(&self, rel: &str) -> VfsResult<VPath> {
        let top = self.top()?.host.clone();
        let (parent, name) = split_rel(rel);
        join_rel(&top, parent)?.join(&delta_name(name))
    }

    /// Returns the append-delta bytes for `rel`, when block mode has one.
    fn delta_bytes(&self, store: &Store, rel: &str) -> Option<Vec<u8>> {
        if self.granularity != CopyUpGranularity::Block {
            return None;
        }
        let host = self.delta_host(rel).ok()?;
        store.read(&host).ok()
    }

    /// Removes a stale append-delta (called when the file is rewritten,
    /// unlinked, or fully copied up).
    fn clear_delta(&self, store: &Store, rel: &str) -> VfsResult<()> {
        if self.granularity != CopyUpGranularity::Block {
            return Ok(());
        }
        let host = self.delta_host(rel)?;
        if store.exists(&host) {
            store.unlink(&host)?;
        }
        Ok(())
    }

    /// Returns the branches, top priority first.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// Returns true if the union has a writable top branch.
    pub fn is_writable(&self) -> bool {
        self.branches[0].writable
    }

    fn top(&self) -> VfsResult<&Branch> {
        if self.branches[0].writable {
            Ok(&self.branches[0])
        } else {
            Err(VfsError::ReadOnly)
        }
    }

    /// Returns true if branch `idx` contains a whiteout hiding `rel` (or an
    /// ancestor of it) from lower branches.
    fn hides_lower(&self, store: &Store, idx: usize, rel: &str) -> bool {
        if rel.is_empty() {
            return false;
        }
        let mut dir = self.branches[idx].host.clone();
        for comp in rel.split('/') {
            if let Ok(wh) = dir.join(&whiteout_name(comp)) {
                if store.exists(&wh) {
                    maxoid_obs::counter_add("vfs.union.whiteout_hits", 1);
                    return true;
                }
            }
            match dir.join(comp) {
                Ok(next) => dir = next,
                Err(_) => return false,
            }
        }
        false
    }

    /// Finds the highest-priority branch where `rel` is visible.
    ///
    /// Resolutions (positive and negative) are memoized per path and
    /// validated against [`Store::visibility_gen`], so steady-state
    /// lookups — including appends to an already-copied-up file — skip
    /// the branch walk and its whiteout probes entirely.
    pub fn effective(&self, store: &Store, rel: &str) -> Option<Located> {
        maxoid_obs::counter_add("vfs.union.lookups", 1);
        let gen = store.vis_stamp(&self.gen_shards);
        if let Some(cached) = self.cache.lookup(rel, gen) {
            let depth = match &cached {
                Some(loc) => loc.branch as u64 + 1,
                None => self.branches.len() as u64,
            };
            maxoid_obs::observe("vfs.union.lookup_depth", depth);
            return cached;
        }
        let resolved = self.resolve_branches(store, rel);
        self.cache.insert(rel, gen, resolved.clone());
        resolved
    }

    /// The uncached branch walk behind [`Union::effective`].
    fn resolve_branches(&self, store: &Store, rel: &str) -> Option<Located> {
        for (i, br) in self.branches.iter().enumerate() {
            let host = join_rel(&br.host, rel).ok()?;
            if store.exists(&host) {
                maxoid_obs::observe("vfs.union.lookup_depth", i as u64 + 1);
                return Some(Located { branch: i, host });
            }
            if self.hides_lower(store, i, rel) {
                maxoid_obs::observe("vfs.union.lookup_depth", i as u64 + 1);
                return None;
            }
        }
        maxoid_obs::observe("vfs.union.lookup_depth", self.branches.len() as u64);
        None
    }

    /// Returns true if `rel` is visible through the union.
    pub fn exists(&self, store: &Store, rel: &str) -> bool {
        self.effective(store, rel).is_some()
    }

    /// Returns metadata of the visible node.
    pub fn stat(&self, store: &Store, rel: &str) -> VfsResult<Metadata> {
        let loc = self.effective(store, rel).ok_or(VfsError::NotFound)?;
        let mut meta = store.stat(&loc.host)?;
        if loc.branch != 0 && !meta.is_dir {
            if let Some(delta) = self.delta_bytes(store, rel) {
                meta.size += delta.len() as u64;
            }
        }
        Ok(meta)
    }

    /// Reads the visible version of a file, merging any append-delta in
    /// block-granularity mode.
    pub fn read(&self, store: &Store, rel: &str) -> VfsResult<Vec<u8>> {
        let mut sp = maxoid_obs::span("vfs.union.read");
        sp.field_with("rel", || rel.to_string());
        let loc = self.effective(store, rel).ok_or(VfsError::NotFound)?;
        let mut data = store.read(&loc.host)?;
        if loc.branch != 0 {
            if let Some(delta) = self.delta_bytes(store, rel) {
                data.extend_from_slice(&delta);
            }
        }
        Ok(data)
    }

    /// Ensures all ancestor directories of `rel` exist in the top branch,
    /// mirroring metadata from the visible version where available.
    fn ensure_parents(&self, store: &Store, rel: &str, owner: Uid) -> VfsResult<()> {
        let top = self.top()?.host.clone();
        let (parent, _) = split_rel(rel);
        if parent.is_empty() {
            store.mkdir_all(&top, owner, Mode::PUBLIC)?;
            return Ok(());
        }
        // Walk down, creating each missing level with the visible dir's
        // owner/mode when one exists.
        store.mkdir_all(&top, owner, Mode::PUBLIC)?;
        let mut sofar = String::new();
        for comp in parent.split('/') {
            if !sofar.is_empty() {
                sofar.push('/');
            }
            sofar.push_str(comp);
            let host = join_rel(&top, &sofar)?;
            if store.exists(&host) {
                continue;
            }
            let (o, m) = match self.stat(store, &sofar) {
                Ok(meta) if meta.is_dir => (meta.owner, meta.mode),
                Ok(_) => return Err(VfsError::NotADirectory),
                Err(_) => (owner, Mode::PUBLIC),
            };
            store.mkdir(&host, o, m)?;
        }
        Ok(())
    }

    /// Removes a whiteout marker for `rel` from the top branch, if present.
    fn clear_whiteout(&self, store: &Store, rel: &str) -> VfsResult<()> {
        let top = self.top()?.host.clone();
        let (parent, name) = split_rel(rel);
        let wh = join_rel(&top, parent)?.join(&whiteout_name(name))?;
        if store.exists(&wh) {
            store.unlink(&wh)?;
        }
        Ok(())
    }

    /// Creates or truncates a file; the write always lands in the top
    /// branch (copy-on-write shadowing of lower versions).
    pub fn write(
        &self,
        store: &Store,
        rel: &str,
        data: &[u8],
        owner: Uid,
        mode: Mode,
    ) -> VfsResult<()> {
        if rel.is_empty() {
            return Err(VfsError::IsADirectory);
        }
        let mut sp = maxoid_obs::span("vfs.union.write");
        sp.field_with("rel", || rel.to_string());
        if let Some(loc) = self.effective(store, rel) {
            if store.stat(&loc.host)?.is_dir {
                return Err(VfsError::IsADirectory);
            }
        }
        self.ensure_parents(store, rel, owner)?;
        self.clear_whiteout(store, rel)?;
        self.clear_delta(store, rel)?;
        let host = join_rel(&self.top()?.host, rel)?;
        // Preserve owner/mode of an existing top-branch file; otherwise
        // create with the caller's identity.
        store.write(&host, data, owner, mode)?;
        Ok(())
    }

    /// Appends to a file, performing whole-file copy-up when the visible
    /// version lives in a lower branch. This is the paper's worst case —
    /// unless the union runs in [`CopyUpGranularity::Block`] mode, where
    /// only the appended bytes are written to a per-file delta.
    pub fn append(&self, store: &Store, rel: &str, data: &[u8]) -> VfsResult<()> {
        let mut sp = maxoid_obs::span("vfs.union.append");
        sp.field_with("rel", || rel.to_string());
        let loc = self.effective(store, rel).ok_or(VfsError::NotFound)?;
        let meta = store.stat(&loc.host)?;
        if meta.is_dir {
            return Err(VfsError::IsADirectory);
        }
        if loc.branch == 0 {
            let top_host = join_rel(&self.top()?.host, rel)?;
            return store.append(&top_host, data);
        }
        match self.granularity {
            CopyUpGranularity::File => {
                // Copy-up: whole-file copy into the writable branch,
                // preserving the original owner and mode (Aufs behaviour).
                let top_host = join_rel(&self.top()?.host, rel)?;
                let original = store.read(&loc.host)?;
                maxoid_obs::counter_add("vfs.union.copy_ups", 1);
                maxoid_obs::observe("vfs.union.copy_up_bytes", original.len() as u64);
                sp.field_with("copy_up_bytes", || original.len().to_string());
                self.ensure_parents(store, rel, meta.owner)?;
                self.clear_whiteout(store, rel)?;
                store.write(&top_host, &original, meta.owner, meta.mode)?;
                store.append(&top_host, data)
            }
            CopyUpGranularity::Block => {
                // Write only the new bytes into the append-delta.
                maxoid_obs::counter_add("vfs.union.append_deltas", 1);
                self.ensure_parents(store, rel, meta.owner)?;
                self.clear_whiteout(store, rel)?;
                let delta = self.delta_host(rel)?;
                if store.exists(&delta) {
                    store.append(&delta, data)
                } else {
                    store.write(&delta, data, meta.owner, meta.mode)?;
                    Ok(())
                }
            }
        }
    }

    /// Copies the visible version of `rel` into the writable branch and
    /// returns its host path. No-op if it is already there. In block mode
    /// any append-delta is folded into the materialized copy.
    pub fn copy_up(&self, store: &Store, rel: &str) -> VfsResult<VPath> {
        let loc = self.effective(store, rel).ok_or(VfsError::NotFound)?;
        let top_host = join_rel(&self.top()?.host, rel)?;
        if loc.branch == 0 {
            return Ok(top_host);
        }
        let mut sp = maxoid_obs::span("vfs.union.copy_up");
        sp.field_with("rel", || rel.to_string());
        let meta = store.stat(&loc.host)?;
        if meta.is_dir {
            return Err(VfsError::IsADirectory);
        }
        let mut original = store.read(&loc.host)?;
        maxoid_obs::counter_add("vfs.union.copy_ups", 1);
        maxoid_obs::observe("vfs.union.copy_up_bytes", original.len() as u64);
        if let Some(delta) = self.delta_bytes(store, rel) {
            original.extend_from_slice(&delta);
        }
        self.ensure_parents(store, rel, meta.owner)?;
        self.clear_whiteout(store, rel)?;
        self.clear_delta(store, rel)?;
        store.write(&top_host, &original, meta.owner, meta.mode)?;
        Ok(top_host)
    }

    /// Deletes a file: removed from the top branch and/or hidden from lower
    /// branches with a whiteout.
    pub fn unlink(&self, store: &Store, rel: &str) -> VfsResult<()> {
        let mut sp = maxoid_obs::span("vfs.union.unlink");
        sp.field_with("rel", || rel.to_string());
        let loc = self.effective(store, rel).ok_or(VfsError::NotFound)?;
        if store.stat(&loc.host)?.is_dir {
            return Err(VfsError::IsADirectory);
        }
        let top = self.top()?.host.clone();
        let top_host = join_rel(&top, rel)?;
        if loc.branch == 0 {
            store.unlink(&top_host)?;
        }
        self.clear_delta(store, rel)?;
        // If any lower branch still has a visible copy, white it out.
        let lower_exists = self
            .branches
            .iter()
            .enumerate()
            .skip(1)
            .any(|(_, br)| join_rel(&br.host, rel).map(|h| store.exists(&h)).unwrap_or(false));
        if lower_exists {
            maxoid_obs::counter_add("vfs.union.whiteouts_created", 1);
            self.ensure_parents(store, rel, Uid::ROOT)?;
            let (parent, name) = split_rel(rel);
            let wh = join_rel(&top, parent)?.join(&whiteout_name(name))?;
            store.write(&wh, b"", Uid::ROOT, Mode::PRIVATE)?;
        }
        Ok(())
    }

    /// Creates a directory in the top branch.
    pub fn mkdir(&self, store: &Store, rel: &str, owner: Uid, mode: Mode) -> VfsResult<()> {
        if rel.is_empty() {
            return Err(VfsError::AlreadyExists);
        }
        if self.exists(store, rel) {
            return Err(VfsError::AlreadyExists);
        }
        self.ensure_parents(store, rel, owner)?;
        self.clear_whiteout(store, rel)?;
        let host = join_rel(&self.top()?.host, rel)?;
        store.mkdir(&host, owner, mode)?;
        Ok(())
    }

    /// Creates a directory and all missing ancestors in the top branch.
    pub fn mkdir_all(&self, store: &Store, rel: &str, owner: Uid, mode: Mode) -> VfsResult<()> {
        if rel.is_empty() {
            return Ok(());
        }
        let mut sofar = String::new();
        for comp in rel.split('/') {
            if !sofar.is_empty() {
                sofar.push('/');
            }
            sofar.push_str(comp);
            match self.stat(store, &sofar) {
                Ok(meta) if meta.is_dir => {}
                Ok(_) => return Err(VfsError::NotADirectory),
                Err(VfsError::NotFound) => self.mkdir(store, &sofar, owner, mode)?,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Removes an (effectively) empty directory.
    pub fn rmdir(&self, store: &Store, rel: &str) -> VfsResult<()> {
        if rel.is_empty() {
            return Err(VfsError::InvalidArgument);
        }
        let meta = self.stat(store, rel)?;
        if !meta.is_dir {
            return Err(VfsError::NotADirectory);
        }
        if !self.read_dir(store, rel)?.is_empty() {
            return Err(VfsError::NotEmpty);
        }
        let top = self.top()?.host.clone();
        let top_host = join_rel(&top, rel)?;
        if store.exists(&top_host) {
            // The top copy may contain only whiteout markers; clear them.
            store.remove_all(&top_host)?;
        }
        let lower_exists = self
            .branches
            .iter()
            .skip(1)
            .any(|br| join_rel(&br.host, rel).map(|h| store.exists(&h)).unwrap_or(false));
        if lower_exists {
            self.ensure_parents(store, rel, Uid::ROOT)?;
            let (parent, name) = split_rel(rel);
            let wh = join_rel(&top, parent)?.join(&whiteout_name(name))?;
            store.write(&wh, b"", Uid::ROOT, Mode::PRIVATE)?;
        }
        Ok(())
    }

    /// Lists the merged view of a directory.
    ///
    /// Entries from higher branches shadow same-named entries below;
    /// whiteouts hide lower entries; marker files themselves are never
    /// listed.
    pub fn read_dir(&self, store: &Store, rel: &str) -> VfsResult<Vec<DirEntry>> {
        // The directory itself must be visible.
        let meta = self.stat(store, rel)?;
        if !meta.is_dir {
            return Err(VfsError::NotADirectory);
        }
        let mut merged: BTreeMap<String, DirEntry> = BTreeMap::new();
        let mut hidden: Vec<String> = Vec::new();
        for (i, br) in self.branches.iter().enumerate() {
            if i > 0 && self.hides_lower_upto(store, i, rel) {
                break;
            }
            let host = join_rel(&br.host, rel)?;
            if let Ok(entries) = store.read_dir(&host) {
                for e in entries {
                    if let Some(stripped) = e.name.strip_prefix(WHITEOUT_PREFIX) {
                        hidden.push(stripped.to_string());
                        continue;
                    }
                    // Append-delta markers are plumbing, never listed.
                    if e.name.starts_with(APPEND_DELTA_PREFIX) {
                        continue;
                    }
                    if hidden.iter().any(|h| h == &e.name) {
                        continue;
                    }
                    merged.entry(e.name.clone()).or_insert(e);
                }
            }
        }
        // Remove names that were whited out by a branch at or above the one
        // providing them. Because we insert before recording later branches'
        // whiteouts, re-filter here for whiteouts discovered after insert.
        let result = merged
            .into_values()
            .filter(|e| {
                // A name inserted by branch i is valid unless some strictly
                // higher branch whites it out, which the `hidden` check at
                // insert time already guarantees (we scan top-down).
                !self.name_whited_out_above(store, rel, &e.name)
            })
            .collect();
        Ok(result)
    }

    /// Returns true if a whiteout hides lower branches at this exact point,
    /// considering only whiteouts in branches with index < `upto`.
    fn hides_lower_upto(&self, store: &Store, upto: usize, rel: &str) -> bool {
        (0..upto).any(|i| self.hides_lower(store, i, rel))
    }

    /// Returns true if `name` inside directory `rel` is whited out by a
    /// branch that shadows the branch where the entry is found.
    fn name_whited_out_above(&self, store: &Store, rel: &str, name: &str) -> bool {
        let child_rel = if rel.is_empty() { name.to_string() } else { format!("{rel}/{name}") };
        // Find the branch that provides the entry.
        let provider = self.branches.iter().position(|br| {
            join_rel(&br.host, &child_rel).map(|h| store.exists(&h)).unwrap_or(false)
        });
        let Some(provider) = provider else { return true };
        // Any whiteout strictly above it hides it.
        (0..provider).any(|i| {
            let dir = join_rel(&self.branches[i].host, rel);
            match dir.and_then(|d| d.join(&whiteout_name(name))) {
                Ok(wh) => store.exists(&wh),
                Err(_) => false,
            }
        })
    }

    /// Renames within the union by copy + unlink (cross-branch safe).
    pub fn rename(
        &self,
        store: &Store,
        from: &str,
        to: &str,
        owner: Uid,
        mode: Mode,
    ) -> VfsResult<()> {
        let data = self.read(store, from)?;
        self.write(store, to, &data, owner, mode)?;
        self.unlink(store, from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::vpath;

    /// Builds a store with `lower` and `upper` branch dirs and some files
    /// in the lower branch.
    fn setup(lower_files: &[(&str, &str)]) -> (Store, Union) {
        let store = Store::new();
        store.mkdir_all(&vpath("/b/upper"), Uid::ROOT, Mode::PUBLIC).unwrap();
        store.mkdir_all(&vpath("/b/lower"), Uid::ROOT, Mode::PUBLIC).unwrap();
        for (p, c) in lower_files {
            let host = vpath("/b/lower").join(p).unwrap();
            store.mkdir_all(&host.parent().unwrap(), Uid::ROOT, Mode::PUBLIC).unwrap();
            store.write(&host, c.as_bytes(), Uid::ROOT, Mode::PUBLIC).unwrap();
        }
        let union =
            Union::new(vec![Branch::rw(vpath("/b/upper")), Branch::ro(vpath("/b/lower"))], false);
        (store, union)
    }

    #[test]
    fn reads_fall_through_to_lower() {
        let (store, u) = setup(&[("d/f.txt", "lower")]);
        assert_eq!(u.read(&store, "d/f.txt").unwrap(), b"lower");
        assert_eq!(u.read(&store, "d/nope").err(), Some(VfsError::NotFound));
    }

    #[test]
    fn writes_shadow_lower_copy() {
        let (store, u) = setup(&[("d/f.txt", "lower")]);
        u.write(&store, "d/f.txt", b"upper", Uid(10_001), Mode::PUBLIC).unwrap();
        // Union view sees the new version.
        assert_eq!(u.read(&store, "d/f.txt").unwrap(), b"upper");
        // The lower branch still holds the original.
        assert_eq!(store.read(&vpath("/b/lower/d/f.txt")).unwrap(), b"lower");
        // The copy landed in the upper branch.
        assert_eq!(store.read(&vpath("/b/upper/d/f.txt")).unwrap(), b"upper");
    }

    #[test]
    fn append_copies_up_whole_file() {
        let (store, u) = setup(&[("f", "abc")]);
        u.append(&store, "f", b"def").unwrap();
        assert_eq!(u.read(&store, "f").unwrap(), b"abcdef");
        assert_eq!(store.read(&vpath("/b/lower/f")).unwrap(), b"abc");
        assert_eq!(store.read(&vpath("/b/upper/f")).unwrap(), b"abcdef");
        // A second append mutates the top copy in place.
        u.append(&store, "f", b"!").unwrap();
        assert_eq!(store.read(&vpath("/b/upper/f")).unwrap(), b"abcdef!");
    }

    #[test]
    fn unlink_lower_creates_whiteout() {
        let (store, u) = setup(&[("d/f", "x")]);
        u.unlink(&store, "d/f").unwrap();
        assert!(!u.exists(&store, "d/f"));
        // Lower file untouched; whiteout marker present in upper.
        assert!(store.exists(&vpath("/b/lower/d/f")));
        assert!(store.exists(&vpath("/b/upper/d/.wh.f")));
        // Re-creating the file clears the whiteout.
        u.write(&store, "d/f", b"new", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(u.read(&store, "d/f").unwrap(), b"new");
        assert!(!store.exists(&vpath("/b/upper/d/.wh.f")));
    }

    #[test]
    fn unlink_shadowed_file_removes_both_layers_view() {
        let (store, u) = setup(&[("f", "lower")]);
        u.write(&store, "f", b"upper", Uid::ROOT, Mode::PUBLIC).unwrap();
        u.unlink(&store, "f").unwrap();
        assert!(!u.exists(&store, "f"));
        assert!(store.exists(&vpath("/b/upper/.wh.f")));
    }

    #[test]
    fn readdir_merges_and_hides() {
        let (store, u) = setup(&[("d/a", "1"), ("d/b", "2")]);
        u.write(&store, "d/c", b"3", Uid::ROOT, Mode::PUBLIC).unwrap();
        u.unlink(&store, "d/a").unwrap();
        let names: Vec<String> =
            u.read_dir(&store, "d").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b".to_string(), "c".to_string()]);
        // Whiteout markers are never listed.
        assert!(!names.iter().any(|n| n.starts_with(WHITEOUT_PREFIX)));
    }

    #[test]
    fn readdir_shadowed_entry_listed_once() {
        let (store, u) = setup(&[("d/a", "lower")]);
        u.write(&store, "d/a", b"upper", Uid::ROOT, Mode::PUBLIC).unwrap();
        let entries = u.read_dir(&store, "d").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "a");
    }

    #[test]
    fn whiteout_hides_ancestors_children() {
        let (store, u) = setup(&[("d/sub/f", "x")]);
        // White out the whole directory `d/sub`.
        u.rmdir(&store, "d/sub").err(); // Non-empty: fails.
        u.unlink(&store, "d/sub/f").unwrap();
        u.rmdir(&store, "d/sub").unwrap();
        assert!(!u.exists(&store, "d/sub"));
        assert!(!u.exists(&store, "d/sub/f"));
    }

    #[test]
    fn mkdir_and_rmdir_roundtrip() {
        let (store, u) = setup(&[]);
        u.mkdir_all(&store, "x/y", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert!(u.stat(&store, "x/y").unwrap().is_dir);
        assert_eq!(
            u.mkdir(&store, "x/y", Uid::ROOT, Mode::PUBLIC).err(),
            Some(VfsError::AlreadyExists)
        );
        u.rmdir(&store, "x/y").unwrap();
        assert!(!u.exists(&store, "x/y"));
    }

    #[test]
    fn read_only_union_rejects_writes() {
        let store = Store::new();
        store.mkdir_all(&vpath("/ro"), Uid::ROOT, Mode::PUBLIC).unwrap();
        let u = Union::new(vec![Branch::ro(vpath("/ro"))], false);
        assert_eq!(
            u.write(&store, "f", b"x", Uid::ROOT, Mode::PUBLIC).err(),
            Some(VfsError::ReadOnly)
        );
    }

    #[test]
    fn rename_within_union() {
        let (store, u) = setup(&[("a", "data")]);
        u.rename(&store, "a", "b", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert!(!u.exists(&store, "a"));
        assert_eq!(u.read(&store, "b").unwrap(), b"data");
        // Lower branch's original survives under its old name, hidden.
        assert!(store.exists(&vpath("/b/lower/a")));
    }

    #[test]
    fn copy_up_preserves_metadata() {
        let store = Store::new();
        store.mkdir_all(&vpath("/b/upper"), Uid::ROOT, Mode::PUBLIC).unwrap();
        store.mkdir_all(&vpath("/b/lower"), Uid::ROOT, Mode::PUBLIC).unwrap();
        store.write(&vpath("/b/lower/f"), b"secret", Uid(10_050), Mode::PRIVATE).unwrap();
        let u =
            Union::new(vec![Branch::rw(vpath("/b/upper")), Branch::ro(vpath("/b/lower"))], true);
        let host = u.copy_up(&store, "f").unwrap();
        let meta = store.stat(&host).unwrap();
        assert_eq!(meta.owner, Uid(10_050));
        assert_eq!(meta.mode, Mode::PRIVATE);
    }

    #[test]
    #[should_panic(expected = "only the top branch may be writable")]
    fn lower_writable_branch_panics() {
        let _ = Union::new(vec![Branch::ro(vpath("/a")), Branch::rw(vpath("/b"))], false);
    }

    #[test]
    fn three_branch_priority() {
        let store = Store::new();
        for b in ["/b0", "/b1", "/b2"] {
            store.mkdir_all(&vpath(b), Uid::ROOT, Mode::PUBLIC).unwrap();
        }
        store.write(&vpath("/b1/f"), b"mid", Uid::ROOT, Mode::PUBLIC).unwrap();
        store.write(&vpath("/b2/f"), b"low", Uid::ROOT, Mode::PUBLIC).unwrap();
        let u = Union::new(
            vec![Branch::rw(vpath("/b0")), Branch::ro(vpath("/b1")), Branch::ro(vpath("/b2"))],
            false,
        );
        assert_eq!(u.read(&store, "f").unwrap(), b"mid");
        u.write(&store, "f", b"top", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(u.read(&store, "f").unwrap(), b"top");
    }
    #[test]
    fn block_mode_append_writes_only_delta() {
        let store = Store::new();
        store.mkdir_all(&vpath("/b/upper"), Uid::ROOT, Mode::PUBLIC).unwrap();
        store.mkdir_all(&vpath("/b/lower"), Uid::ROOT, Mode::PUBLIC).unwrap();
        store.write(&vpath("/b/lower/log"), b"base|", Uid::ROOT, Mode::PUBLIC).unwrap();
        let u =
            Union::new(vec![Branch::rw(vpath("/b/upper")), Branch::ro(vpath("/b/lower"))], false)
                .with_granularity(CopyUpGranularity::Block);
        u.append(&store, "log", b"l1").unwrap();
        u.append(&store, "log", b"|l2").unwrap();
        // Reads and stat merge base + delta.
        assert_eq!(u.read(&store, "log").unwrap(), b"base|l1|l2");
        assert_eq!(u.stat(&store, "log").unwrap().size, 10);
        // Only the delta lives in the upper branch — no full copy.
        assert!(!store.exists(&vpath("/b/upper/log")));
        assert_eq!(store.read(&vpath("/b/upper/.ad.log")).unwrap(), b"l1|l2");
        // The lower branch is untouched.
        assert_eq!(store.read(&vpath("/b/lower/log")).unwrap(), b"base|");
        // Deltas never appear in listings.
        let names: Vec<String> =
            u.read_dir(&store, "").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["log".to_string()]);
    }

    #[test]
    fn block_mode_write_and_unlink_clear_delta() {
        let store = Store::new();
        store.mkdir_all(&vpath("/b/upper"), Uid::ROOT, Mode::PUBLIC).unwrap();
        store.mkdir_all(&vpath("/b/lower"), Uid::ROOT, Mode::PUBLIC).unwrap();
        store.write(&vpath("/b/lower/f"), b"abc", Uid::ROOT, Mode::PUBLIC).unwrap();
        let u =
            Union::new(vec![Branch::rw(vpath("/b/upper")), Branch::ro(vpath("/b/lower"))], false)
                .with_granularity(CopyUpGranularity::Block);
        u.append(&store, "f", b"def").unwrap();
        // A truncating write replaces everything, delta included.
        u.write(&store, "f", b"xyz", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(u.read(&store, "f").unwrap(), b"xyz");
        assert!(!store.exists(&vpath("/b/upper/.ad.f")));
        // Unlink from fresh delta state also clears it.
        u.unlink(&store, "f").unwrap();
        u.write(&store, "f", b"v2", Uid::ROOT, Mode::PUBLIC).unwrap();
        u.unlink(&store, "f").unwrap();
        assert!(!u.exists(&store, "f"));
    }

    #[test]
    fn block_mode_copy_up_folds_delta() {
        let store = Store::new();
        store.mkdir_all(&vpath("/b/upper"), Uid::ROOT, Mode::PUBLIC).unwrap();
        store.mkdir_all(&vpath("/b/lower"), Uid::ROOT, Mode::PUBLIC).unwrap();
        store.write(&vpath("/b/lower/f"), b"abc", Uid::ROOT, Mode::PUBLIC).unwrap();
        let u =
            Union::new(vec![Branch::rw(vpath("/b/upper")), Branch::ro(vpath("/b/lower"))], false)
                .with_granularity(CopyUpGranularity::Block);
        u.append(&store, "f", b"def").unwrap();
        let host = u.copy_up(&store, "f").unwrap();
        assert_eq!(store.read(&host).unwrap(), b"abcdef");
        assert!(!store.exists(&vpath("/b/upper/.ad.f")));
        // Further appends now mutate the materialized copy in place.
        u.append(&store, "f", b"!").unwrap();
        assert_eq!(store.read(&host).unwrap(), b"abcdef!");
    }

    #[test]
    fn resolve_cache_hits_and_invalidates() {
        let (store, u) = setup(&[("d/f", "lower")]);
        assert!(u.resolve_cache_enabled());
        assert_eq!(u.read(&store, "d/f").unwrap(), b"lower");
        assert_eq!(u.read(&store, "d/f").unwrap(), b"lower");
        let (h1, _) = u.resolve_cache_stats();
        assert!(h1 >= 1, "repeated read should hit, stats {:?}", u.resolve_cache_stats());
        // Shadowing write bumps the store generation; the next read must
        // resolve to the top branch, not the cached lower location.
        u.write(&store, "d/f", b"upper", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(u.read(&store, "d/f").unwrap(), b"upper");
        // Negative results are cached too...
        assert!(!u.exists(&store, "d/none"));
        assert!(!u.exists(&store, "d/none"));
        // ...and creation invalidates them.
        u.write(&store, "d/none", b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert!(u.exists(&store, "d/none"));
        // Whiteouts invalidate positive resolutions.
        u.unlink(&store, "d/f").unwrap();
        assert!(!u.exists(&store, "d/f"));
    }

    #[test]
    fn append_after_copy_up_stays_cached() {
        let (store, u) = setup(&[("f", "abc")]);
        u.append(&store, "f", b"1").unwrap(); // whole-file copy-up
        let (h0, _) = u.resolve_cache_stats();
        // Appends to the copied-up file change content, not visibility:
        // the resolution caches and subsequent appends skip the walk.
        u.append(&store, "f", b"2").unwrap();
        u.append(&store, "f", b"3").unwrap();
        let (h1, _) = u.resolve_cache_stats();
        assert!(h1 > h0, "appends after copy-up should hit the resolve cache");
        assert_eq!(u.read(&store, "f").unwrap(), b"abc123");
    }

    #[test]
    fn resolve_cache_disabled_matches_enabled() {
        let run = |cached: bool| -> Vec<Vec<u8>> {
            let (store, u) = setup(&[("d/a", "A"), ("d/b", "B")]);
            let u = u.with_resolve_cache(cached);
            assert_eq!(u.resolve_cache_enabled(), cached);
            u.append(&store, "d/a", b"+").unwrap();
            u.unlink(&store, "d/b").unwrap();
            u.write(&store, "d/c", b"C", Uid::ROOT, Mode::PUBLIC).unwrap();
            let mut out = Vec::new();
            for rel in ["d/a", "d/b", "d/c"] {
                out.push(u.read(&store, rel).unwrap_or_default());
                out.push(u.read(&store, rel).unwrap_or_default());
            }
            out
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn clones_start_with_cold_cache() {
        let (store, u) = setup(&[("f", "x")]);
        assert!(u.exists(&store, "f"));
        assert!(u.exists(&store, "f"));
        let clone = u.clone();
        assert_eq!(clone.resolve_cache_stats(), (0, 0));
        assert_eq!(clone, u, "cache state must not affect union equality");
    }

    #[test]
    fn block_and_file_modes_agree_on_view() {
        // The two granularities must be observationally identical.
        for granularity in [CopyUpGranularity::File, CopyUpGranularity::Block] {
            let store = Store::new();
            store.mkdir_all(&vpath("/b/upper"), Uid::ROOT, Mode::PUBLIC).unwrap();
            store.mkdir_all(&vpath("/b/lower"), Uid::ROOT, Mode::PUBLIC).unwrap();
            store.write(&vpath("/b/lower/f"), b"seed", Uid::ROOT, Mode::PUBLIC).unwrap();
            let u = Union::new(
                vec![Branch::rw(vpath("/b/upper")), Branch::ro(vpath("/b/lower"))],
                false,
            )
            .with_granularity(granularity);
            u.append(&store, "f", b"+1").unwrap();
            u.append(&store, "f", b"+2").unwrap();
            assert_eq!(u.read(&store, "f").unwrap(), b"seed+1+2", "{granularity:?}");
            assert_eq!(u.stat(&store, "f").unwrap().size, 8, "{granularity:?}");
            assert_eq!(
                store.read(&vpath("/b/lower/f")).unwrap(),
                b"seed",
                "{granularity:?} must not touch the lower branch"
            );
        }
    }
}
