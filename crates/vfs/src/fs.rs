//! The app-facing VFS: permission-checked, namespace-relative file
//! operations over the shared backing store.
//!
//! [`Vfs`] is the analogue of the kernel's syscall layer. Every operation
//! takes the caller's [`Cred`] and [`MountNamespace`]; the namespace
//! selects *which* data is visible (Maxoid's views), while the credentials
//! enforce Android's UID-based discretionary access control within a view.

use crate::cred::{Cred, Mode};
use crate::error::{VfsError, VfsResult};
use crate::mount::{Mount, MountKind, MountNamespace};
use crate::path::VPath;
use crate::store::{DirEntry, InodeId, Metadata, Store};
use std::sync::Arc;

/// Access mode requested when opening a file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only handle.
    Read,
    /// Read-write handle (performs copy-up on union mounts at open time).
    ReadWrite,
}

/// An open file handle, the analogue of Android's `ParcelFileDescriptor`.
///
/// A handle pins an inode, not a path: access checks happen at open time,
/// so a handle can be passed to a process that could not itself open the
/// path. This models Android's per-URI permission grants, where the file
/// "is still opened by Email's process, but the file descriptor is passed
/// to the invoked app" (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHandle {
    inode: InodeId,
    writable: bool,
}

/// The permission-checked filesystem facade.
///
/// Cloning is cheap; all clones share the same backing store. The store
/// itself is internally sharded (see `store.rs`), so no facade-level lock
/// is needed: every operation takes `&Store` and the store serializes
/// per-shard.
#[derive(Debug, Clone)]
pub struct Vfs {
    store: Arc<Store>,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates a VFS over a fresh backing store.
    pub fn new() -> Self {
        Vfs { store: Arc::new(Store::new()) }
    }

    /// Creates a VFS whose store spills file payloads larger than
    /// `threshold` bytes to a block device behind a `pages`-page cache,
    /// bounding content memory by the cache budget.
    pub fn with_block_device(
        dev: Box<dyn maxoid_block::BlockDevice>,
        pages: usize,
        threshold: usize,
    ) -> Self {
        Vfs { store: Arc::new(Store::with_block_device(dev, pages, threshold)) }
    }

    /// Takes an existing store (e.g. a block-backed one mutated during
    /// recovery) as this facade's backing store.
    pub fn from_store(store: Store) -> Self {
        Vfs { store: Arc::new(store) }
    }

    /// Point-in-time storage-tier counters: resident vs spilled files and
    /// the page-cache stats when a block device is attached.
    pub fn store_stats(&self) -> crate::store::StoreStats {
        self.with_store(|s| s.stats())
    }

    /// Runs a closure with shared access to the raw backing store.
    ///
    /// This is the "root" escape hatch used by trusted components (the
    /// branch manager, Zygote, providers' file helpers); apps never get it.
    pub fn with_store<R>(&self, f: impl FnOnce(&Store) -> R) -> R {
        f(&self.store)
    }

    /// Runs a closure with access to the raw backing store.
    ///
    /// Historically this took `&mut Store` behind a facade-level write
    /// lock; the sharded store mutates through `&self`, so this is now an
    /// alias for [`Vfs::with_store`] kept so trusted call sites compile
    /// unchanged.
    pub fn with_store_mut<R>(&self, f: impl FnOnce(&Store) -> R) -> R {
        f(&self.store)
    }

    /// Attaches a journal sink to the backing store: every successful
    /// store mutation from here on emits a physical journal record.
    pub fn attach_journal(&self, sink: maxoid_journal::SinkRef) {
        self.store.set_journal(sink);
    }

    fn creation_mode(mount: &Mount, requested: Mode) -> Mode {
        mount.forced_mode.unwrap_or(requested)
    }

    /// Reads a file through the caller's namespace.
    pub fn read(&self, cred: Cred, ns: &MountNamespace, path: &VPath) -> VfsResult<Vec<u8>> {
        let (mount, rel) = ns.resolve(path)?;
        let store = &*self.store;
        match &mount.kind {
            MountKind::Bind { host, .. } => {
                let hp = join_host(host, &rel)?;
                let meta = store.stat(&hp)?;
                if meta.is_dir {
                    return Err(VfsError::IsADirectory);
                }
                if !meta.mode.allows_read(meta.owner, cred.uid) {
                    return Err(VfsError::PermissionDenied);
                }
                store.read(&hp)
            }
            MountKind::Union(u) => {
                let meta = u.stat(&store, &rel)?;
                if meta.is_dir {
                    return Err(VfsError::IsADirectory);
                }
                if !u.maxoid_access && !meta.mode.allows_read(meta.owner, cred.uid) {
                    return Err(VfsError::PermissionDenied);
                }
                u.read(&store, &rel)
            }
        }
    }

    /// Creates or truncates a file through the caller's namespace.
    pub fn write(
        &self,
        cred: Cred,
        ns: &MountNamespace,
        path: &VPath,
        data: &[u8],
        mode: Mode,
    ) -> VfsResult<()> {
        let (mount, rel) = ns.resolve(path)?;
        let mode = Self::creation_mode(mount, mode);
        let store = &*self.store;
        match &mount.kind {
            MountKind::Bind { host, read_only } => {
                if *read_only {
                    return Err(VfsError::ReadOnly);
                }
                let hp = join_host(host, &rel)?;
                if let Ok(meta) = store.stat(&hp) {
                    if meta.is_dir {
                        return Err(VfsError::IsADirectory);
                    }
                    if !meta.mode.allows_write(meta.owner, cred.uid) {
                        return Err(VfsError::PermissionDenied);
                    }
                }
                store.write(&hp, data, cred.uid, mode)?;
                Ok(())
            }
            MountKind::Union(u) => {
                if let Some(meta) = u.effective(&store, &rel).map(|l| store.stat(&l.host)) {
                    let meta = meta?;
                    if meta.is_dir {
                        return Err(VfsError::IsADirectory);
                    }
                    if !u.maxoid_access && !meta.mode.allows_write(meta.owner, cred.uid) {
                        return Err(VfsError::PermissionDenied);
                    }
                }
                u.write(store, &rel, data, cred.uid, mode)
            }
        }
    }

    /// Appends to an existing file (copy-up on union mounts).
    pub fn append(
        &self,
        cred: Cred,
        ns: &MountNamespace,
        path: &VPath,
        data: &[u8],
    ) -> VfsResult<()> {
        let (mount, rel) = ns.resolve(path)?;
        let store = &*self.store;
        match &mount.kind {
            MountKind::Bind { host, read_only } => {
                if *read_only {
                    return Err(VfsError::ReadOnly);
                }
                let hp = join_host(host, &rel)?;
                let meta = store.stat(&hp)?;
                if !meta.mode.allows_write(meta.owner, cred.uid) {
                    return Err(VfsError::PermissionDenied);
                }
                store.append(&hp, data)
            }
            MountKind::Union(u) => {
                let meta = u.stat(&store, &rel)?;
                if !u.maxoid_access && !meta.mode.allows_write(meta.owner, cred.uid) {
                    return Err(VfsError::PermissionDenied);
                }
                u.append(store, &rel, data)
            }
        }
    }

    /// Deletes a file.
    pub fn unlink(&self, cred: Cred, ns: &MountNamespace, path: &VPath) -> VfsResult<()> {
        let (mount, rel) = ns.resolve(path)?;
        let store = &*self.store;
        match &mount.kind {
            MountKind::Bind { host, read_only } => {
                if *read_only {
                    return Err(VfsError::ReadOnly);
                }
                let hp = join_host(host, &rel)?;
                let meta = store.stat(&hp)?;
                if !meta.mode.allows_write(meta.owner, cred.uid) {
                    return Err(VfsError::PermissionDenied);
                }
                store.unlink(&hp)
            }
            MountKind::Union(u) => {
                let meta = u.stat(&store, &rel)?;
                if !u.maxoid_access && !meta.mode.allows_write(meta.owner, cred.uid) {
                    return Err(VfsError::PermissionDenied);
                }
                u.unlink(store, &rel)
            }
        }
    }

    /// Creates a directory (and missing ancestors).
    pub fn mkdir_all(
        &self,
        cred: Cred,
        ns: &MountNamespace,
        path: &VPath,
        mode: Mode,
    ) -> VfsResult<()> {
        let (mount, rel) = ns.resolve(path)?;
        let mode = Self::creation_mode(mount, mode);
        let store = &*self.store;
        match &mount.kind {
            MountKind::Bind { host, read_only } => {
                if *read_only {
                    return Err(VfsError::ReadOnly);
                }
                let hp = join_host(host, &rel)?;
                store.mkdir_all(&hp, cred.uid, mode)
            }
            MountKind::Union(u) => u.mkdir_all(store, &rel, cred.uid, mode),
        }
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, _cred: Cred, ns: &MountNamespace, path: &VPath) -> VfsResult<()> {
        let (mount, rel) = ns.resolve(path)?;
        let store = &*self.store;
        match &mount.kind {
            MountKind::Bind { host, read_only } => {
                if *read_only {
                    return Err(VfsError::ReadOnly);
                }
                store.rmdir(&join_host(host, &rel)?)
            }
            MountKind::Union(u) => u.rmdir(store, &rel),
        }
    }

    /// Lists a directory, merging in any nested mount points.
    pub fn read_dir(
        &self,
        cred: Cred,
        ns: &MountNamespace,
        path: &VPath,
    ) -> VfsResult<Vec<DirEntry>> {
        let (mount, rel) = ns.resolve(path)?;
        let store = &*self.store;
        let mut entries = match &mount.kind {
            MountKind::Bind { host, .. } => {
                let hp = join_host(host, &rel)?;
                let meta = store.stat(&hp)?;
                if !meta.mode.allows_read(meta.owner, cred.uid) {
                    return Err(VfsError::PermissionDenied);
                }
                store.read_dir(&hp)?
            }
            MountKind::Union(u) => u.read_dir(&store, &rel)?,
        };
        // Surface nested mount points (e.g. EXTDIR/tmp) that live in other
        // mounts rather than in this mount's backing dirs.
        for name in ns.child_mount_names(path) {
            if !entries.iter().any(|e| e.name == name) {
                entries.push(DirEntry { name, is_dir: true });
            }
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(entries)
    }

    /// Returns metadata for a path.
    pub fn stat(&self, _cred: Cred, ns: &MountNamespace, path: &VPath) -> VfsResult<Metadata> {
        let (mount, rel) = ns.resolve(path)?;
        let store = &*self.store;
        match &mount.kind {
            MountKind::Bind { host, .. } => store.stat(&join_host(host, &rel)?),
            MountKind::Union(u) => u.stat(&store, &rel),
        }
    }

    /// Returns true if the path exists in the caller's view.
    pub fn exists(&self, cred: Cred, ns: &MountNamespace, path: &VPath) -> bool {
        self.stat(cred, ns, path).is_ok()
    }

    /// Renames a file within a single mount.
    pub fn rename(
        &self,
        cred: Cred,
        ns: &MountNamespace,
        from: &VPath,
        to: &VPath,
    ) -> VfsResult<()> {
        let (fm, frel) = ns.resolve(from)?;
        let (tm, trel) = ns.resolve(to)?;
        if fm.point != tm.point {
            return Err(VfsError::CrossDevice);
        }
        let store = &*self.store;
        match &fm.kind {
            MountKind::Bind { host, read_only } => {
                if *read_only {
                    return Err(VfsError::ReadOnly);
                }
                store.rename(&join_host(host, &frel)?, &join_host(host, &trel)?)
            }
            MountKind::Union(u) => {
                let meta = u.stat(&store, &frel)?;
                if !u.maxoid_access && !meta.mode.allows_write(meta.owner, cred.uid) {
                    return Err(VfsError::PermissionDenied);
                }
                let mode = fm.forced_mode.unwrap_or(meta.mode);
                u.rename(store, &frel, &trel, cred.uid, mode)
            }
        }
    }

    /// Opens a file handle; checks happen now, not at read/write time.
    pub fn open(
        &self,
        cred: Cred,
        ns: &MountNamespace,
        path: &VPath,
        mode: OpenMode,
    ) -> VfsResult<FileHandle> {
        let (mount, rel) = ns.resolve(path)?;
        let store = &*self.store;
        let host = match &mount.kind {
            MountKind::Bind { host, read_only } => {
                if *read_only && mode == OpenMode::ReadWrite {
                    return Err(VfsError::ReadOnly);
                }
                join_host(host, &rel)?
            }
            MountKind::Union(u) => {
                if mode == OpenMode::ReadWrite {
                    // Copy-up at open, so the handle pins the writable copy.
                    let meta = u.stat(&store, &rel)?;
                    if !u.maxoid_access && !meta.mode.allows_write(meta.owner, cred.uid) {
                        return Err(VfsError::PermissionDenied);
                    }
                    u.copy_up(store, &rel)?
                } else {
                    u.effective(&store, &rel).ok_or(VfsError::NotFound)?.host
                }
            }
        };
        let meta = store.stat(&host)?;
        if meta.is_dir {
            return Err(VfsError::IsADirectory);
        }
        let maxoid_read = matches!(&mount.kind, MountKind::Union(u) if u.maxoid_access);
        if !maxoid_read && !meta.mode.allows_read(meta.owner, cred.uid) {
            return Err(VfsError::PermissionDenied);
        }
        if mode == OpenMode::ReadWrite
            && !maxoid_read
            && !meta.mode.allows_write(meta.owner, cred.uid)
        {
            return Err(VfsError::PermissionDenied);
        }
        let inode = store.resolve(&host)?;
        Ok(FileHandle { inode, writable: mode == OpenMode::ReadWrite })
    }

    /// Reads via a handle, bypassing path permission checks.
    pub fn read_handle(&self, handle: FileHandle) -> VfsResult<Vec<u8>> {
        self.store.read_inode(handle.inode)
    }

    /// Overwrites a file via a writable handle.
    pub fn write_handle(&self, handle: FileHandle, data: &[u8]) -> VfsResult<()> {
        if !handle.writable {
            return Err(VfsError::BadHandle);
        }
        self.store.write_inode(handle.inode, data)
    }

    /// Returns metadata via a handle.
    pub fn stat_handle(&self, handle: FileHandle) -> VfsResult<Metadata> {
        self.store.stat_inode(handle.inode)
    }
}

fn join_host(host: &VPath, rel: &str) -> VfsResult<VPath> {
    if rel.is_empty() {
        Ok(host.clone())
    } else {
        host.join(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Uid;
    use crate::mount::Mount;
    use crate::path::vpath;
    use crate::union::{Branch, Union};

    const APP_A: Cred = Cred { uid: Uid(10_001) };
    const APP_B: Cred = Cred { uid: Uid(10_002) };

    fn setup() -> (Vfs, MountNamespace) {
        let vfs = Vfs::new();
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/back/pub"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.mkdir_all(&vpath("/back/privA"), Uid::ROOT, Mode::PUBLIC).unwrap();
        });
        let mut ns = MountNamespace::new();
        ns.add(Mount::bind(vpath("/sdcard"), vpath("/back/pub")).with_forced_mode(Mode::PUBLIC));
        ns.add(Mount::bind(vpath("/data/data/A"), vpath("/back/privA")));
        (vfs, ns)
    }

    #[test]
    fn write_read_through_bind() {
        let (vfs, ns) = setup();
        vfs.write(APP_A, &ns, &vpath("/sdcard/f.txt"), b"hi", Mode::PRIVATE).unwrap();
        // Forced mode makes the file public despite the private request.
        assert_eq!(vfs.read(APP_B, &ns, &vpath("/sdcard/f.txt")).unwrap(), b"hi");
    }

    #[test]
    fn private_files_are_uid_protected() {
        let (vfs, ns) = setup();
        vfs.write(APP_A, &ns, &vpath("/data/data/A/secret"), b"s", Mode::PRIVATE).unwrap();
        assert_eq!(vfs.read(APP_A, &ns, &vpath("/data/data/A/secret")).unwrap(), b"s");
        assert_eq!(
            vfs.read(APP_B, &ns, &vpath("/data/data/A/secret")).err(),
            Some(VfsError::PermissionDenied)
        );
        assert_eq!(
            vfs.write(APP_B, &ns, &vpath("/data/data/A/secret"), b"x", Mode::PUBLIC).err(),
            Some(VfsError::PermissionDenied)
        );
    }

    #[test]
    fn union_maxoid_access_allows_cross_uid_read() {
        let (vfs, mut ns) = setup();
        vfs.write(APP_A, &ns, &vpath("/data/data/A/secret"), b"s", Mode::PRIVATE).unwrap();
        // Mount A's private dir for B with maxoid_access, tmp writable branch.
        vfs.with_store_mut(|s| s.mkdir_all(&vpath("/back/tmpA"), Uid::ROOT, Mode::PUBLIC).unwrap());
        let u = Union::new(
            vec![Branch::rw(vpath("/back/tmpA")), Branch::ro(vpath("/back/privA"))],
            true,
        );
        ns.add(Mount::union(vpath("/data/data/A"), u).with_forced_mode(Mode::PUBLIC));
        assert_eq!(vfs.read(APP_B, &ns, &vpath("/data/data/A/secret")).unwrap(), b"s");
        // B's write is redirected, not applied to A's copy.
        vfs.write(APP_B, &ns, &vpath("/data/data/A/secret"), b"mod", Mode::PUBLIC).unwrap();
        assert_eq!(vfs.read(APP_B, &ns, &vpath("/data/data/A/secret")).unwrap(), b"mod");
        vfs.with_store(|s| {
            assert_eq!(s.read(&vpath("/back/privA/secret")).unwrap(), b"s");
            assert_eq!(s.read(&vpath("/back/tmpA/secret")).unwrap(), b"mod");
        });
    }

    #[test]
    fn read_only_bind_rejects_mutation() {
        let (vfs, mut ns) = setup();
        ns.add(Mount::bind_ro(vpath("/ro"), vpath("/back/pub")));
        assert_eq!(
            vfs.write(APP_A, &ns, &vpath("/ro/f"), b"x", Mode::PUBLIC).err(),
            Some(VfsError::ReadOnly)
        );
        assert_eq!(
            vfs.mkdir_all(APP_A, &ns, &vpath("/ro/d"), Mode::PUBLIC).err(),
            Some(VfsError::ReadOnly)
        );
    }

    #[test]
    fn handles_bypass_path_checks() {
        let (vfs, ns) = setup();
        vfs.write(APP_A, &ns, &vpath("/data/data/A/att.pdf"), b"pdf", Mode::PRIVATE).unwrap();
        // A opens its private file and passes the handle to B.
        let h = vfs.open(APP_A, &ns, &vpath("/data/data/A/att.pdf"), OpenMode::Read).unwrap();
        assert_eq!(vfs.read_handle(h).unwrap(), b"pdf");
        // B cannot open the path itself.
        assert_eq!(
            vfs.open(APP_B, &ns, &vpath("/data/data/A/att.pdf"), OpenMode::Read).err(),
            Some(VfsError::PermissionDenied)
        );
        // Read-only handles refuse writes.
        assert_eq!(vfs.write_handle(h, b"x").err(), Some(VfsError::BadHandle));
    }

    #[test]
    fn readdir_includes_nested_mount_points() {
        let (vfs, mut ns) = setup();
        vfs.with_store_mut(|s| s.mkdir_all(&vpath("/back/tmpA"), Uid::ROOT, Mode::PUBLIC).unwrap());
        ns.add(Mount::bind(vpath("/sdcard/tmp"), vpath("/back/tmpA")));
        vfs.write(APP_A, &ns, &vpath("/sdcard/f"), b"x", Mode::PUBLIC).unwrap();
        let names: Vec<String> = vfs
            .read_dir(APP_A, &ns, &vpath("/sdcard"))
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["f".to_string(), "tmp".to_string()]);
    }

    #[test]
    fn rename_across_mounts_is_exdev() {
        let (vfs, ns) = setup();
        vfs.write(APP_A, &ns, &vpath("/sdcard/f"), b"x", Mode::PUBLIC).unwrap();
        assert_eq!(
            vfs.rename(APP_A, &ns, &vpath("/sdcard/f"), &vpath("/data/data/A/f")).err(),
            Some(VfsError::CrossDevice)
        );
    }

    #[test]
    fn rw_open_on_union_copies_up() {
        let (vfs, mut ns) = setup();
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/back/up"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.mkdir_all(&vpath("/back/low"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vpath("/back/low/f"), b"orig", Uid::ROOT, Mode::PUBLIC).unwrap();
        });
        let u =
            Union::new(vec![Branch::rw(vpath("/back/up")), Branch::ro(vpath("/back/low"))], false);
        ns.add(Mount::union(vpath("/m"), u));
        let h = vfs.open(APP_A, &ns, &vpath("/m/f"), OpenMode::ReadWrite).unwrap();
        vfs.write_handle(h, b"edited").unwrap();
        vfs.with_store(|s| {
            assert_eq!(s.read(&vpath("/back/low/f")).unwrap(), b"orig");
            assert_eq!(s.read(&vpath("/back/up/f")).unwrap(), b"edited");
        });
    }

    #[test]
    fn empty_namespace_hides_everything() {
        let vfs = Vfs::new();
        let ns = MountNamespace::new();
        assert_eq!(vfs.read(APP_A, &ns, &vpath("/anything")).err(), Some(VfsError::NotFound));
    }
}
