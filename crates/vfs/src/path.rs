//! Normalized absolute path type used by the VFS.
//!
//! All paths in the VFS are absolute and stored in normalized form: no `.`
//! or `..` components, no repeated or trailing slashes. Normalization at
//! construction time means path comparison, prefix matching (used for mount
//! resolution), and component iteration are all simple and allocation-free.

use crate::error::{VfsError, VfsResult};
use std::fmt;

/// Maximum length of a single path component, mirroring `NAME_MAX`.
pub const NAME_MAX: usize = 255;

/// A normalized absolute path.
///
/// `VPath` is the only path representation accepted by VFS entry points.
/// Construct one with [`VPath::new`], which rejects relative paths and
/// resolves `.` and `..` lexically (the VFS has no symlinks, so lexical
/// resolution is exact).
///
/// # Examples
///
/// ```
/// use maxoid_vfs::VPath;
/// let p = VPath::new("/storage/sdcard/../sdcard/data//A/").unwrap();
/// assert_eq!(p.as_str(), "/storage/sdcard/data/A");
/// assert!(p.starts_with(&VPath::new("/storage/sdcard").unwrap()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VPath(String);

impl VPath {
    /// Creates a normalized absolute path.
    ///
    /// Returns [`VfsError::InvalidArgument`] for relative paths or paths
    /// that escape the root via `..`, and [`VfsError::NameTooLong`] when a
    /// component exceeds [`NAME_MAX`].
    pub fn new(raw: &str) -> VfsResult<Self> {
        if !raw.starts_with('/') {
            return Err(VfsError::InvalidArgument);
        }
        let mut parts: Vec<&str> = Vec::new();
        for comp in raw.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    if parts.pop().is_none() {
                        return Err(VfsError::InvalidArgument);
                    }
                }
                name => {
                    if name.len() > NAME_MAX {
                        return Err(VfsError::NameTooLong);
                    }
                    parts.push(name);
                }
            }
        }
        let mut s = String::with_capacity(raw.len());
        for p in &parts {
            s.push('/');
            s.push_str(p);
        }
        if s.is_empty() {
            s.push('/');
        }
        Ok(VPath(s))
    }

    /// Returns the root path `/`.
    pub fn root() -> Self {
        VPath("/".to_string())
    }

    /// Returns the path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns true if this is the root path.
    pub fn is_root(&self) -> bool {
        self.0 == "/"
    }

    /// Iterates over the path components (excluding the root).
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|c| !c.is_empty())
    }

    /// Returns the number of components.
    pub fn depth(&self) -> usize {
        self.components().count()
    }

    /// Returns the final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            self.0.rsplit('/').next()
        }
    }

    /// Returns the parent path, or `None` for the root.
    pub fn parent(&self) -> Option<VPath> {
        if self.is_root() {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(VPath::root()),
            Some(idx) => Some(VPath(self.0[..idx].to_string())),
            None => None,
        }
    }

    /// Appends a single component or a relative multi-component suffix.
    ///
    /// Returns [`VfsError::InvalidArgument`] if `comp` contains `.`/`..`
    /// components or is absolute.
    pub fn join(&self, comp: &str) -> VfsResult<VPath> {
        if comp.is_empty() || comp.starts_with('/') {
            return Err(VfsError::InvalidArgument);
        }
        let mut s = if self.is_root() { String::new() } else { self.0.clone() };
        for part in comp.split('/') {
            if part.is_empty() || part == "." || part == ".." {
                return Err(VfsError::InvalidArgument);
            }
            if part.len() > NAME_MAX {
                return Err(VfsError::NameTooLong);
            }
            s.push('/');
            s.push_str(part);
        }
        Ok(VPath(s))
    }

    /// Returns true if `self` equals `prefix` or is beneath it.
    pub fn starts_with(&self, prefix: &VPath) -> bool {
        if prefix.is_root() {
            return true;
        }
        self.0 == prefix.0
            || (self.0.starts_with(&prefix.0)
                && self.0.as_bytes().get(prefix.0.len()) == Some(&b'/'))
    }

    /// Returns the part of `self` below `prefix` as a relative string.
    ///
    /// Returns `None` when `self` is not under `prefix`. For `self ==
    /// prefix` the result is the empty string.
    pub fn strip_prefix(&self, prefix: &VPath) -> Option<&str> {
        if !self.starts_with(prefix) {
            return None;
        }
        if prefix.is_root() {
            return Some(self.0.trim_start_matches('/'));
        }
        let rest = &self.0[prefix.0.len()..];
        Some(rest.trim_start_matches('/'))
    }

    /// Rebases `self` from `from` onto `onto`.
    ///
    /// For example, rebasing `/sdcard/data/f` from `/sdcard` onto
    /// `/branches/tmp` yields `/branches/tmp/data/f`. Returns `None` when
    /// `self` is not under `from`.
    pub fn rebase(&self, from: &VPath, onto: &VPath) -> Option<VPath> {
        let rest = self.strip_prefix(from)?;
        if rest.is_empty() {
            Some(onto.clone())
        } else {
            onto.join(rest).ok()
        }
    }
}

impl fmt::Display for VPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for VPath {
    type Err = VfsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        VPath::new(s)
    }
}

/// Convenience constructor that panics on malformed paths.
///
/// Intended for statically known paths in tests, examples and internal
/// constants.
///
/// # Panics
///
/// Panics when `raw` is not a valid absolute path.
pub fn vpath(raw: &str) -> VPath {
    VPath::new(raw).unwrap_or_else(|e| panic!("invalid static path {raw:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_dots_and_slashes() {
        assert_eq!(VPath::new("/a/./b//c/").unwrap().as_str(), "/a/b/c");
        assert_eq!(VPath::new("/a/b/../c").unwrap().as_str(), "/a/c");
        assert_eq!(VPath::new("/").unwrap().as_str(), "/");
        assert_eq!(VPath::new("/..//").err(), Some(VfsError::InvalidArgument));
    }

    #[test]
    fn rejects_relative() {
        assert_eq!(VPath::new("a/b").err(), Some(VfsError::InvalidArgument));
        assert_eq!(VPath::new("").err(), Some(VfsError::InvalidArgument));
    }

    #[test]
    fn parent_and_file_name() {
        let p = vpath("/a/b/c");
        assert_eq!(p.file_name(), Some("c"));
        assert_eq!(p.parent().unwrap().as_str(), "/a/b");
        assert_eq!(vpath("/a").parent().unwrap().as_str(), "/");
        assert!(VPath::root().parent().is_none());
        assert!(VPath::root().file_name().is_none());
    }

    #[test]
    fn join_multi_component() {
        let p = vpath("/data").join("data/com.app").unwrap();
        assert_eq!(p.as_str(), "/data/data/com.app");
        assert!(vpath("/data").join("../etc").is_err());
        assert!(vpath("/data").join("/abs").is_err());
        assert!(vpath("/data").join("").is_err());
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        let sdcard = vpath("/storage/sdcard");
        assert!(vpath("/storage/sdcard/x").starts_with(&sdcard));
        assert!(vpath("/storage/sdcard").starts_with(&sdcard));
        assert!(!vpath("/storage/sdcard2/x").starts_with(&sdcard));
        assert!(vpath("/anything").starts_with(&VPath::root()));
    }

    #[test]
    fn strip_and_rebase() {
        let p = vpath("/sdcard/data/A/f.txt");
        assert_eq!(p.strip_prefix(&vpath("/sdcard")), Some("data/A/f.txt"));
        assert_eq!(p.strip_prefix(&vpath("/other")), None);
        let rebased = p.rebase(&vpath("/sdcard"), &vpath("/branches/tmp")).unwrap();
        assert_eq!(rebased.as_str(), "/branches/tmp/data/A/f.txt");
        let same = vpath("/sdcard").rebase(&vpath("/sdcard"), &vpath("/b")).unwrap();
        assert_eq!(same.as_str(), "/b");
        assert_eq!(p.strip_prefix(&VPath::root()), Some("sdcard/data/A/f.txt"));
    }

    #[test]
    fn component_limits() {
        let long = "x".repeat(NAME_MAX + 1);
        assert_eq!(VPath::new(&format!("/{long}")).err(), Some(VfsError::NameTooLong));
        assert_eq!(vpath("/a").join(&long).err(), Some(VfsError::NameTooLong));
    }

    #[test]
    fn depth_counts_components() {
        assert_eq!(VPath::root().depth(), 0);
        assert_eq!(vpath("/a/b/c").depth(), 3);
    }
}
