//! In-memory virtual file system substrate for the Maxoid reproduction.
//!
//! This crate plays the role of the Linux storage stack in the paper's
//! prototype: a backing store ("the flash device"), an Aufs-style union
//! filesystem with copy-up and whiteouts, per-process mount namespaces, and
//! a permission-checked syscall facade.
//!
//! Layering, bottom to top:
//!
//! 1. [`store::Store`] — raw inode tree, no policy.
//! 2. [`union::Union`] — Aufs semantics over store directories.
//! 3. [`mount::MountNamespace`] — per-process view selection.
//! 4. [`fs::Vfs`] — UID-checked operations, the only layer apps touch.
//!
//! # Examples
//!
//! ```
//! use maxoid_vfs::{vpath, Cred, Mode, Mount, MountNamespace, Uid, Vfs};
//!
//! let vfs = Vfs::new();
//! vfs.with_store_mut(|s| s.mkdir_all(&vpath("/back/pub"), Uid::ROOT, Mode::PUBLIC))
//!     .unwrap();
//! let mut ns = MountNamespace::new();
//! ns.add(Mount::bind(vpath("/sdcard"), vpath("/back/pub")));
//! let app = Cred::new(Uid(10_001));
//! vfs.write(app, &ns, &vpath("/sdcard/hello.txt"), b"hi", Mode::PUBLIC).unwrap();
//! assert_eq!(vfs.read(app, &ns, &vpath("/sdcard/hello.txt")).unwrap(), b"hi");
//! ```

#![warn(missing_docs)]

pub mod cred;
pub mod error;
pub mod fs;
pub mod mount;
pub mod path;
pub mod store;
pub mod union;

pub use cred::{Cred, Mode, Uid};
pub use error::{VfsError, VfsResult};
pub use fs::{FileHandle, OpenMode, Vfs};
pub use mount::{Mount, MountKind, MountNamespace};
pub use path::{vpath, VPath};
pub use store::{
    shard_of, shard_of_path, DirEntry, FileData, InodeId, Metadata, Store, StoreStats,
    DEFAULT_SPILL_THRESHOLD, STORE_SHARDS, VIS_SHARDS,
};
pub use union::{Branch, CopyUpGranularity, Located, Union, APPEND_DELTA_PREFIX, WHITEOUT_PREFIX};
