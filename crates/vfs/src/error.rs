//! Error type for VFS operations, modelled after POSIX errno values.

use std::fmt;

/// Errors returned by VFS operations.
///
/// The variants mirror the POSIX errno values an Android app would observe
/// from the kernel, because Maxoid's transparency argument (U3) depends on
/// confined apps seeing exactly the error surface they would see on stock
/// Android.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VfsError {
    /// `ENOENT`: the path (or one of its ancestors) does not exist.
    NotFound,
    /// `EACCES`: the caller lacks permission for the requested access.
    PermissionDenied,
    /// `EEXIST`: the target already exists.
    AlreadyExists,
    /// `ENOTDIR`: a non-directory was used where a directory was required.
    NotADirectory,
    /// `EISDIR`: a directory was used where a file was required.
    IsADirectory,
    /// `ENOTEMPTY`: attempted to remove a non-empty directory.
    NotEmpty,
    /// `EROFS`: attempted to write through a read-only mount or branch.
    ReadOnly,
    /// `EBADF`: the file handle is stale or was opened without the
    /// requested access mode.
    BadHandle,
    /// `EXDEV`: a rename crossed a mount boundary.
    CrossDevice,
    /// `EINVAL`: the argument is malformed (e.g. a relative path where an
    /// absolute one is required).
    InvalidArgument,
    /// `ENAMETOOLONG`: a path component exceeds the component length limit.
    NameTooLong,
}

impl VfsError {
    /// Returns the conventional errno name for this error.
    pub fn errno_name(self) -> &'static str {
        match self {
            VfsError::NotFound => "ENOENT",
            VfsError::PermissionDenied => "EACCES",
            VfsError::AlreadyExists => "EEXIST",
            VfsError::NotADirectory => "ENOTDIR",
            VfsError::IsADirectory => "EISDIR",
            VfsError::NotEmpty => "ENOTEMPTY",
            VfsError::ReadOnly => "EROFS",
            VfsError::BadHandle => "EBADF",
            VfsError::CrossDevice => "EXDEV",
            VfsError::InvalidArgument => "EINVAL",
            VfsError::NameTooLong => "ENAMETOOLONG",
        }
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.errno_name())
    }
}

impl std::error::Error for VfsError {}

/// Result alias used throughout the VFS.
pub type VfsResult<T> = Result<T, VfsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_names_are_posix() {
        assert_eq!(VfsError::NotFound.errno_name(), "ENOENT");
        assert_eq!(VfsError::ReadOnly.errno_name(), "EROFS");
        assert_eq!(format!("{}", VfsError::PermissionDenied), "EACCES");
    }
}
