//! Property-based tests for the union filesystem: arbitrary operation
//! sequences behave exactly like a two-layer overlay model, and the lower
//! branch is never mutated.

use maxoid_vfs::{vpath, Branch, Mode, Store, Uid, Union, VfsError};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Operations the fuzzer drives through the union.
#[derive(Debug, Clone)]
enum Op {
    Write(u8, Vec<u8>),
    Append(u8, Vec<u8>),
    Unlink(u8),
    Read(u8),
    Stat(u8),
}

fn op() -> impl Strategy<Value = Op> {
    let name = 0..6u8;
    let data = proptest::collection::vec(any::<u8>(), 0..20);
    prop_oneof![
        (name.clone(), data.clone()).prop_map(|(n, d)| Op::Write(n, d)),
        (name.clone(), proptest::collection::vec(any::<u8>(), 1..12))
            .prop_map(|(n, d)| Op::Append(n, d)),
        name.clone().prop_map(Op::Unlink),
        name.clone().prop_map(Op::Read),
        name.prop_map(Op::Stat),
    ]
}

fn fname(n: u8) -> String {
    format!("f{n}.dat")
}

/// Builds a store with `lower_seed` files in the lower branch and an
/// empty writable upper branch.
fn setup(lower_seed: &[(u8, Vec<u8>)]) -> (Store, Union, BTreeMap<u8, Vec<u8>>) {
    let store = Store::new();
    store.mkdir_all(&vpath("/up"), Uid::ROOT, Mode::PUBLIC).unwrap();
    store.mkdir_all(&vpath("/low"), Uid::ROOT, Mode::PUBLIC).unwrap();
    let mut model = BTreeMap::new();
    for (n, data) in lower_seed {
        store
            .write(&vpath("/low").join(&fname(*n)).unwrap(), data, Uid::ROOT, Mode::PUBLIC)
            .unwrap();
        model.insert(*n, data.clone());
    }
    let union = Union::new(vec![Branch::rw(vpath("/up")), Branch::ro(vpath("/low"))], false);
    (store, union, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The union view always equals the model; the lower branch is
    /// byte-identical before and after any operation sequence.
    #[test]
    fn union_matches_overlay_model(
        seed in proptest::collection::vec((0..6u8, proptest::collection::vec(any::<u8>(), 0..16)), 0..4),
        ops in proptest::collection::vec(op(), 1..40),
    ) {
        let (store, union, mut model) = setup(&seed);
        let lower_before: Vec<(String, Vec<u8>)> = store
            .read_dir(&vpath("/low"))
            .unwrap()
            .into_iter()
            .map(|e| {
                let p = vpath("/low").join(&e.name).unwrap();
                (e.name, store.read(&p).unwrap())
            })
            .collect();

        for o in &ops {
            match o {
                Op::Write(n, data) => {
                    union.write(&store, &fname(*n), data, Uid::ROOT, Mode::PUBLIC).unwrap();
                    model.insert(*n, data.clone());
                }
                Op::Append(n, data) => {
                    let result = union.append(&store, &fname(*n), data);
                    match model.get_mut(n) {
                        Some(cur) => {
                            prop_assert!(result.is_ok());
                            cur.extend_from_slice(data);
                        }
                        None => prop_assert_eq!(result.err(), Some(VfsError::NotFound)),
                    }
                }
                Op::Unlink(n) => {
                    let result = union.unlink(&store, &fname(*n));
                    if model.remove(n).is_some() {
                        prop_assert!(result.is_ok());
                    } else {
                        prop_assert_eq!(result.err(), Some(VfsError::NotFound));
                    }
                }
                Op::Read(n) => {
                    let got = union.read(&store, &fname(*n)).ok();
                    prop_assert_eq!(got.as_ref(), model.get(n));
                }
                Op::Stat(n) => {
                    let got = union.stat(&store, &fname(*n)).ok();
                    match model.get(n) {
                        Some(data) => {
                            let meta = got.expect("model has the file");
                            prop_assert_eq!(meta.size, data.len() as u64);
                            prop_assert!(!meta.is_dir);
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
            }
            // Full-view check after each op: read every name.
            for n in 0..6u8 {
                let got = union.read(&store, &fname(n)).ok();
                prop_assert_eq!(
                    got.as_ref(),
                    model.get(&n),
                    "view mismatch at {} after {:?}",
                    fname(n),
                    o
                );
            }
            // Readdir equals the model's live set.
            let listed: Vec<String> = union
                .read_dir(&store, "")
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect();
            let expect: Vec<String> = model.keys().map(|n| fname(*n)).collect();
            prop_assert_eq!(listed, expect);
        }

        // The lower branch never changed (S4 at the mechanism level).
        let lower_after: Vec<(String, Vec<u8>)> = store
            .read_dir(&vpath("/low"))
            .unwrap()
            .into_iter()
            .map(|e| {
                let p = vpath("/low").join(&e.name).unwrap();
                (e.name, store.read(&p).unwrap())
            })
            .collect();
        prop_assert_eq!(lower_before, lower_after);
    }

    /// Whiteouts + re-creation never resurrect stale lower content.
    #[test]
    fn delete_then_create_is_fresh(
        content in proptest::collection::vec(any::<u8>(), 1..16),
        recreated in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let (store, union, _) = setup(&[(0, content.clone())]);
        union.unlink(&store, "f0.dat").unwrap();
        prop_assert!(union.read(&store, "f0.dat").is_err());
        union.write(&store, "f0.dat", &recreated, Uid::ROOT, Mode::PUBLIC).unwrap();
        prop_assert_eq!(union.read(&store, "f0.dat").unwrap(), recreated);
        // The lower copy still holds the original.
        prop_assert_eq!(store.read(&vpath("/low/f0.dat")).unwrap(), content);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Paths normalize idempotently and joins compose with parents.
    #[test]
    fn path_normalization_props(parts in proptest::collection::vec("[a-z]{1,6}", 1..6)) {
        let raw = format!("/{}", parts.join("/"));
        let p = maxoid_vfs::VPath::new(&raw).unwrap();
        // Normalization is idempotent.
        let renorm = maxoid_vfs::VPath::new(p.as_str()).unwrap();
        prop_assert_eq!(renorm.as_str(), p.as_str());
        // depth == component count.
        prop_assert_eq!(p.depth(), parts.len());
        // parent/join round-trip.
        if let Some(parent) = p.parent() {
            let name = p.file_name().unwrap();
            let rejoined = parent.join(name).unwrap();
            prop_assert_eq!(rejoined.as_str(), p.as_str());
        }
        // Doubling slashes or inserting dots does not change the result.
        let messy = format!("/{}/.", parts.join("//"));
        let messy_norm = maxoid_vfs::VPath::new(&messy).unwrap();
        prop_assert_eq!(messy_norm.as_str(), p.as_str());
    }
}
