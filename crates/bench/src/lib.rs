//! Benchmark harness for the Maxoid evaluation (paper §7.2).
//!
//! Provides workload builders shared by the Criterion benches and the
//! table-printing binaries. Every microbenchmark runs in three setups:
//!
//! - **android** — the unmodified-Android baseline: a plain bind
//!   namespace (no union mounts, no tmp windows) and, for providers, raw
//!   SQL against primary tables with no proxy machinery.
//! - **initiator** — Maxoid with the app running normally. The paper's
//!   claim: negligible overhead (single-branch mounts, primary tables).
//! - **delegate** — Maxoid with the app confined (`B^A`): union mounts
//!   with copy-up, COW views with delta tables.
//!
//! Absolute times are not comparable to the paper's Nexus 7 numbers; the
//! *shape* (who pays, roughly how much, and where the worst case is) is.

#![warn(missing_docs)]

pub mod fsbench;
pub mod provider_bench;
pub mod report;

pub use fsbench::{FsMode, FsWorkload};
pub use provider_bench::{cow_point_query, cow_table, DictMode, DictWorkload};
pub use report::{measure, measure_interleaved, BenchJson, Case, Measurement, Unit};
