//! Tiny measurement helpers for the table-printing binaries.

use std::time::Instant;

/// Untimed warmup iterations run before the timed trials. Warmup absorbs
/// allocator growth, cold caches and (since the hot-path caching work)
/// first-use cache population, so the first mode benchmarked is not
/// penalized relative to later ones.
pub const WARMUP_TRIALS: usize = 3;

/// A set of timed trials.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-trial wall times in nanoseconds.
    pub trials_ns: Vec<u64>,
}

impl Measurement {
    /// Mean time in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.trials_ns.is_empty() {
            return 0.0;
        }
        self.trials_ns.iter().sum::<u64>() as f64 / self.trials_ns.len() as f64
    }

    /// Sample standard deviation in nanoseconds.
    pub fn stddev_ns(&self) -> f64 {
        let n = self.trials_ns.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_ns();
        let var = self
            .trials_ns
            .iter()
            .map(|&t| {
                let d = t as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Mean time in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns() / 1_000.0
    }

    /// Median time in nanoseconds (average of the two middle trials for
    /// even counts). Robust against a single pathological trial.
    pub fn median_ns(&self) -> f64 {
        if self.trials_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.trials_ns.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2] as f64
        } else {
            (sorted[n / 2 - 1] as f64 + sorted[n / 2] as f64) / 2.0
        }
    }

    /// Median time in microseconds.
    pub fn median_us(&self) -> f64 {
        self.median_ns() / 1_000.0
    }

    /// Trimmed mean in nanoseconds: drops the slowest and fastest tenth
    /// of the trials (at least one from each end once there are three or
    /// more) before averaging. Falls back to the plain mean when too few
    /// trials remain.
    pub fn trimmed_mean_ns(&self) -> f64 {
        let n = self.trials_ns.len();
        if n < 3 {
            return self.mean_ns();
        }
        let k = (n / 10).max(1);
        if 2 * k >= n {
            return self.mean_ns();
        }
        let mut sorted = self.trials_ns.clone();
        sorted.sort_unstable();
        let kept = &sorted[k..n - k];
        kept.iter().sum::<u64>() as f64 / kept.len() as f64
    }

    /// Trimmed mean in microseconds.
    pub fn trimmed_mean_us(&self) -> f64 {
        self.trimmed_mean_ns() / 1_000.0
    }

    /// 95th-percentile time in nanoseconds (nearest-rank method: the
    /// smallest trial at or above the 95% rank). Tail latency is what a
    /// user feels when a gesture occasionally stalls; the mean hides it.
    pub fn p95_ns(&self) -> f64 {
        if self.trials_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.trials_ns.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((n as f64) * 0.95).ceil() as usize;
        sorted[rank.clamp(1, n) - 1] as f64
    }

    /// 95th-percentile time in microseconds.
    pub fn p95_us(&self) -> f64 {
        self.p95_ns() / 1_000.0
    }

    /// Overhead of `self` relative to a baseline measurement, in percent
    /// (negative means faster than baseline).
    pub fn overhead_pct(&self, baseline: &Measurement) -> f64 {
        let b = baseline.mean_ns();
        if b == 0.0 {
            return 0.0;
        }
        (self.mean_ns() - b) / b * 100.0
    }
}

/// Runs `op` for `trials` timed iterations, invoking `setup` before each
/// (untimed) to reset state.
pub fn measure<S, O>(trials: usize, mut setup: S, mut op: O) -> Measurement
where
    S: FnMut(),
    O: FnMut(),
{
    for _ in 0..WARMUP_TRIALS.min(trials) {
        setup();
        op();
    }
    let mut trials_ns = Vec::with_capacity(trials);
    for _ in 0..trials {
        setup();
        let start = Instant::now();
        op();
        trials_ns.push(start.elapsed().as_nanos() as u64);
    }
    Measurement { trials_ns }
}

/// One interleaved-measurement case: (per-trial setup, timed operation).
pub type Case = (Box<dyn FnMut()>, Box<dyn FnMut()>);

/// Measures several alternatives with interleaved trials (round-robin),
/// so allocator warm-up and cache effects spread evenly across modes
/// instead of favouring whichever runs last.
pub fn measure_interleaved(trials: usize, mut cases: Vec<Case>) -> Vec<Measurement> {
    // Warmup round.
    for (setup, op) in cases.iter_mut() {
        for _ in 0..WARMUP_TRIALS.min(trials) {
            setup();
            op();
        }
    }
    let mut out: Vec<Measurement> =
        cases.iter().map(|_| Measurement { trials_ns: Vec::with_capacity(trials) }).collect();
    for _ in 0..trials {
        for (i, (setup, op)) in cases.iter_mut().enumerate() {
            setup();
            let start = Instant::now();
            op();
            out[i].trials_ns.push(start.elapsed().as_nanos() as u64);
        }
    }
    out
}

/// The unit a benchmark row is expressed in. Emitted verbatim as the
/// `unit` field of every row so downstream tooling does not have to
/// guess from the row name whether smaller-is-better applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Microseconds (latency cells; smaller is better).
    Us,
    /// Operations per second (throughput cells; larger is better).
    OpsPerSec,
    /// Dimensionless scalar: hit rates, speedups, counts.
    Ratio,
}

impl Unit {
    /// The string emitted in the JSON `unit` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Us => "us",
            Unit::OpsPerSec => "ops_per_sec",
            Unit::Ratio => "ratio",
        }
    }
}

/// Accumulates named measurements and serialises them as a small JSON
/// document for CI artifacts (`BENCH_table3.json`, `BENCH_table4.json`).
///
/// Hand-rolled on purpose: the workspace carries no JSON dependency and
/// the schema is flat enough not to need one.
#[derive(Debug, Default)]
pub struct BenchJson {
    rows: Vec<Row>,
}

#[derive(Debug)]
struct Row {
    name: String,
    unit: Unit,
    mean: f64,
    stddev: f64,
    median: f64,
    trimmed: f64,
    p95: f64,
}

impl Default for Unit {
    fn default() -> Self {
        Unit::Us
    }
}

impl BenchJson {
    /// Creates an empty report.
    pub fn new() -> Self {
        BenchJson::default()
    }

    /// Records one benchmark cell under `name` (unit `us`).
    pub fn push(&mut self, name: &str, m: &Measurement) {
        self.rows.push(Row {
            name: name.to_string(),
            unit: Unit::Us,
            mean: m.mean_us(),
            stddev: m.stddev_ns() / 1_000.0,
            median: m.median_us(),
            trimmed: m.trimmed_mean_us(),
            p95: m.p95_us(),
        });
    }

    /// Records a bare scalar cell (e.g. a cache hit rate) under `name`
    /// with unit `ratio`. Scalars reuse the `mean_us` slot and zero the
    /// spread columns.
    pub fn push_scalar(&mut self, name: &str, value: f64) {
        self.push_scalar_unit(name, value, Unit::Ratio);
    }

    /// Records a bare scalar cell with an explicit [`Unit`] — used for
    /// throughput rows (`Unit::OpsPerSec`) that would otherwise read as
    /// dimensionless.
    pub fn push_scalar_unit(&mut self, name: &str, value: f64, unit: Unit) {
        self.rows.push(Row {
            name: name.to_string(),
            unit,
            mean: value,
            stddev: 0.0,
            median: value,
            trimmed: value,
            p95: value,
        });
    }

    /// Renders the report as a JSON string:
    /// `{"benchmarks": [{"name": ..., "unit": ..., "mean_us": ...,
    /// "stddev_us": ..., "median_us": ..., "trimmed_mean_us": ...,
    /// "p95_us": ...}, ...]}`. The stat keys keep their historical
    /// `_us` suffix for all units; the `unit` field is authoritative.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\", \"mean_us\": {:.3}, \
                 \"stddev_us\": {:.3}, \"median_us\": {:.3}, \"trimmed_mean_us\": {:.3}, \
                 \"p95_us\": {:.3}}}{comma}\n",
                json_escape(&row.name),
                row.unit.as_str(),
                row.mean,
                row.stddev,
                row.median,
                row.trimmed,
                row.p95,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an overhead percentage the way the paper's Table 3 does.
pub fn fmt_overhead(pct: f64) -> String {
    if pct.abs() < 0.5 {
        "0".to_string()
    } else {
        format!("{pct:.1}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let m = Measurement { trials_ns: vec![100, 200, 300] };
        assert!((m.mean_ns() - 200.0).abs() < 1e-9);
        assert!(m.stddev_ns() > 0.0);
        let b = Measurement { trials_ns: vec![100, 100, 100] };
        assert!((m.overhead_pct(&b) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn median_is_outlier_robust() {
        let m = Measurement { trials_ns: vec![100, 110, 120, 130, 100_000] };
        assert!((m.median_ns() - 120.0).abs() < 1e-9);
        // Even count: average of the two middle trials.
        let e = Measurement { trials_ns: vec![100, 200, 300, 400] };
        assert!((e.median_ns() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        // One trial from each end is dropped; the huge outlier vanishes.
        let m = Measurement { trials_ns: vec![100, 110, 120, 130, 100_000] };
        assert!((m.trimmed_mean_ns() - 120.0).abs() < 1e-9);
        // Too few trials to trim: falls back to the plain mean.
        let small = Measurement { trials_ns: vec![100, 300] };
        assert!((small.trimmed_mean_ns() - small.mean_ns()).abs() < 1e-9);
    }

    #[test]
    fn measure_runs_trials() {
        let mut count = 0;
        let m = measure(5, || {}, || count += 1);
        assert_eq!(m.trials_ns.len(), 5);
        // Trials plus the untimed warmup iterations.
        assert_eq!(count, 5 + WARMUP_TRIALS);
    }

    #[test]
    fn degenerate_stats_are_zero() {
        let empty = Measurement { trials_ns: vec![] };
        assert_eq!(empty.mean_ns(), 0.0);
        assert_eq!(empty.stddev_ns(), 0.0);
        assert_eq!(empty.median_ns(), 0.0);
        assert_eq!(empty.trimmed_mean_ns(), 0.0);
        let single = Measurement { trials_ns: vec![7] };
        assert_eq!(single.stddev_ns(), 0.0);
        assert_eq!(single.median_ns(), 7.0);
        assert_eq!(single.trimmed_mean_ns(), 7.0);
    }

    #[test]
    fn p95_is_the_tail() {
        // 20 trials 1..=20 (in ns): rank ceil(20*0.95)=19 -> value 19.
        let m = Measurement { trials_ns: (1..=20).collect() };
        assert!((m.p95_ns() - 19.0).abs() < 1e-9);
        // Small samples: p95 is the max.
        let s = Measurement { trials_ns: vec![300, 100, 200] };
        assert!((s.p95_ns() - 300.0).abs() < 1e-9);
        assert_eq!(Measurement { trials_ns: vec![] }.p95_ns(), 0.0);
    }

    #[test]
    fn overhead_formatting() {
        assert_eq!(fmt_overhead(0.2), "0");
        assert_eq!(fmt_overhead(7.5), "7.5%");
        assert_eq!(fmt_overhead(-3.0), "-3.0%");
    }

    #[test]
    fn bench_json_shape() {
        let mut j = BenchJson::new();
        j.push("dict/insert/android", &Measurement { trials_ns: vec![1_000, 3_000] });
        j.push("dict/insert/delegate", &Measurement { trials_ns: vec![2_000] });
        let s = j.to_json();
        assert!(s.starts_with("{\n  \"benchmarks\": [\n"));
        assert!(s.contains("\"name\": \"dict/insert/android\", \"unit\": \"us\", \"mean_us\": 2.000"));
        assert!(s.contains(
            "\"name\": \"dict/insert/delegate\", \"unit\": \"us\", \"mean_us\": 2.000, \
             \"stddev_us\": 0.000, \"median_us\": 2.000, \"trimmed_mean_us\": 2.000, \
             \"p95_us\": 2.000}"
        ));
        // Exactly one separating comma between the two entries.
        assert_eq!(s.matches("},").count(), 1);
        assert!(s.trim_end().ends_with("]\n}"));
    }

    #[test]
    fn bench_json_scalar_rows() {
        let mut j = BenchJson::new();
        j.push_scalar("cache/stmt_hit_rate", 0.9375);
        let s = j.to_json();
        assert!(s.contains(
            "\"name\": \"cache/stmt_hit_rate\", \"unit\": \"ratio\", \"mean_us\": 0.938, \
             \"stddev_us\": 0.000"
        ));
    }

    #[test]
    fn bench_json_unit_field() {
        let mut j = BenchJson::new();
        j.push("lat/cell", &Measurement { trials_ns: vec![1_000] });
        j.push_scalar("cache/hit_rate", 0.5);
        j.push_scalar_unit("concurrency/threads4/ops_per_sec", 1234.5, Unit::OpsPerSec);
        let s = j.to_json();
        assert!(s.contains("\"name\": \"lat/cell\", \"unit\": \"us\""));
        assert!(s.contains("\"name\": \"cache/hit_rate\", \"unit\": \"ratio\""));
        assert!(s.contains(
            "\"name\": \"concurrency/threads4/ops_per_sec\", \"unit\": \"ops_per_sec\", \
             \"mean_us\": 1234.500"
        ));
        // Every row carries a unit.
        assert_eq!(s.matches("\"unit\":").count(), 3);
    }

    #[test]
    fn bench_json_escapes_names() {
        let mut j = BenchJson::new();
        j.push("a\"b\\c\nd", &Measurement { trials_ns: vec![1] });
        let s = j.to_json();
        assert!(s.contains(r#""name": "a\"b\\c\nd""#));
    }
}
