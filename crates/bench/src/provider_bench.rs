//! User Dictionary provider workloads for the Table 3 microbenchmarks.
//!
//! Matches the paper's parameters: a 1000-row table; delegate updates run
//! before any delta entries exist (so the copy-on-write path is paid);
//! queries run after updates (so both primary and delta tables are
//! involved); query-1-word addresses a specific id, query-1k selects all.

use maxoid_cowproxy::{CowProxy, DbView, QueryOpts};
use maxoid_providers::provider::ContentProvider;
use maxoid_providers::{Caller, ContentValues, QueryArgs, Uri, UserDictionaryProvider};
use maxoid_sqldb::{Database, FlattenPolicy, Value};

/// Which setup a dictionary workload runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictMode {
    /// Raw SQL against a plain table — the unmodified-Android baseline
    /// (no proxy in the call path at all).
    Android,
    /// Through the provider as an initiator (proxy present, primary
    /// tables).
    Initiator,
    /// Through the provider as a delegate (COW views + delta tables).
    Delegate,
}

impl DictMode {
    /// All three modes, baseline first.
    pub const ALL: [DictMode; 3] = [DictMode::Android, DictMode::Initiator, DictMode::Delegate];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DictMode::Android => "android",
            DictMode::Initiator => "initiator",
            DictMode::Delegate => "delegate",
        }
    }
}

/// One dictionary operation staged ahead of its timed half: everything
/// the op needs that costs allocation or formatting (URI clones, value
/// maps, parameter vectors). Mirrors `FsWorkload`'s staged writes — with
/// staging fused into the timed region, allocator jitter drives the
/// stddev of fast cells past their mean.
enum Staged {
    /// Parameters for a raw-SQL statement (Android mode).
    Raw(Vec<Value>),
    /// Values for a provider insert.
    Insert(ContentValues),
    /// Row URI + values for a provider update.
    Update(Uri, ContentValues),
    /// Row URI for a provider point query.
    Query(Uri),
}

/// A User Dictionary instance pre-populated with `rows` words, plus the
/// caller identity for the selected mode.
pub struct DictWorkload {
    mode: DictMode,
    /// Raw database for the Android baseline.
    raw: Option<Database>,
    /// Provider for the Maxoid modes.
    provider: Option<UserDictionaryProvider>,
    caller: Caller,
    uri: Uri,
    rows: usize,
    next_update: usize,
    staged: Option<Staged>,
}

impl DictWorkload {
    /// Builds the workload with `rows` pre-seeded words.
    pub fn new(mode: DictMode, rows: usize) -> DictWorkload {
        let uri = Uri::parse("content://user_dictionary/words").expect("static uri");
        let caller = match mode {
            DictMode::Delegate => Caller::delegate("bench.app", "bench.initiator"),
            _ => Caller::normal("bench.app"),
        };
        let mut w = DictWorkload {
            mode,
            raw: None,
            provider: None,
            caller,
            uri,
            rows,
            next_update: 0,
            staged: None,
        };
        match mode {
            DictMode::Android => {
                let mut db = Database::with_policy(FlattenPolicy::Sqlite386);
                db.execute_batch(
                    "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT NOT NULL, \
                     frequency INTEGER, locale TEXT, appid INTEGER);",
                )
                .expect("schema");
                for i in 0..rows {
                    db.execute(
                        "INSERT INTO words (word, frequency) VALUES (?, ?)",
                        &[Value::Text(format!("word{i}")), Value::Integer(i as i64)],
                    )
                    .expect("seed");
                }
                w.raw = Some(db);
            }
            DictMode::Initiator | DictMode::Delegate => {
                let mut p = UserDictionaryProvider::new();
                let seeder = Caller::normal("bench.seeder");
                for i in 0..rows {
                    p.insert(
                        &seeder,
                        &w.uri,
                        &ContentValues::new()
                            .put("word", format!("word{i}"))
                            .put("frequency", i as i64),
                    )
                    .expect("seed");
                }
                w.provider = Some(p);
            }
        }
        w
    }

    /// Access to the proxy stats (None in Android mode).
    pub fn proxy(&self) -> Option<&CowProxy> {
        self.provider.as_ref().map(|p| p.proxy())
    }

    /// Enables or disables every hot-path cache under this workload
    /// (statement/plan caches of the active database, rewrite cache of
    /// the proxy). The `cache` bench's before/after cells toggle this.
    pub fn set_caches(&mut self, on: bool) {
        if let Some(db) = &self.raw {
            db.set_statement_caches(on);
        }
        if let Some(p) = &mut self.provider {
            p.proxy().db().set_statement_caches(on);
            p.proxy_mut().set_rewrite_cache(on);
        }
    }

    /// `(hits, misses)` of the statement cache of the active database.
    pub fn stmt_cache_stats(&self) -> (u64, u64) {
        let stats = match (&self.raw, &self.provider) {
            (Some(db), _) => &db.stats,
            (_, Some(p)) => &p.proxy().db().stats,
            _ => unreachable!("workload always has a database"),
        };
        (stats.stmt_cache_hits.get(), stats.stmt_cache_misses.get())
    }

    /// `(hits, misses)` of the proxy's rewrite cache (zeros in Android
    /// mode, which has no proxy).
    pub fn rewrite_cache_stats(&self) -> (u64, u64) {
        self.provider.as_ref().map_or((0, 0), |p| p.proxy().rewrite_cache_stats())
    }

    /// Untimed half of `insert`: formats the word and builds the value
    /// map / parameter vector.
    pub fn stage_insert(&mut self, i: usize) {
        self.staged = Some(match self.mode {
            DictMode::Android => {
                Staged::Raw(vec![Value::Text(format!("new{i}")), Value::Integer(0)])
            }
            _ => Staged::Insert(
                ContentValues::new().put("word", format!("new{i}")).put("frequency", 0),
            ),
        });
    }

    /// Timed half: runs the staged insert.
    pub fn insert_staged(&mut self) {
        match self.staged.take().expect("stage_insert first") {
            Staged::Raw(params) => {
                self.raw
                    .as_mut()
                    .expect("android mode has raw db")
                    .execute("INSERT INTO words (word, frequency) VALUES (?, ?)", &params)
                    .expect("insert");
            }
            Staged::Insert(values) => {
                self.provider
                    .as_mut()
                    .expect("maxoid modes have provider")
                    .insert(&self.caller, &self.uri, &values)
                    .expect("insert");
            }
            _ => panic!("staged op is not an insert"),
        }
    }

    /// insert: one new word (staging and timed op fused; benches wanting
    /// clean timings call the halves).
    pub fn insert(&mut self, i: usize) {
        self.stage_insert(i);
        self.insert_staged();
    }

    /// Untimed half of `update`: picks the next id (cycling through the
    /// table so delegate-mode updates keep hitting rows without delta
    /// entries — first-touch copy-on-write, as in the paper) and builds
    /// the row URI and values.
    pub fn stage_update(&mut self) {
        self.next_update = self.next_update % self.rows + 1;
        let id = self.next_update as i64;
        self.staged = Some(match self.mode {
            DictMode::Android => Staged::Raw(vec![Value::Integer(id)]),
            _ => Staged::Update(self.uri.with_id(id), ContentValues::new().put("frequency", id)),
        });
    }

    /// Timed half: runs the staged update.
    pub fn update_staged(&mut self) {
        match self.staged.take().expect("stage_update first") {
            Staged::Raw(params) => {
                self.raw
                    .as_mut()
                    .expect("android mode has raw db")
                    .execute("UPDATE words SET frequency = frequency + 1 WHERE _id = ?", &params)
                    .expect("update");
            }
            Staged::Update(uri, values) => {
                self.provider
                    .as_mut()
                    .expect("maxoid modes have provider")
                    .update(&self.caller, &uri, &values, &QueryArgs::default())
                    .expect("update");
            }
            _ => panic!("staged op is not an update"),
        }
    }

    /// update: bumps one seeded word by id (staging and timed op fused).
    pub fn update(&mut self) {
        self.stage_update();
        self.update_staged();
    }

    /// Untimed half of `query_one`: builds the row URI / parameters.
    pub fn stage_query_one(&mut self, id: i64) {
        self.staged = Some(match self.mode {
            DictMode::Android => Staged::Raw(vec![Value::Integer(id)]),
            _ => Staged::Query(self.uri.with_id(id)),
        });
    }

    /// Timed half: runs the staged point query.
    pub fn query_one_staged(&mut self) -> usize {
        match self.staged.take().expect("stage_query_one first") {
            Staged::Raw(params) => self
                .raw
                .as_ref()
                .expect("android mode has raw db")
                .query("SELECT * FROM words WHERE _id = ?", &params)
                .expect("query")
                .rows
                .len(),
            Staged::Query(uri) => self
                .provider
                .as_mut()
                .expect("maxoid modes have provider")
                .query(&self.caller, &uri, &QueryArgs::default())
                .expect("query")
                .rows
                .len(),
            _ => panic!("staged op is not a query"),
        }
    }

    /// query 1 word: by id in the URI (staging and timed op fused).
    pub fn query_one(&mut self, id: i64) -> usize {
        self.stage_query_one(id);
        self.query_one_staged()
    }

    /// query 1k words: selects every word.
    pub fn query_all(&mut self) -> usize {
        match self.mode {
            DictMode::Android => self
                .raw
                .as_ref()
                .expect("android mode has raw db")
                .query("SELECT * FROM words", &[])
                .expect("query")
                .rows
                .len(),
            _ => self
                .provider
                .as_mut()
                .expect("maxoid modes have provider")
                .query(&self.caller, &self.uri, &QueryArgs::default())
                .expect("query")
                .rows
                .len(),
        }
    }

    /// delete: removes one seeded word (whiteout for delegates).
    pub fn delete(&mut self, id: i64) {
        match self.mode {
            DictMode::Android => {
                self.raw
                    .as_mut()
                    .expect("android mode has raw db")
                    .execute("DELETE FROM words WHERE _id = ?", &[Value::Integer(id)])
                    .expect("delete");
            }
            _ => {
                self.provider
                    .as_mut()
                    .expect("maxoid modes have provider")
                    .delete(&self.caller, &self.uri.with_id(id), &QueryArgs::default())
                    .expect("delete");
            }
        }
    }
}

/// Builds a CowProxy with `rows` public rows and `delta_rows` volatile
/// rows for initiator `A` — used by the flattening ablation bench.
pub fn cow_table(policy: FlattenPolicy, rows: usize, delta_rows: usize) -> CowProxy {
    let mut p = CowProxy::with_policy(policy);
    p.execute_batch("CREATE TABLE tab1 (_id INTEGER PRIMARY KEY, data TEXT);").expect("schema");
    for i in 0..rows {
        p.insert(&DbView::Primary, "tab1", &[("data", format!("d{i}").into())]).expect("seed");
    }
    let delegate = DbView::Delegate { initiator: "A".into() };
    for i in 0..delta_rows {
        p.update(
            &delegate,
            "tab1",
            &[("data", format!("v{i}").into())],
            Some("_id = ?"),
            &[Value::Integer((i + 1) as i64)],
        )
        .expect("delta seed");
    }
    p
}

/// Runs a point query through the COW view (the flattening-sensitive
/// query shape).
pub fn cow_point_query(p: &CowProxy, id: i64) -> usize {
    let delegate = DbView::Delegate { initiator: "A".into() };
    p.query(
        &delegate,
        "tab1",
        &QueryOpts {
            columns: vec!["data".into()],
            where_clause: Some("_id = ?".into()),
            ..Default::default()
        },
        &[Value::Integer(id)],
    )
    .expect("query")
    .rows
    .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree_on_results() {
        for mode in DictMode::ALL {
            let mut w = DictWorkload::new(mode, 50);
            assert_eq!(w.query_all(), 50, "mode {}", mode.label());
            assert_eq!(w.query_one(10), 1);
            w.insert(0);
            w.update();
            assert_eq!(w.query_all(), 51);
            w.delete(5);
            assert_eq!(w.query_all(), 50);
            assert_eq!(w.query_one(5), 0);
        }
    }

    #[test]
    fn staged_halves_match_fused_ops() {
        for mode in DictMode::ALL {
            let mut w = DictWorkload::new(mode, 20);
            w.stage_insert(0);
            w.insert_staged();
            w.stage_update();
            w.update_staged();
            w.stage_query_one(3);
            assert_eq!(w.query_one_staged(), 1, "mode {}", mode.label());
            assert_eq!(w.query_all(), 21);
            // The update cycled to the first seeded row.
            assert_eq!(w.query_one(1), 1);
        }
    }

    #[test]
    fn delegate_mode_uses_cow_machinery() {
        let mut w = DictWorkload::new(DictMode::Delegate, 20);
        w.update();
        let proxy = w.proxy().expect("delegate mode has proxy");
        assert!(proxy.has_delta("words", "bench.initiator"));
    }

    #[test]
    fn cow_table_builder_shapes() {
        let p = cow_table(FlattenPolicy::Sqlite386, 100, 10);
        assert_eq!(cow_point_query(&p, 1), 1);
        assert_eq!(cow_point_query(&p, 100), 1);
        p.db().stats.reset();
        cow_point_query(&p, 50);
        assert!(p.db().stats.flattened_queries.get() > 0);
        let off = cow_table(FlattenPolicy::Off, 100, 10);
        off.db().stats.reset();
        cow_point_query(&off, 50);
        assert_eq!(off.db().stats.flattened_queries.get(), 0);
    }
}
