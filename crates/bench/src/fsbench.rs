//! File-system workloads for the Table 3 microbenchmarks.

use maxoid::manifest::MaxoidManifest;
use maxoid::{MaxoidSystem, Pid};
use maxoid_vfs::{vpath, Mode, Mount, MountNamespace, VPath};

/// Which setup a filesystem workload runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsMode {
    /// Plain bind namespace: the unmodified-Android baseline.
    Android,
    /// Maxoid, app running normally.
    Initiator,
    /// Maxoid, app running as a delegate (union mounts active).
    Delegate,
}

impl FsMode {
    /// All three modes, baseline first.
    pub const ALL: [FsMode; 3] = [FsMode::Android, FsMode::Initiator, FsMode::Delegate];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FsMode::Android => "android",
            FsMode::Initiator => "initiator",
            FsMode::Delegate => "delegate",
        }
    }
}

/// A booted system with one app in the requested mode, operating on its
/// internal file storage (the paper's Table 3 FS benchmark target).
pub struct FsWorkload {
    /// The system under test.
    pub sys: MaxoidSystem,
    /// The benched process.
    pub pid: Pid,
    dir: VPath,
    counter: u64,
    /// `(path, payload)` prepared by `stage_write`/`stage_append`:
    /// allocation and path formatting happen untimed, so the timed op
    /// measures only the syscall (the 1 MB rows otherwise spend as long
    /// zero-filling the payload as writing it, with allocator jitter
    /// driving stddev to the order of the mean).
    staged: Option<(VPath, Vec<u8>)>,
}

impl FsWorkload {
    /// Builds the workload: app `bench.app` with `nfiles` pre-seeded files
    /// of `size` bytes in its internal storage (seeded while running
    /// normally, so in Delegate mode they sit in the read-only branch and
    /// appends must copy up).
    pub fn new(mode: FsMode, nfiles: usize, size: usize) -> FsWorkload {
        let sys = MaxoidSystem::boot().expect("boot");
        sys.install("bench.app", vec![], MaxoidManifest::new()).expect("install");
        sys.install("bench.initiator", vec![], MaxoidManifest::new()).expect("install");

        let dir = vpath("/data/data/bench.app/files");
        let seed_pid = match mode {
            FsMode::Android => {
                // Plain single bind of the app's backing dir: no Maxoid
                // mounts at all.
                let host = maxoid::layout::back_internal("bench.app").expect("layout");
                let mut ns = MountNamespace::new();
                ns.add(Mount::bind(vpath("/data/data/bench.app"), host));
                sys.kernel
                    .spawn(&maxoid::AppId::new("bench.app"), maxoid::ExecContext::Normal, ns)
                    .expect("spawn baseline")
            }
            FsMode::Initiator | FsMode::Delegate => sys.launch("bench.app").expect("launch"),
        };
        // Seed the original files as the app itself (they land in
        // Priv(bench.app)).
        sys.kernel.mkdir_all(seed_pid, &dir, Mode::PRIVATE).expect("mkdir");
        let payload = vec![0xabu8; size];
        for i in 0..nfiles {
            sys.kernel
                .write(
                    seed_pid,
                    &dir.join(&format!("orig{i}.dat")).unwrap(),
                    &payload,
                    Mode::PRIVATE,
                )
                .expect("seed");
        }
        let pid = match mode {
            FsMode::Delegate => {
                sys.launch_as_delegate("bench.app", "bench.initiator").expect("delegate launch")
            }
            _ => seed_pid,
        };
        FsWorkload { sys, pid, dir, counter: 0, staged: None }
    }

    /// Path of a pre-seeded file.
    pub fn seeded(&self, i: usize) -> VPath {
        self.dir.join(&format!("orig{i}.dat")).expect("valid name")
    }

    /// Enables or disables the union-mount resolution caches of the
    /// benched process (no-op in Android mode, which has no union
    /// mounts). The `cache` bench's before/after cells toggle this.
    pub fn set_resolve_caches(&mut self, on: bool) {
        let _ = self.sys.kernel.set_resolve_caches(self.pid, on);
    }

    /// Aggregate `(hits, misses)` of the benched process' resolution
    /// caches.
    pub fn resolve_cache_stats(&self) -> (u64, u64) {
        self.sys.kernel.resolve_cache_stats(self.pid).unwrap_or((0, 0))
    }

    /// Reads a seeded file.
    pub fn read(&self, i: usize) {
        self.sys.kernel.read(self.pid, &self.seeded(i)).expect("read");
    }

    /// Untimed half of `write_new`: picks the next fresh file name and
    /// allocates the payload.
    pub fn stage_write(&mut self, size: usize) {
        self.counter += 1;
        let p = self.dir.join(&format!("new{}.dat", self.counter)).expect("valid name");
        self.staged = Some((p, vec![0x5au8; size]));
    }

    /// Timed half: creates and writes the staged file.
    pub fn write_staged(&mut self) {
        let (p, payload) = self.staged.take().expect("stage_write first");
        self.sys.kernel.write(self.pid, &p, &payload, Mode::PRIVATE).expect("write");
    }

    /// Creates and writes a fresh file of `size` bytes (staging and
    /// timed op fused; benches wanting clean timings call the halves).
    pub fn write_new(&mut self, size: usize) {
        self.stage_write(size);
        self.write_staged();
    }

    /// Untimed half of `append`: formats the path and allocates the
    /// payload.
    pub fn stage_append(&mut self, i: usize, size: usize) {
        self.staged = Some((self.seeded(i), vec![0x77u8; size]));
    }

    /// Timed half: appends the staged payload.
    pub fn append_staged(&mut self) {
        let (p, payload) = self.staged.take().expect("stage_append first");
        self.sys.kernel.append(self.pid, &p, &payload).expect("append");
    }

    /// Appends `size` bytes to seeded file `i`, doubling it the first
    /// time (the paper's append workload). In Delegate mode the first
    /// append pays whole-file copy-up.
    pub fn append(&self, i: usize, size: usize) {
        self.sys.kernel.append(self.pid, &self.seeded(i), &vec![0x77u8; size]).expect("append");
    }

    /// Re-seeds file `i` (restores its original content in the branch it
    /// was seeded into) so appends can be re-measured from the copy-up
    /// state. Done with root on the backing store to avoid touching the
    /// measured path.
    pub fn reset_seeded(&self, i: usize, size: usize) {
        let host = maxoid::layout::back_internal("bench.app")
            .and_then(|h| h.join("files"))
            .and_then(|h| h.join(&format!("orig{i}.dat")))
            .expect("layout");
        let overlay = maxoid::layout::back_npriv("bench.initiator", "bench.app")
            .and_then(|h| h.join("files"))
            .and_then(|h| h.join(&format!("orig{i}.dat")))
            .expect("layout");
        self.sys.kernel.vfs().with_store_mut(|s| {
            if s.exists(&overlay) {
                s.unlink(&overlay).expect("drop overlay copy");
            }
            s.write(&host, &vec![0xabu8; size], maxoid_vfs::Uid::ROOT, Mode::PRIVATE)
                .expect("reseed");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_run_the_same_ops() {
        for mode in FsMode::ALL {
            let mut w = FsWorkload::new(mode, 4, 64);
            w.read(0);
            w.write_new(64);
            w.append(1, 64);
            // Read-back sees the appended size through the active view.
            let data = w.sys.kernel.read(w.pid, &w.seeded(1)).unwrap();
            assert_eq!(data.len(), 128, "mode {}", mode.label());
        }
    }

    #[test]
    fn delegate_append_copies_up_but_preserves_original() {
        let w = FsWorkload::new(FsMode::Delegate, 2, 32);
        w.append(0, 32);
        // The original in Priv(bench.app) is untouched.
        let host = maxoid::layout::back_internal("bench.app")
            .and_then(|h| h.join("files/orig0.dat"))
            .unwrap();
        let original = w.sys.kernel.vfs().with_store(|s| s.read(&host)).unwrap();
        assert_eq!(original.len(), 32);
    }

    #[test]
    fn reset_restores_append_state() {
        let w = FsWorkload::new(FsMode::Delegate, 1, 16);
        w.append(0, 16);
        assert_eq!(w.sys.kernel.read(w.pid, &w.seeded(0)).unwrap().len(), 32);
        w.reset_seeded(0, 16);
        assert_eq!(w.sys.kernel.read(w.pid, &w.seeded(0)).unwrap().len(), 16);
        // The next append pays copy-up again.
        w.append(0, 16);
        assert_eq!(w.sys.kernel.read(w.pid, &w.seeded(0)).unwrap().len(), 32);
    }
}
