//! Thread-scaling benchmark: one shared [`MaxoidSystem`] driven by N
//! concurrent app threads (the PR's tentpole exercise).
//!
//! Each thread models one initiator with a delegate viewer running on its
//! behalf: a read-heavy mix of 4 KB file reads through the delegate's
//! union mounts, occasional 4 KB private writes, and sparse User
//! Dictionary queries/updates through the COW proxy (all threads share
//! the one dictionary authority, so those serialize on its provider
//! mutex — the sparse mix mirrors an interactive device where provider
//! IPC is rare next to file I/O).
//!
//! Reported per thread count N ∈ {1,2,4,8}: aggregate ops/sec, speedup
//! vs N=1 and scaling efficiency vs `min(N, cores)` (on a single-core
//! host the workload can only interleave; CI runs this on multi-core
//! runners where the read-parallel hot paths must actually scale).
//! Single-thread latency cells for the PR-4 cache workloads are appended
//! so regressions of the sharing work show up next to BENCH_cache.json.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin concurrency`
//! Writes `BENCH_concurrency.json`; exits non-zero when 4-thread
//! aggregate throughput regresses below the core-aware floor.

use maxoid::manifest::MaxoidManifest;
use maxoid::{ContentValues, MaxoidSystem, Pid, QueryArgs, Uri};
use maxoid_bench::{measure, BenchJson, DictMode, DictWorkload, FsMode, FsWorkload, Unit};
use maxoid_vfs::{vpath, Mode, VPath};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Iterations of the mixed loop per thread per repetition.
const ITERS: usize = 20_000;
/// Repetitions per thread count; the best (highest-throughput) rep is
/// reported, discarding scheduler noise.
const REPS: usize = 3;
const DICT_ROWS: usize = 1000;
const FILE_KB: usize = 4;
const SEEDED_FILES: usize = 8;

/// Per-thread actors on the shared system.
struct ThreadCtx {
    init_pid: Pid,
    del_pid: Pid,
    files: Vec<VPath>,
    scratch: VPath,
}

fn words_uri() -> Uri {
    Uri::parse("content://user_dictionary/words").expect("uri")
}

/// Boots one system with `n` initiator/delegate pairs and a seeded
/// dictionary shared by everyone.
fn build(n: usize) -> (Arc<MaxoidSystem>, Vec<ThreadCtx>) {
    let sys = MaxoidSystem::boot().expect("boot");
    // Shared dictionary rows, inserted by a plain app.
    sys.install("bench.seeder", vec![], MaxoidManifest::new()).expect("install seeder");
    let seeder = sys.launch("bench.seeder").expect("launch seeder");
    let words = words_uri();
    for i in 0..DICT_ROWS {
        sys.cp_insert(seeder, &words, &ContentValues::new().put("word", format!("w{i}").as_str()))
            .expect("seed dict");
    }

    let payload = vec![0xabu8; FILE_KB * 1024];
    let mut ctxs = Vec::with_capacity(n);
    for t in 0..n {
        let app = format!("bench.app{t}");
        let init = format!("bench.init{t}");
        sys.install(&app, vec![], MaxoidManifest::new()).expect("install app");
        sys.install(&init, vec![], MaxoidManifest::new()).expect("install init");
        // Seed the delegate's read set while the app runs normally, so
        // the files sit in the read-only branch of the delegate union.
        let seed_pid = sys.launch(&app).expect("launch");
        let dir = vpath(&format!("/data/data/{app}/files"));
        sys.kernel.mkdir_all(seed_pid, &dir, Mode::PRIVATE).expect("mkdir");
        let mut files = Vec::with_capacity(SEEDED_FILES);
        for i in 0..SEEDED_FILES {
            let p = dir.join(&format!("orig{i}.dat")).expect("name");
            sys.kernel.write(seed_pid, &p, &payload, Mode::PRIVATE).expect("seed");
            files.push(p);
        }
        let del_pid = sys.launch_as_delegate(&app, &init).expect("delegate");
        let init_pid = sys.launch(&init).expect("launch init");
        let scratch = dir.join("scratch.dat").expect("name");
        // Warm the expensive one-time paths outside the timed loop: the
        // first delegate dict update creates the initiator's delta
        // tables (DDL), the first scratch write creates the file.
        sys.cp_update(
            del_pid,
            &words.with_id(1),
            &ContentValues::new().put("word", "warm"),
            &QueryArgs::default(),
        )
        .expect("warm delta");
        sys.kernel.write(del_pid, &scratch, &payload, Mode::PRIVATE).expect("warm scratch");
        ctxs.push(ThreadCtx { init_pid, del_pid, files, scratch });
    }
    (Arc::new(sys), ctxs)
}

/// The per-thread mixed loop. Returns the number of operations issued.
fn run_mix(sys: &MaxoidSystem, ctx: &ThreadCtx, iters: usize) -> u64 {
    let words = words_uri();
    let payload = vec![0x5au8; FILE_KB * 1024];
    let args = QueryArgs::default();
    let mut ops = 0u64;
    for i in 0..iters {
        // Read-heavy floor: a 4 KB read through the delegate's union
        // (parallel under the store read lock + resolve caches).
        sys.kernel.read(ctx.del_pid, &ctx.files[i % SEEDED_FILES]).expect("read");
        ops += 1;
        if i % 16 == 7 {
            // Private 4 KB write (store write lock: exclusive).
            sys.kernel.write(ctx.del_pid, &ctx.scratch, &payload, Mode::PRIVATE).expect("write");
            ops += 1;
        }
        if i % 32 == 15 {
            // Dict point query; alternate initiator/delegate callers.
            let pid = if i % 64 == 15 { ctx.del_pid } else { ctx.init_pid };
            let id = (i % DICT_ROWS) as i64 + 1;
            sys.cp_query(pid, &words.with_id(id), &args).expect("query");
            ops += 1;
        }
        if i % 128 == 31 {
            // Delegate dict update: COW write into the delta table.
            let id = (i % DICT_ROWS) as i64 + 1;
            sys.cp_update(
                ctx.del_pid,
                &words.with_id(id),
                &ContentValues::new().put("word", format!("t{i}").as_str()),
                &args,
            )
            .expect("update");
            ops += 1;
        }
    }
    ops
}

/// One repetition at `n` threads: returns (total ops, elapsed seconds).
fn run_once(n: usize) -> (u64, f64) {
    let (sys, ctxs) = build(n);
    let barrier = Arc::new(Barrier::new(n + 1));
    let mut handles = Vec::with_capacity(n);
    for ctx in ctxs {
        let sys = sys.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            run_mix(&sys, &ctx, ITERS)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let total: u64 = handles.into_iter().map(|h| h.join().expect("thread")).sum();
    (total, start.elapsed().as_secs_f64())
}

fn main() {
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut json = BenchJson::new();
    println!("Concurrent multi-app execution — one shared system, N app threads");
    println!("({ITERS} mixed iterations/thread, best of {REPS} reps, {cores} core(s))\n");
    json.push_scalar("concurrency/cores", cores as f64);

    // Single-thread latency cells mirroring the BENCH_cache cache_on
    // methodology, so sharing-induced regressions are visible. Measured
    // first, in the same fresh-process state the cache bench runs in
    // (after the scaling runs the allocator has churned through dozens
    // of booted systems and the numbers drift upward).
    println!("Single-thread latency (cache_on methodology):");
    let mut dict = DictWorkload::new(DictMode::Delegate, DICT_ROWS);
    dict.set_caches(true);
    for _ in 0..50 {
        dict.update();
    }
    // URI formatting and value-map allocation happen in the untimed
    // setup half (the staged-op split): with them in the timed region,
    // allocator jitter pushed these cells' stddev past their mean.
    let mut k = 0usize;
    let dictq = std::rc::Rc::new(std::cell::RefCell::new(dict));
    let q = measure(
        200,
        {
            let dictq = dictq.clone();
            move || {
                dictq.borrow_mut().stage_query_one((k % DICT_ROWS) as i64 + 1);
                k += 1;
            }
        },
        move || {
            std::hint::black_box(dictq.borrow_mut().query_one_staged());
        },
    );
    json.push("lat1/dict/query 1 word/delegate/cache_on", &q);
    println!("  dict/query 1 word  {:>8.3} us", q.mean_us());

    let mut dict = DictWorkload::new(DictMode::Delegate, DICT_ROWS);
    dict.set_caches(true);
    // Warm the stmt/plan/rewrite caches before the timed loop, exactly
    // as the query cell above (and `--bin cache`) does; without this the
    // first timed trials pay cold-cache population and the cell's stddev
    // swamps its mean.
    for _ in 0..50 {
        dict.update();
    }
    let dictu = std::rc::Rc::new(std::cell::RefCell::new(dict));
    let u = measure(
        200,
        {
            let dictu = dictu.clone();
            move || dictu.borrow_mut().stage_update()
        },
        move || dictu.borrow_mut().update_staged(),
    );
    json.push("lat1/dict/update/delegate/cache_on", &u);
    println!("  dict/update        {:>8.3} us", u.mean_us());

    let mut fs = FsWorkload::new(FsMode::Delegate, 1, 4 * 1024);
    fs.set_resolve_caches(true);
    fs.append(0, 4 * 1024); // pay copy-up untimed
    let fsa = std::rc::Rc::new(std::cell::RefCell::new(fs));
    let a = measure(
        200,
        {
            let fsa = fsa.clone();
            move || fsa.borrow_mut().stage_append(0, 64)
        },
        move || fsa.borrow_mut().append_staged(),
    );
    json.push("lat1/fs_4KB/append/delegate/cache_on", &a);
    println!("  fs_4KB/append      {:>8.3} us", a.mean_us());

    println!();
    let mut ops_per_sec = Vec::new();
    for &n in &THREAD_COUNTS {
        let best = (0..REPS)
            .map(|_| {
                let (ops, secs) = run_once(n);
                ops as f64 / secs
            })
            .fold(0.0f64, f64::max);
        ops_per_sec.push(best);
        let speedup = best / ops_per_sec[0];
        // Parallel hardware can only be exploited up to the core count.
        let ideal = n.min(cores) as f64;
        let efficiency = speedup / ideal;
        json.push_scalar_unit(&format!("concurrency/threads{n}/ops_per_sec"), best, Unit::OpsPerSec);
        json.push_scalar(&format!("concurrency/threads{n}/speedup"), speedup);
        json.push_scalar(&format!("concurrency/threads{n}/efficiency"), efficiency);
        println!(
            "  {n} thread(s): {best:>12.0} ops/s | speedup {speedup:>5.2}x | efficiency {:>5.1}% (vs {ideal:.0} ideal)",
            efficiency * 100.0
        );
    }

    json.write("BENCH_concurrency.json").expect("write BENCH_concurrency.json");
    println!("\n(wrote BENCH_concurrency.json)");

    // Scaling gate. On real parallel hardware 4 threads must beat 1; on
    // a single core the best we can demand is bounded locking overhead
    // under timeslicing (the CI runners are multi-core, so the strict
    // gate is what runs there).
    let (one, four) = (ops_per_sec[0], ops_per_sec[2]);
    let floor = if cores >= 2 { one } else { one * 0.7 };
    if four < floor {
        eprintln!(
            "FAIL: 4-thread throughput {four:.0} ops/s below floor {floor:.0} ops/s \
             (1-thread {one:.0}, {cores} core(s))"
        );
        std::process::exit(1);
    }
}
