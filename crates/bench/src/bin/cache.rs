//! Hot-path cache ablation: the paper's worst delegate cells from
//! Table 3, measured with every cache disabled ("before": re-parse,
//! re-plan and re-generate rewrite SQL on each call) and with the caches
//! at their defaults ("after"), plus steady-state hit rates.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin cache`

use maxoid_bench::{measure, BenchJson, DictMode, DictWorkload, FsMode, FsWorkload, Measurement};
use std::cell::RefCell;
use std::rc::Rc;

const TRIALS: usize = 200;
const ROWS: usize = 1000;

fn main() {
    let mut json = BenchJson::new();
    println!("Hot-path caches — delegate cells, caches off (before) vs on (after)");
    println!("({TRIALS} trials per cell, {ROWS}-row dictionary)\n");

    // --- dict/query 1 word (delegate) ---------------------------------
    let (q_off, _) = dict_cell(false, 50, |w, i| {
        std::hint::black_box(w.query_one((i % ROWS) as i64 + 1));
    });
    let (q_on, q_warm) = dict_cell(true, 50, |w, i| {
        std::hint::black_box(w.query_one((i % ROWS) as i64 + 1));
    });
    print_pair(&mut json, "dict/query 1 word", &q_off, &q_on);

    // Steady-state statement-cache hit rate of the cached query run:
    // counters were reset after warmup, so setup misses are excluded.
    let (sh, sm) = q_warm.borrow().stmt_cache_stats();
    let stmt_rate = rate(sh, sm);
    json.push_scalar("cache/stmt_hit_rate", stmt_rate);
    println!(
        "  steady-state stmt-cache hit rate    {:>6.1}% ({sh} hits / {sm} misses)",
        stmt_rate * 100.0
    );
    let (rh, rm) = q_warm.borrow().rewrite_cache_stats();
    let rewrite_rate = rate(rh, rm);
    json.push_scalar("cache/rewrite_hit_rate", rewrite_rate);
    println!(
        "  steady-state rewrite-cache hit rate {:>6.1}% ({rh} hits / {rm} misses)",
        rewrite_rate * 100.0
    );

    // --- dict/update (delegate) ---------------------------------------
    let (u_off, _) = dict_cell(false, 0, |w, _| w.update());
    let (u_on, _) = dict_cell(true, 0, |w, _| w.update());
    print_pair(&mut json, "dict/update", &u_off, &u_on);

    // --- fs_4KB/append (delegate, append-after-copy-up) ---------------
    let (a_off, _) = fs_append_cell(false);
    let (a_on, fs_warm) = fs_append_cell(true);
    print_pair(&mut json, "fs_4KB/append", &a_off, &a_on);
    let (fh, fm) = fs_warm.borrow().resolve_cache_stats();
    let resolve_rate = rate(fh, fm);
    json.push_scalar("cache/resolve_hit_rate", resolve_rate);
    println!(
        "  steady-state resolve-cache hit rate {:>6.1}% ({fh} hits / {fm} misses)",
        resolve_rate * 100.0
    );

    json.write("BENCH_cache.json").expect("write BENCH_cache.json");
    println!("\n(wrote BENCH_cache.json)");
}

/// Measures `op` over a delegate dictionary workload with the caches
/// forced on or off. Statement-cache counters are reset after setup and
/// warmup so the reported hit rate is steady-state.
fn dict_cell(
    caches: bool,
    warm_updates: usize,
    op: impl Fn(&mut DictWorkload, usize) + Copy + 'static,
) -> (Measurement, Rc<RefCell<DictWorkload>>) {
    let mut w = DictWorkload::new(DictMode::Delegate, ROWS);
    w.set_caches(caches);
    for _ in 0..warm_updates {
        w.update();
    }
    if let Some(p) = w.proxy() {
        p.db().stats.reset();
    }
    let w = Rc::new(RefCell::new(w));
    let w2 = w.clone();
    let i = Rc::new(RefCell::new(0usize));
    let m = measure(
        TRIALS,
        || {},
        move || {
            let mut k = i.borrow_mut();
            op(&mut w2.borrow_mut(), *k);
            *k += 1;
        },
    );
    (m, w)
}

/// Measures repeated 4KB appends to an already-copied-up file through a
/// delegate's union mount (the resolution-cache steady state: the first
/// append pays copy-up during warmup, later ones resolve into the top
/// branch).
fn fs_append_cell(caches: bool) -> (Measurement, Rc<RefCell<FsWorkload>>) {
    let mut w = FsWorkload::new(FsMode::Delegate, 1, 4 * 1024);
    w.set_resolve_caches(caches);
    // Pay the copy-up outside the timed region.
    w.append(0, 4 * 1024);
    let w = Rc::new(RefCell::new(w));
    let w2 = w.clone();
    let m = measure(TRIALS, || {}, move || w2.borrow().append(0, 64));
    (m, w)
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

fn print_pair(json: &mut BenchJson, label: &str, off: &Measurement, on: &Measurement) {
    json.push(&format!("{label}/delegate/cache_off"), off);
    json.push(&format!("{label}/delegate/cache_on"), on);
    let speedup = if on.mean_us() > 0.0 { off.mean_us() / on.mean_us() } else { f64::INFINITY };
    println!(
        "  {label:<20} before {:>9.1} us | after {:>9.1} us | {speedup:>5.2}x",
        off.mean_us(),
        on.mean_us(),
    );
}
