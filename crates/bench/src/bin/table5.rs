//! Regenerates Table 5 of the paper: user-perceivable latency of
//! application tasks under Android vs Maxoid (initiator / delegate).
//! The paper's result: differences are lost in the noise because the
//! tasks are dominated by CPU work (rendering, image processing), which
//! Maxoid does not touch.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin table5`

use maxoid::manifest::MaxoidManifest;
use maxoid::{MaxoidSystem, Pid};
use maxoid_apps::{compute, AdobeReader, CamScanner, CameraMx, FileRef};
use maxoid_bench::{measure, Measurement};
use maxoid_vfs::{vpath, Mode};

const TRIALS: usize = 5;
const PDF_SIZE: usize = 1_600_000; // The paper's 1.6 MB PDF.

#[derive(Clone, Copy, PartialEq)]
enum Mode3 {
    Android,
    Initiator,
    Delegate,
}

impl Mode3 {
    const ALL: [Mode3; 3] = [Mode3::Android, Mode3::Initiator, Mode3::Delegate];
}

fn main() {
    println!("Table 5 — application task latency ({TRIALS} trials)");
    println!("(paper: all three columns statistically indistinguishable)\n");
    println!(
        "{:<14} {:<24} {:>12} {:>12} {:>12}",
        "App", "Task", "Android", "Initiator", "Delegate"
    );
    println!("{}", "-".repeat(78));

    let reader_pkg = AdobeReader::default().pkg;
    let scanner_pkg = CamScanner::default().pkg;
    let camera_pkg = CameraMx::default().pkg;

    run_task("Adobe Reader", "open a 1.6 MB file", &reader_pkg, |sys, pid| {
        let reader = AdobeReader::default();
        let doc = vpath("/storage/sdcard/bench.pdf");
        let data = sys.kernel.read(pid, &doc).expect("doc seeded");
        std::hint::black_box(
            reader
                .open(sys, pid, &FileRef::Content { name: "bench.pdf".into(), data })
                .expect("open"),
        );
    });

    run_task("Adobe Reader", "in-file search", &reader_pkg, |sys, pid| {
        let reader = AdobeReader::default();
        let doc = vpath("/storage/sdcard/bench.pdf");
        std::hint::black_box(reader.search(sys, pid, &doc, "needle").expect("search"));
    });

    run_task("CamScanner", "process a scanned page", &scanner_pkg, |sys, pid| {
        let scanner = CamScanner::default();
        let pixels = compute::capture_photo(400_000, 3);
        scanner.scan_page(sys, pid, "bench_page", &pixels).expect("scan");
    });

    run_task("CameraMX", "take a photo", &camera_pkg, |sys, pid| {
        let cam = CameraMx::default();
        cam.take_photo(sys, pid, "bench_photo", 500_000).expect("photo");
    });

    run_task("CameraMX", "save an edited photo", &camera_pkg, |sys, pid| {
        let cam = CameraMx::default();
        let p = vpath("/storage/sdcard/DCIM/bench_photo.jpg");
        if !sys.kernel.exists(pid, &p) {
            cam.take_photo(sys, pid, "bench_photo", 500_000).expect("photo");
        }
        cam.save_edited(sys, pid, &p).expect("edit");
    });
}

/// Runs one task in all three modes and prints the row.
fn run_task(app: &str, task: &str, pkg: &str, op: impl Fn(&mut MaxoidSystem, Pid)) {
    let results: Vec<Measurement> = Mode3::ALL
        .iter()
        .map(|&mode| {
            measure(
                TRIALS,
                || {},
                || {
                    let (mut sys, pid) = setup(mode, pkg);
                    op(&mut sys, pid);
                },
            )
        })
        .collect();
    println!(
        "{:<14} {:<24} {:>9.1} ms {:>9.1} ms {:>9.1} ms",
        app,
        task,
        results[0].mean_ns() / 1e6,
        results[1].mean_ns() / 1e6,
        results[2].mean_ns() / 1e6,
    );
}

/// Boots a system with `pkg` running in the requested mode and a 1.6 MB
/// document (with search needles) seeded on public external storage.
///
/// The Android baseline and the Maxoid-initiator setup both run the app
/// normally — the paper's point is precisely that the initiator path is
/// identical to stock Android; the delegate column adds the confinement.
fn setup(mode: Mode3, pkg: &str) -> (MaxoidSystem, Pid) {
    let sys = MaxoidSystem::boot().expect("boot");
    sys.install(pkg, vec![], MaxoidManifest::new()).expect("install");
    sys.install("bench.init", vec![], MaxoidManifest::new()).expect("install");
    let seeder = sys.launch("bench.init").expect("seeder");
    let mut doc = compute::capture_photo(PDF_SIZE, 11);
    for chunk in doc.chunks_mut(100_000) {
        if chunk.len() >= 6 {
            chunk[..6].copy_from_slice(b"needle");
        }
    }
    sys.kernel
        .write(seeder, &vpath("/storage/sdcard/bench.pdf"), &doc, Mode::PUBLIC)
        .expect("seed");
    let pid = match mode {
        Mode3::Android | Mode3::Initiator => sys.launch(pkg).expect("launch"),
        Mode3::Delegate => sys.launch_as_delegate(pkg, "bench.init").expect("delegate"),
    };
    (sys, pid)
}
