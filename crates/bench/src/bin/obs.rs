//! Observability overhead: what `maxoid-obs` costs when it is off, and
//! what it costs when it is on.
//!
//! Emitted to `BENCH_obs.json`:
//!
//! - **probe** — the raw instrumentation-point primitives in a tight
//!   loop: an inert span (the price every instrumented call path pays
//!   when tracing is disabled — one relaxed atomic load), a recording
//!   span, and a counter increment in both states.
//! - **workload** — a real COW-proxied SQL workload (delegate inserts +
//!   flattened view queries) with tracing off vs on; the "off" column is
//!   the number that must stay within noise of the pre-obs tree.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin obs`

use maxoid_bench::{measure_interleaved, BenchJson, Case, Measurement};
use maxoid_cowproxy::{CowProxy, DbView, QueryOpts};
use std::cell::RefCell;
use std::rc::Rc;

const TRIALS: usize = 300;
/// Primitive ops per trial (amortises the timer's own cost).
const PROBE_BATCH: usize = 1_000;
/// Proxy statements per workload trial.
const WORK_BATCH: usize = 50;

fn main() {
    let mut json = BenchJson::new();
    println!("maxoid-obs overhead — probe primitives and a traced workload");
    println!("({TRIALS} interleaved trials per cell)\n");

    // --- probe primitives ---------------------------------------------
    let probes = measure_interleaved(
        TRIALS,
        vec![
            probe_case(false, || {
                std::hint::black_box(maxoid_obs::span("bench.probe"));
            }),
            probe_case(true, || {
                std::hint::black_box(maxoid_obs::span("bench.probe"));
            }),
            probe_case(false, || {
                maxoid_obs::counter_add("bench.counter", 1);
            }),
            probe_case(true, || {
                maxoid_obs::counter_add("bench.counter", 1);
            }),
        ],
    );
    println!("probe ({PROBE_BATCH} ops/trial, per-op figures):");
    let labels = ["span/disabled", "span/enabled", "counter/disabled", "counter/enabled"];
    for (label, m) in labels.iter().zip(&probes) {
        json.push(&format!("probe/{label}"), m);
        println!("  {:<18} {:>9.2} ns/op", label, m.mean_us() * 1_000.0 / PROBE_BATCH as f64);
    }
    let disabled_ns = probes[0].mean_us() * 1_000.0 / PROBE_BATCH as f64;
    println!("  (disabled span = the per-call-site price everyone pays: {disabled_ns:.2} ns)");

    // --- traced workload ----------------------------------------------
    let work = measure_interleaved(TRIALS, vec![workload_case(false), workload_case(true)]);
    println!("\nworkload ({WORK_BATCH} proxied statements/trial):");
    print_pair(&mut json, "workload/cow_sql", &work);

    maxoid_obs::disable();
    maxoid_obs::reset();
    json.write("BENCH_obs.json").expect("write BENCH_obs.json");
    println!("\n(wrote BENCH_obs.json)");
}

/// A primitive-probe case: the setup pins the global obs state (and
/// drains the collector so enabled runs don't grow without bound), the
/// op runs the primitive `PROBE_BATCH` times.
fn probe_case(enabled: bool, op: impl Fn() + 'static) -> Case {
    (
        Box::new(move || {
            maxoid_obs::reset();
            if enabled {
                maxoid_obs::enable();
            } else {
                maxoid_obs::disable();
            }
        }),
        Box::new(move || {
            for _ in 0..PROBE_BATCH {
                op();
            }
        }),
    )
}

/// The real-workload case: a COW proxy with a delegate view, running
/// `WORK_BATCH` insert+query statements per trial.
fn workload_case(enabled: bool) -> Case {
    let mut p = CowProxy::new();
    p.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, freq INTEGER);")
        .expect("schema");
    let p = Rc::new(RefCell::new(p));
    let setup_p = p.clone();
    let i = Rc::new(RefCell::new(0i64));
    (
        Box::new(move || {
            maxoid_obs::reset();
            maxoid_obs::disable();
            // Reset the delta table so every trial queries the same
            // bounded view instead of an ever-growing one.
            setup_p.borrow_mut().clear_volatile("a").expect("clear");
            if enabled {
                maxoid_obs::enable();
            }
        }),
        Box::new(move || {
            let delegate = DbView::Delegate { initiator: "a".into() };
            let opts = QueryOpts { order_by: Some("_id".into()), ..Default::default() };
            let mut p = p.borrow_mut();
            let mut k = i.borrow_mut();
            for _ in 0..WORK_BATCH {
                *k += 1;
                p.insert(&delegate, "words", &[("word", format!("w{k}").into())]).expect("insert");
                std::hint::black_box(p.query(&delegate, "words", &opts, &[]).expect("query"));
            }
        }),
    )
}

fn print_pair(json: &mut BenchJson, section: &str, ms: &[Measurement]) {
    let (off, on) = (&ms[0], &ms[1]);
    json.push(&format!("{section}/off"), off);
    json.push(&format!("{section}/on"), on);
    println!("  {:<10} {:>9.2} us", "off", off.mean_us());
    println!("  {:<10} {:>9.2} us  (+{:.1}% vs off)", "on", on.mean_us(), on.overhead_pct(off));
}
