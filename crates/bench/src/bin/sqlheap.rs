//! Row-heap ablations: what paging sqldb tables through the block tier
//! costs, and what the scan-resistant cache buys back.
//!
//! Three experiment families, emitted to `BENCH_sqlheap.json`:
//!
//! - **backend point query** — the same PK point query against a
//!   resident table and a paged table whose hot set fits the page
//!   budget. The paged cell pays row decode plus a cache lookup but no
//!   device I/O on hits, so it must stay within [`MAX_PAGED_RATIO`] of
//!   resident (the CI gate for the sqldb hot path).
//! - **backend insert** — append-path cost: paged inserts bump-allocate
//!   into heap pages (first touch is a no-load `write_padded`), resident
//!   inserts clone into a BTreeMap.
//! - **working-set sweep** — full-scan hit rates as the table grows from
//!   0.5x to 4x the page budget. Under the old second-chance clock a
//!   cyclic re-scan at any ratio past 1x degenerated to a 0% hit rate;
//!   the segmented clock must keep a protected core resident, so the
//!   2x cell is gated on a non-zero steady-state hit rate.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin sqlheap`

use maxoid_bench::{measure_interleaved, BenchJson, Case, Measurement};
use maxoid_block::MemDevice;
use maxoid_sqldb::{Database, HeapTier, Value};
use std::cell::RefCell;
use std::rc::Rc;

const TRIALS: usize = 300;

/// Page budget for the paged backend: 16 x 4096 = 64 KiB.
const PAGES: usize = 16;

/// Rows in the hot set: 64 x ~400 B = ~26 KiB, well under the budget, so
/// the steady state is all hits.
const HOT_ROWS: i64 = 64;

/// CI gate: a paged PK point query on a cache-resident hot set may cost
/// at most this multiple of the resident table, by median.
const MAX_PAGED_RATIO: f64 = 3.0;

const BACKENDS: [&str; 2] = ["resident", "paged_mem"];

/// Deterministic text payload of `len` bytes.
fn body(seed: i64, len: usize) -> String {
    (0..len).map(|k| char::from(b'a' + ((seed as usize + k) % 26) as u8)).collect()
}

/// A words-shaped table, optionally paged onto a fresh heap tier with
/// threshold 0 (rows page out from the first insert).
fn hot_db(backend: &str) -> Database {
    let mut db = Database::new();
    if backend == "paged_mem" {
        db.attach_heap(HeapTier::new(Box::new(MemDevice::new()), PAGES), 0);
    }
    db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, k INTEGER, body TEXT);").unwrap();
    for i in 0..HOT_ROWS {
        db.execute(
            "INSERT INTO t (k, body) VALUES (?, ?)",
            &[Value::Integer(i), Value::Text(body(i, 400))],
        )
        .unwrap();
    }
    db
}

fn main() {
    let mut json = BenchJson::new();
    println!("Row-heap ablations — paged tables, scan sweep");
    println!("({TRIALS} interleaved trials per cell)\n");

    // --- backend: PK point query on a cache-resident hot set ----------
    let queries = measure_interleaved(
        TRIALS,
        BACKENDS
            .iter()
            .map(|&backend| {
                let db = Rc::new(hot_db(backend));
                let i = Rc::new(RefCell::new(0i64));
                let case: Case = (
                    Box::new(|| {}),
                    Box::new(move || {
                        let mut k = i.borrow_mut();
                        *k += 1;
                        std::hint::black_box(
                            db.query(
                                "SELECT _id, k, body FROM t WHERE _id = ?",
                                &[Value::Integer(*k % HOT_ROWS)],
                            )
                            .expect("point query"),
                        );
                    }),
                );
                case
            })
            .collect(),
    );
    println!("backend, PK point query (hot set ~26 KiB, budget {} KiB):", PAGES * 4);
    print_row(&mut json, "backend/point_query", &queries);

    // --- backend: insert (append path) --------------------------------
    let inserts = measure_interleaved(
        TRIALS,
        BACKENDS
            .iter()
            .map(|&backend| {
                let db = Rc::new(RefCell::new(hot_db(backend)));
                let i = Rc::new(RefCell::new(HOT_ROWS));
                let case: Case = (
                    Box::new(|| {}),
                    Box::new(move || {
                        let mut k = i.borrow_mut();
                        *k += 1;
                        db.borrow_mut()
                            .execute(
                                "INSERT INTO t (k, body) VALUES (?, ?)",
                                &[Value::Integer(*k), Value::Text(body(*k, 400))],
                            )
                            .expect("insert");
                    }),
                );
                case
            })
            .collect(),
    );
    println!("\nbackend, 400B insert:");
    print_row(&mut json, "backend/insert", &inserts);

    // --- working-set sweep: full-scan hit rate vs cache pressure ------
    println!("\nworking-set sweep (page budget {} KiB, sequential re-scan passes):", PAGES * 4);
    let mut hit_rate_2x = 0.0f64;
    for ratio in [0.5f64, 1.0, 2.0, 4.0] {
        let rows = ((PAGES as f64 * ratio) as i64).max(1);
        let tier = HeapTier::new(Box::new(MemDevice::new()), PAGES);
        let mut db = Database::new();
        db.attach_heap(tier.clone(), 0);
        db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, k INTEGER, body TEXT);")
            .unwrap();
        // ~1 row per 4 KiB page, so `rows` tracks the page budget ratio.
        for i in 0..rows {
            db.execute(
                "INSERT INTO t (k, body) VALUES (?, ?)",
                &[Value::Integer(i), Value::Text(body(i, 3800))],
            )
            .unwrap();
        }
        let seeded = tier.stats();
        for _pass in 0..8 {
            std::hint::black_box(
                db.query("SELECT _id, k, body FROM t ORDER BY _id", &[]).expect("scan"),
            );
        }
        let c = tier.stats();
        let (hits, misses) = (c.hits - seeded.hits, c.misses - seeded.misses);
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        if ratio == 2.0 {
            hit_rate_2x = hit_rate;
        }
        json.push_scalar(&format!("working_set/ratio{ratio}/hit_rate"), hit_rate);
        json.push_scalar(&format!("working_set/ratio{ratio}/evictions"), c.evictions as f64);
        println!(
            "  {:>4.1}x budget ({:>2} rows): hit rate {:>5.1}%  evictions {:>5}",
            ratio,
            rows,
            hit_rate * 100.0,
            c.evictions,
        );
    }

    // --- gates ---------------------------------------------------------
    let (resident, paged) = (queries[0].median_us(), queries[1].median_us());
    let ratio = if resident > 0.0 { paged / resident } else { 0.0 };
    json.push_scalar("backend/point_query/median_ratio_paged_mem_vs_resident", ratio);
    println!("\npaged_mem vs resident point query: {ratio:.2}x by median");

    json.write("BENCH_sqlheap.json").expect("write BENCH_sqlheap.json");
    println!("(wrote BENCH_sqlheap.json)");

    let mut failed = false;
    if ratio > MAX_PAGED_RATIO {
        eprintln!(
            "FAIL: cache-resident paged point query is {ratio:.2}x the resident table \
             (gate: {MAX_PAGED_RATIO}x)"
        );
        failed = true;
    }
    if hit_rate_2x <= 0.0 {
        eprintln!(
            "FAIL: cyclic re-scan at 2x budget hit {:.1}% — the scan cliff is back",
            hit_rate_2x * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn print_row(json: &mut BenchJson, section: &str, ms: &[Measurement]) {
    let base = &ms[0];
    for (backend, m) in BACKENDS.iter().zip(ms) {
        json.push(&format!("{section}/{backend}"), m);
        println!(
            "  {:<11} {:>9.2} us  (+{:.1}% vs resident)",
            backend,
            m.mean_us(),
            m.overhead_pct(base).max(0.0),
        );
    }
}
