//! MVCC read-path benchmark: snapshot reader scaling on one authority.
//!
//! The PR-9 tentpole splits each resolver entry into a write lock plus a
//! lock-free read handle served from a published [`maxoid_sqldb`] MVCC
//! snapshot. This benchmark measures what that buys: N reader threads
//! all point-querying the *same* User Dictionary authority, which under
//! the old design serialized on the provider mutex and now proceed
//! without it.
//!
//! Reported:
//! - `mvcc/readers{N}/ops_per_sec` for N ∈ {1,2,4,8} — aggregate
//!   point-query throughput, best of 3 reps, plus speedup vs N=1 and
//!   the fraction of queries served from the snapshot path (asserted
//!   to dominate; the run aborts if reads fell back to the lock).
//! - `mvcc/contended/readers4_writer1/ops_per_sec` — the same storm
//!   with one delegate writer mutating the authority, exercising the
//!   retract/republish discipline.
//! - `lat1/dict/...` single-thread regression cells with the
//!   BENCH_cache methodology, so MVCC bookkeeping shows up next to the
//!   PR-4 numbers if it slows the serial path.
//! - `mvcc/chain/...` version-chain and GC statistics from a direct
//!   [`Database`] workload holding snapshots across update storms.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin mvcc`
//! Writes `BENCH_mvcc.json`; exits non-zero when multi-reader
//! throughput falls below the core-aware floor (on ≥2 cores a 4-reader
//! storm must at least match one reader; on a single core it must stay
//! within 0.9× — snapshot reads don't contend, so even interleaved they
//! should not cost more than a lone reader).

use maxoid::manifest::MaxoidManifest;
use maxoid::{ContentValues, MaxoidSystem, Pid, QueryArgs, Uri};
use maxoid_bench::{measure, BenchJson, DictMode, DictWorkload, Unit};
use maxoid_sqldb::Database;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Point queries per reader thread per repetition.
const ITERS: usize = 20_000;
/// Repetitions per reader count; the best rep is reported.
const REPS: usize = 3;
const DICT_ROWS: usize = 1000;

fn words_uri() -> Uri {
    Uri::parse("content://user_dictionary/words").expect("uri")
}

/// Boots one system with a seeded dictionary and `n` reader apps.
fn build(n: usize) -> (Arc<MaxoidSystem>, Vec<Pid>) {
    let sys = MaxoidSystem::boot().expect("boot");
    sys.install("bench.seeder", vec![], MaxoidManifest::new()).expect("install seeder");
    let seeder = sys.launch("bench.seeder").expect("launch seeder");
    let words = words_uri();
    for i in 0..DICT_ROWS {
        sys.cp_insert(seeder, &words, &ContentValues::new().put("word", format!("w{i}").as_str()))
            .expect("seed dict");
    }
    let mut pids = Vec::with_capacity(n);
    for t in 0..n {
        let app = format!("bench.reader{t}");
        sys.install(&app, vec![], MaxoidManifest::new()).expect("install reader");
        pids.push(sys.launch(&app).expect("launch reader"));
    }
    (Arc::new(sys), pids)
}

/// One repetition of a pure reader storm at `n` threads. Returns
/// (total queries, elapsed seconds, snapshot-path fraction).
fn run_readers(n: usize) -> (u64, f64, f64) {
    let (sys, pids) = build(n);
    let (snap0, locked0) = sys.resolver.read_path_stats();
    let barrier = Arc::new(Barrier::new(n + 1));
    let mut handles = Vec::with_capacity(n);
    for pid in pids {
        let sys = sys.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let words = words_uri();
            let args = QueryArgs::default();
            barrier.wait();
            for i in 0..ITERS {
                let id = (i % DICT_ROWS) as i64 + 1;
                sys.cp_query(pid, &words.with_id(id), &args).expect("query");
            }
            ITERS as u64
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let total: u64 = handles.into_iter().map(|h| h.join().expect("reader")).sum();
    let secs = start.elapsed().as_secs_f64();
    let (snap1, locked1) = sys.resolver.read_path_stats();
    let (snap, locked) = (snap1 - snap0, locked1 - locked0);
    let frac = snap as f64 / (snap + locked).max(1) as f64;
    // The whole point of the read-path split: a steady-state reader
    // storm must be served from snapshots, not the provider mutex.
    assert!(snap > 0, "reader storm never took the snapshot path");
    (total, secs, frac)
}

/// One repetition of 4 readers + 1 delegate writer. Returns aggregate
/// reader queries/sec (the writer is load, not payload).
fn run_contended() -> f64 {
    const N: usize = 4;
    let (sys, pids) = build(N);
    sys.install("bench.writer", vec![], MaxoidManifest::new()).expect("install writer");
    sys.install("bench.init", vec![], MaxoidManifest::new()).expect("install init");
    let writer = sys.launch_as_delegate("bench.writer", "bench.init").expect("delegate");
    let stop = Arc::new(AtomicBool::new(false));
    let wsys = sys.clone();
    let wstop = stop.clone();
    let writer_handle = std::thread::spawn(move || {
        let words = words_uri();
        let args = QueryArgs::default();
        let mut i = 0usize;
        while !wstop.load(Ordering::Relaxed) {
            let id = (i % DICT_ROWS) as i64 + 1;
            wsys.cp_update(
                writer,
                &words.with_id(id),
                &ContentValues::new().put("word", format!("c{i}").as_str()),
                &args,
            )
            .expect("contended update");
            i += 1;
            std::thread::yield_now();
        }
    });
    let barrier = Arc::new(Barrier::new(N + 1));
    let mut handles = Vec::with_capacity(N);
    for pid in pids {
        let sys = sys.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let words = words_uri();
            let args = QueryArgs::default();
            barrier.wait();
            for i in 0..ITERS {
                let id = (i % DICT_ROWS) as i64 + 1;
                sys.cp_query(pid, &words.with_id(id), &args).expect("query");
            }
            ITERS as u64
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let total: u64 = handles.into_iter().map(|h| h.join().expect("reader")).sum();
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    writer_handle.join().expect("writer");
    total as f64 / secs
}

/// Direct sqldb workload surfacing version-chain and GC behaviour:
/// update storms with a bounded set of live snapshots pinning history.
fn chain_stats(json: &mut BenchJson) {
    let mut db = Database::new();
    db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, data TEXT);").expect("ddl");
    for i in 0..100 {
        db.execute("INSERT INTO t (data) VALUES (?1)", &[format!("v{i}").into()]).expect("seed");
    }
    // Rolling window of 4 live snapshots across 50 update rounds: each
    // round rewrites every row, takes a fresh snapshot and drops the
    // oldest, so GC can trim all but the pinned versions.
    let mut window = std::collections::VecDeque::new();
    for round in 0..50 {
        for id in 1..=100i64 {
            db.execute(
                "UPDATE t SET data = ?1 WHERE _id = ?2",
                &[format!("r{round}").into(), id.into()],
            )
            .expect("update");
        }
        window.push_back(db.begin_read().expect("snapshot"));
        if window.len() > 4 {
            window.pop_front();
        }
    }
    drop(window);
    let s = db.mvcc_stats();
    println!(
        "Version chains (100 rows x 50 update rounds, 4-snapshot window):\n  \
         max chain {} | created {} | gced {} | live {} | published {}",
        s.max_chain, s.versions_created, s.versions_gced, s.live_snapshots, s.snapshots_published
    );
    json.push_scalar("mvcc/chain/max_chain", s.max_chain as f64);
    json.push_scalar("mvcc/chain/versions_created", s.versions_created as f64);
    json.push_scalar("mvcc/chain/versions_gced", s.versions_gced as f64);
    json.push_scalar("mvcc/chain/live_snapshots", s.live_snapshots as f64);
    json.push_scalar("mvcc/chain/snapshots_published", s.snapshots_published as f64);
    // Chains must stay bounded by the snapshot window, not grow with
    // the number of rounds.
    assert!(s.max_chain <= 4 + 2, "version chains grew unbounded: {}", s.max_chain);
}

fn main() {
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut json = BenchJson::new();
    println!("MVCC snapshot reads — N reader threads on one dictionary authority");
    println!("({ITERS} point queries/thread, best of {REPS} reps, {cores} core(s))\n");
    json.push_scalar("mvcc/cores", cores as f64);

    // Single-thread regression cells first, in fresh-process state (same
    // reasoning and naming as --bin concurrency / --bin cache).
    println!("Single-thread latency (cache_on methodology):");
    let mut dict = DictWorkload::new(DictMode::Delegate, DICT_ROWS);
    dict.set_caches(true);
    for _ in 0..50 {
        dict.update();
    }
    let mut k = 0usize;
    let dictq = std::rc::Rc::new(std::cell::RefCell::new(dict));
    let q = measure(
        200,
        {
            let dictq = dictq.clone();
            move || {
                dictq.borrow_mut().stage_query_one((k % DICT_ROWS) as i64 + 1);
                k += 1;
            }
        },
        move || {
            std::hint::black_box(dictq.borrow_mut().query_one_staged());
        },
    );
    json.push("lat1/dict/query 1 word/delegate/cache_on", &q);
    println!("  dict/query 1 word  {:>8.3} us", q.mean_us());

    let mut dict = DictWorkload::new(DictMode::Delegate, DICT_ROWS);
    dict.set_caches(true);
    for _ in 0..50 {
        dict.update();
    }
    let dictu = std::rc::Rc::new(std::cell::RefCell::new(dict));
    let u = measure(
        200,
        {
            let dictu = dictu.clone();
            move || dictu.borrow_mut().stage_update()
        },
        move || dictu.borrow_mut().update_staged(),
    );
    json.push("lat1/dict/update/delegate/cache_on", &u);
    println!("  dict/update        {:>8.3} us", u.mean_us());

    println!("\nReader scaling:");
    let mut ops_per_sec = Vec::new();
    for &n in &READER_COUNTS {
        let mut best = 0.0f64;
        let mut frac = 0.0f64;
        for _ in 0..REPS {
            let (ops, secs, f) = run_readers(n);
            let rate = ops as f64 / secs;
            if rate > best {
                best = rate;
                frac = f;
            }
        }
        ops_per_sec.push(best);
        let speedup = best / ops_per_sec[0];
        json.push_scalar_unit(&format!("mvcc/readers{n}/ops_per_sec"), best, Unit::OpsPerSec);
        json.push_scalar(&format!("mvcc/readers{n}/speedup"), speedup);
        json.push_scalar(&format!("mvcc/readers{n}/snapshot_read_fraction"), frac);
        println!(
            "  {n} reader(s): {best:>12.0} q/s | speedup {speedup:>5.2}x | snapshot path {:>5.1}%",
            frac * 100.0
        );
    }

    let contended = (0..REPS).map(|_| run_contended()).fold(0.0f64, f64::max);
    json.push_scalar_unit("mvcc/contended/readers4_writer1/ops_per_sec", contended, Unit::OpsPerSec);
    println!("  4 readers + 1 writer: {contended:>12.0} q/s (reader aggregate)\n");

    chain_stats(&mut json);

    json.write("BENCH_mvcc.json").expect("write BENCH_mvcc.json");
    println!("\n(wrote BENCH_mvcc.json)");

    // Scaling gate. Snapshot reads share no lock, so on parallel
    // hardware a 4-reader storm must at least match one reader. A
    // single core can only interleave, but since there is no contention
    // to pay the aggregate must stay within 0.9x of the lone reader.
    let (one, four) = (ops_per_sec[0], ops_per_sec[2]);
    let floor = if cores >= 2 { one } else { one * 0.9 };
    if four < floor {
        eprintln!(
            "FAIL: 4-reader throughput {four:.0} q/s below floor {floor:.0} q/s \
             (1-reader {one:.0}, {cores} core(s))"
        );
        std::process::exit(1);
    }
}
