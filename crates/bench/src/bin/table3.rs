//! Regenerates Table 3 of the paper: microbenchmark overheads of Maxoid
//! (initiator / delegate) relative to unmodified Android.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin table3`

use maxoid_apps::compute;
use maxoid_bench::report::fmt_overhead;
use maxoid_bench::{
    measure_interleaved, BenchJson, Case, DictMode, DictWorkload, FsMode, FsWorkload, Measurement,
};
use std::cell::RefCell;
use std::rc::Rc;

const TRIALS: usize = 200;

/// The three columns of every Table 3 row, in measurement order.
const MODES: [&str; 3] = ["android", "initiator", "delegate"];

fn main() {
    let mut json = BenchJson::new();
    println!("Table 3 — microbenchmark overheads vs unmodified Android");
    println!("(paper shape: initiator ~0 everywhere; delegate pays only on I/O,");
    println!(" with append the worst case; {TRIALS} interleaved trials per cell)\n");

    // --- CPU-bound operations -----------------------------------------
    let cpu = measure_interleaved(
        20,
        (0..3)
            .map(|_| {
                let case: Case = (
                    Box::new(|| {}),
                    Box::new(|| {
                        std::hint::black_box(compute::matmul_checksum(48, 7));
                    }),
                );
                case
            })
            .collect(),
    );
    println!("CPU-bound (48x48 matmul):");
    print_row(&mut json, "cpu", "matmul", &cpu);

    // --- Internal file system -----------------------------------------
    for (label, size) in [("4KB", 4 * 1024usize), ("1MB", 1024 * 1024)] {
        let trials = if size > 64 * 1024 { 40 } else { TRIALS };
        println!("\nInternal file system, {label} files:");

        // read
        let reads = measure_interleaved(
            trials,
            FsMode::ALL
                .iter()
                .map(|&mode| {
                    let w = FsWorkload::new(mode, 8, size);
                    let i = Rc::new(RefCell::new(0usize));
                    let case: Case = (
                        Box::new(|| {}),
                        Box::new(move || {
                            let mut k = i.borrow_mut();
                            w.read(*k % 8);
                            *k += 1;
                        }),
                    );
                    case
                })
                .collect(),
        );
        print_row(&mut json, &format!("fs_{label}"), "read", &reads);

        // write (create new files)
        let writes = measure_interleaved(
            trials,
            FsMode::ALL
                .iter()
                .map(|&mode| {
                    let w = Rc::new(RefCell::new(FsWorkload::new(mode, 1, size)));
                    let w2 = w.clone();
                    // Path formatting + payload allocation are untimed:
                    // only the write syscall is measured.
                    let case: Case = (
                        Box::new(move || w.borrow_mut().stage_write(size)),
                        Box::new(move || w2.borrow_mut().write_staged()),
                    );
                    case
                })
                .collect(),
        );
        print_row(&mut json, &format!("fs_{label}"), "write", &writes);

        // append (copy-up path for delegates; reset between trials)
        let appends = measure_interleaved(
            trials,
            FsMode::ALL
                .iter()
                .map(|&mode| {
                    let w = Rc::new(RefCell::new(FsWorkload::new(mode, 1, size)));
                    let w2 = w.clone();
                    let case: Case = (
                        Box::new(move || {
                            let mut b = w.borrow_mut();
                            b.reset_seeded(0, size);
                            b.stage_append(0, size);
                        }),
                        Box::new(move || w2.borrow_mut().append_staged()),
                    );
                    case
                })
                .collect(),
        );
        print_row(&mut json, &format!("fs_{label}"), "append", &appends);
    }

    // --- User Dictionary provider ---------------------------------------
    println!("\nUser Dictionary provider (1000 rows):");
    let rows = 1000;

    let inserts = dict_cases(rows, 0, |w, i| w.insert(i));
    print_row(&mut json, "dict", "insert", &inserts);

    let updates = dict_cases(rows, 0, |w, _| w.update());
    print_row(&mut json, "dict", "update", &updates);

    // Queries run after updates so primary + delta are both involved.
    let query1 = dict_cases(rows, 50, move |w, i| {
        std::hint::black_box(w.query_one((i % rows) as i64 + 1));
    });
    print_row(&mut json, "dict", "query 1 word", &query1);

    let query1k = dict_cases_n(40, rows, 50, |w, _| {
        std::hint::black_box(w.query_all());
    });
    print_row(&mut json, "dict", "query 1k words", &query1k);

    let deletes = dict_cases(rows, 0, move |w, i| w.delete((i % rows) as i64 + 1));
    print_row(&mut json, "dict", "delete", &deletes);

    json.write("BENCH_table3.json").expect("write BENCH_table3.json");
    println!("\n(wrote BENCH_table3.json)");
    println!("\n(percentages are relative to the android column; the in-memory");
    println!(" baseline is far faster than device SQLite/ext4, which inflates");
    println!(" relative overheads — compare the absolute added microseconds and");
    println!(" their ordering with the paper's percentages; see EXPERIMENTS.md)");
}

/// Builds the three dictionary-mode cases with `warm_updates` pre-applied
/// and runs `op` with a per-case iteration counter.
fn dict_cases(
    rows: usize,
    warm_updates: usize,
    op: impl Fn(&mut DictWorkload, usize) + Copy + 'static,
) -> Vec<Measurement> {
    dict_cases_n(TRIALS, rows, warm_updates, op)
}

fn dict_cases_n(
    trials: usize,
    rows: usize,
    warm_updates: usize,
    op: impl Fn(&mut DictWorkload, usize) + Copy + 'static,
) -> Vec<Measurement> {
    measure_interleaved(
        trials,
        DictMode::ALL
            .iter()
            .map(|&mode| {
                let mut w = DictWorkload::new(mode, rows);
                for _ in 0..warm_updates {
                    w.update();
                }
                let w = Rc::new(RefCell::new(w));
                let i = Rc::new(RefCell::new(0usize));
                let case: Case = (
                    Box::new(|| {}),
                    Box::new(move || {
                        let mut k = i.borrow_mut();
                        op(&mut w.borrow_mut(), *k);
                        *k += 1;
                    }),
                );
                case
            })
            .collect(),
    )
}

/// Prints one benchmark row: absolute times plus overhead columns.
///
/// Note on interpretation: the paper reports overheads against SQLite and
/// ext4 on 2012-era flash, whose per-op baseline costs are orders of
/// magnitude above this in-memory substrate's. The *absolute* extra work
/// Maxoid adds and its ordering across workloads are the comparable
/// quantities; percentages against a sub-µs baseline overstate relative
/// cost. See EXPERIMENTS.md.
fn print_row(json: &mut BenchJson, section: &str, label: &str, ms: &[Measurement]) {
    for (mode, m) in MODES.iter().zip(ms) {
        json.push(&format!("{section}/{label}/{mode}"), m);
    }
    let base = &ms[0];
    println!(
        "  {:<16} android {:>9.1} us | initiator {:>9.1} us ({:>6}) | delegate {:>9.1} us ({:>6})",
        label,
        base.mean_us(),
        ms[1].mean_us(),
        fmt_overhead(ms[1].overhead_pct(base)),
        ms[2].mean_us(),
        fmt_overhead(ms[2].overhead_pct(base)),
    );
}
