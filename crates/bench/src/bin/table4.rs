//! Regenerates Table 4 of the paper: Downloads and Media provider
//! end-to-end times — unmodified Android vs Maxoid writing to public
//! state vs Maxoid writing to volatile state. The paper's result: the
//! overhead is negligible in all cases.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin table4`

use maxoid::manifest::MaxoidManifest;
use maxoid::{DownloadRequest, MaxoidSystem, MediaKind};
use maxoid_bench::{measure, BenchJson, Measurement};
use maxoid_vfs::vpath;

const FILES: usize = 100;
const FILE_SIZE: usize = 1024; // 1 KB downloads.
const IMAGE_SIZE: usize = 780 * 1024; // 780 KB images.
const TRIALS: usize = 5;

fn main() {
    let mut json = BenchJson::new();
    println!("Table 4 — provider task times ({TRIALS} trials)");
    println!("(paper: ~equal across all three columns)\n");

    // --- Download 100 x 1KB files --------------------------------------
    let dl_android = bench_downloads(DlMode::Baseline);
    let dl_public = bench_downloads(DlMode::Public);
    let dl_volatile = bench_downloads(DlMode::Volatile);
    println!("download 100 x 1KB files:");
    print_row(&mut json, "download_100x1KB", &dl_android, &dl_public, &dl_volatile);

    // --- Scan 100 images into Media ------------------------------------
    let sc_android = bench_media_scan(ScanMode::Baseline);
    let sc_public = bench_media_scan(ScanMode::Public);
    let sc_volatile = bench_media_scan(ScanMode::Volatile);
    println!("\nscan 100 x 780KB images (metadata into Media):");
    print_row(&mut json, "media_scan_100x780KB", &sc_android, &sc_public, &sc_volatile);

    json.write("BENCH_table4.json").expect("write BENCH_table4.json");
    println!("\n(wrote BENCH_table4.json)");
}

fn print_row(
    json: &mut BenchJson,
    task: &str,
    android: &Measurement,
    public: &Measurement,
    volatile: &Measurement,
) {
    for (mode, m) in
        [("android", android), ("maxoid_public", public), ("maxoid_volatile", volatile)]
    {
        json.push(&format!("{task}/{mode}"), m);
    }
    println!(
        "  android {:>10.2} ms | maxoid->public {:>10.2} ms | maxoid->volatile {:>10.2} ms",
        android.mean_ns() / 1e6,
        public.mean_ns() / 1e6,
        volatile.mean_ns() / 1e6,
    );
}

#[derive(Clone, Copy, PartialEq)]
enum DlMode {
    /// Fetch + write files directly, no Downloads provider bookkeeping
    /// beyond plain records (the closest unmodified-Android analogue in
    /// our substrate: same network + file work, primary-table records).
    Baseline,
    /// Maxoid Downloads provider, public records.
    Public,
    /// Maxoid Downloads provider, volatile records.
    Volatile,
}

fn bench_downloads(mode: DlMode) -> Measurement {
    measure(
        TRIALS,
        || {},
        || {
            let sys = MaxoidSystem::boot().expect("boot");
            for i in 0..FILES {
                sys.kernel.net.publish("files.example", &format!("f{i}.bin"), vec![0u8; FILE_SIZE]);
            }
            sys.install("bench.app", vec![], MaxoidManifest::new()).expect("install");
            let pid = sys.launch("bench.app").expect("launch");
            sys.kernel
                .mkdir_all(pid, &vpath("/storage/sdcard/Download"), maxoid_vfs::Mode::PUBLIC)
                .expect("mkdir");
            match mode {
                DlMode::Baseline => {
                    // Fetch and store without volatile machinery.
                    for i in 0..FILES {
                        let data = sys
                            .kernel
                            .http_get(pid, &format!("files.example/f{i}.bin"))
                            .expect("fetch");
                        sys.kernel
                            .write(
                                pid,
                                &vpath("/storage/sdcard/Download")
                                    .join(&format!("f{i}.bin"))
                                    .unwrap(),
                                &data,
                                maxoid_vfs::Mode::PUBLIC,
                            )
                            .expect("store");
                    }
                }
                DlMode::Public | DlMode::Volatile => {
                    for i in 0..FILES {
                        sys.enqueue_download(
                            pid,
                            &DownloadRequest {
                                url: format!("files.example/f{i}.bin"),
                                dest: vpath("/storage/sdcard/Download")
                                    .join(&format!("f{i}.bin"))
                                    .unwrap(),
                                title: format!("f{i}.bin"),
                                headers: vec![],
                                volatile: mode == DlMode::Volatile,
                            },
                        )
                        .expect("enqueue");
                    }
                    let processed = sys.pump_downloads().expect("pump");
                    assert_eq!(processed, FILES);
                }
            }
        },
    )
}

#[derive(Clone, Copy, PartialEq)]
enum ScanMode {
    /// Write the image + metadata row directly (no proxy in the path).
    Baseline,
    /// Media scan as an initiator (public rows + public thumbnails).
    Public,
    /// Media scan as a delegate (volatile rows + volatile thumbnails).
    Volatile,
}

fn bench_media_scan(mode: ScanMode) -> Measurement {
    measure(
        TRIALS,
        || {},
        || {
            let sys = MaxoidSystem::boot().expect("boot");
            sys.install("bench.cam", vec![], MaxoidManifest::new()).expect("install");
            sys.install("bench.init", vec![], MaxoidManifest::new()).expect("install");
            let pid = match mode {
                ScanMode::Volatile => {
                    sys.launch_as_delegate("bench.cam", "bench.init").expect("launch")
                }
                _ => sys.launch("bench.cam").expect("launch"),
            };
            let image = vec![0u8; IMAGE_SIZE];
            for i in 0..FILES {
                let path = vpath("/storage/sdcard/DCIM").join(&format!("img{i}.jpg")).unwrap();
                sys.kernel
                    .mkdir_all(pid, &vpath("/storage/sdcard/DCIM"), maxoid_vfs::Mode::PUBLIC)
                    .expect("mkdir");
                sys.kernel.write(pid, &path, &image, maxoid_vfs::Mode::PUBLIC).expect("img");
                match mode {
                    ScanMode::Baseline => {
                        // Store metadata without proxy plumbing: direct
                        // primary-table row via the provider's admin view
                        // would still go through the proxy, so write the
                        // moral equivalent — a metadata file.
                        sys.kernel
                            .write(
                                pid,
                                &vpath("/storage/sdcard/DCIM")
                                    .join(&format!(".img{i}.meta"))
                                    .unwrap(),
                                format!("img{i},{IMAGE_SIZE}").as_bytes(),
                                maxoid_vfs::Mode::PUBLIC,
                            )
                            .expect("meta");
                    }
                    _ => {
                        sys.scan_media(
                            pid,
                            &path,
                            MediaKind::Image,
                            &format!("img{i}"),
                            IMAGE_SIZE,
                        )
                        .expect("scan");
                    }
                }
            }
        },
    )
}
