//! Fleet-scale simulator: one shared [`MaxoidSystem`] booted with 1000+
//! initiator/delegate tenant pairs, driven by 10k+ short sessions with a
//! Zipfian tenant-popularity skew (a few hot tenants, a long cold tail —
//! the shape of a real device fleet behind one confinement service).
//!
//! Each session picks a tenant by Zipf rank, runs a short interactive
//! burst through that tenant's delegate — union-mounted private reads, a
//! volatile public write, sparse COW provider traffic, an occasional
//! commit gesture — separated by a tiny deterministic think-time spin.
//! Sessions are driven by 1 and then 8 worker threads over the same
//! booted fleet; per-session wall latencies feed nearest-rank p95/p99.
//!
//! After the drive the per-tenant COW accounting (`tenant_stats`) is
//! sampled over the hottest tenants, the idle-tenant evictor runs, and
//! the sample is re-measured: volatile bytes and delta rows must drop to
//! zero (the "bounded after eviction" gate), while committed state is
//! untouched.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin fleet`
//! Writes `BENCH_fleet.json`; exits non-zero when 8-thread throughput
//! falls below the core-aware floor or eviction leaves volatile state
//! behind. `FLEET_TENANTS` / `FLEET_SESSIONS` shrink the run for smoke
//! testing.

use maxoid::manifest::MaxoidManifest;
use maxoid::{ContentValues, MaxoidSystem, Pid, QueryArgs, Uri, VolCommitPlan};
use maxoid_bench::{measure, BenchJson, DictMode, DictWorkload, FsMode, FsWorkload, Unit};
use maxoid_vfs::{vpath, Mode, VPath};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const DEFAULT_TENANTS: usize = 1000;
const DEFAULT_SESSIONS: usize = 10_000;
const DICT_ROWS: usize = 100;
const SEEDED_FILES: usize = 4;
const FILE_BYTES: usize = 1024;
/// Zipf exponent: rank-1 tenants dominate, the tail stays warm.
const ZIPF_S: f64 = 1.0;
/// Tenants sampled for the COW-accounting cells (the Zipf-hot head).
const COW_SAMPLE: usize = 32;
/// Think-time between session ops: a deterministic spin (the user
/// glancing at the screen) plus a scheduler yield at the session
/// boundary — real sessions are interleaved by the scheduler at their
/// natural gaps, which also keeps an oversubscribed single-core run from
/// stranding locks mid-critical-section when the quantum expires.
const THINK_SPINS: u64 = 64;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn words_uri() -> Uri {
    Uri::parse("content://user_dictionary/words").expect("uri")
}

struct TenantCtx {
    init: String,
    del_pid: Pid,
    files: Vec<VPath>,
}

/// Boots one system with `n` tenant pairs: installs initiator + delegate
/// apps, seeds each delegate's private read set, and leaves one delegate
/// process per tenant running on the initiator's behalf.
fn build(n: usize) -> (Arc<MaxoidSystem>, Vec<TenantCtx>) {
    let sys = MaxoidSystem::boot().expect("boot");
    sys.install("fleet.seeder", vec![], MaxoidManifest::new()).expect("install seeder");
    let seeder = sys.launch("fleet.seeder").expect("launch seeder");
    let words = words_uri();
    for i in 0..DICT_ROWS {
        sys.cp_insert(seeder, &words, &ContentValues::new().put("word", format!("w{i}").as_str()))
            .expect("seed dict");
    }

    let payload = vec![0xabu8; FILE_BYTES];
    let mut ctxs = Vec::with_capacity(n);
    for t in 0..n {
        let app = format!("fleet.app{t}");
        let init = format!("fleet.init{t}");
        sys.install(&app, vec![], MaxoidManifest::new()).expect("install app");
        sys.install(&init, vec![], MaxoidManifest::new()).expect("install init");
        let seed_pid = sys.launch(&app).expect("launch");
        let dir = vpath(&format!("/data/data/{app}/files"));
        sys.kernel.mkdir_all(seed_pid, &dir, Mode::PRIVATE).expect("mkdir");
        let mut files = Vec::with_capacity(SEEDED_FILES);
        for i in 0..SEEDED_FILES {
            let p = dir.join(&format!("orig{i}.dat")).expect("name");
            sys.kernel.write(seed_pid, &p, &payload, Mode::PRIVATE).expect("seed");
            files.push(p);
        }
        let del_pid = sys.launch_as_delegate(&app, &init).expect("delegate");
        ctxs.push(TenantCtx { init, del_pid, files });
    }
    (Arc::new(sys), ctxs)
}

/// Deterministic xorshift64* — per-worker, seeded by worker index, so
/// runs are reproducible and workers don't correlate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative Zipf(s) distribution over `n` ranks; sample by inverting a
/// uniform draw with binary search.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for r in 0..n {
        total += 1.0 / ((r + 1) as f64).powf(ZIPF_S);
        cum.push(total);
    }
    for c in &mut cum {
        *c /= total;
    }
    cum
}

fn zipf_sample(cdf: &[f64], rng: &mut Rng) -> usize {
    let u = rng.next_f64();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

fn think() {
    let mut acc = 0u64;
    for i in 0..THINK_SPINS {
        acc = std::hint::black_box(acc.wrapping_add(i));
    }
    std::hint::black_box(acc);
}

/// One tenant session: a short interactive burst through the tenant's
/// delegate. Returns ops issued.
fn run_session(sys: &MaxoidSystem, ctx: &TenantCtx, k: usize) -> u64 {
    let mut ops = 0u64;
    let diag = std::env::var("FLEET_DIAG").unwrap_or_default();
    if diag == "reads" {
        for i in 0..3 {
            sys.kernel.read(ctx.del_pid, &ctx.files[(k + i) % SEEDED_FILES]).expect("read");
            ops += 1;
        }
        return ops;
    }
    if diag == "writes" {
        let out = vpath(&format!("/storage/sdcard/{}_s{}.dat", ctx.init, k % 8));
        let body = vec![(k % 251) as u8; FILE_BYTES];
        sys.kernel.write(ctx.del_pid, &out, &body, Mode::PUBLIC).expect("vol write");
        return 1;
    }
    if diag == "cp" {
        let words = words_uri();
        let id = (k % DICT_ROWS) as i64 + 1;
        if k % 4 == 3 {
            sys.cp_update(
                ctx.del_pid,
                &words.with_id(id),
                &ContentValues::new().put("word", format!("s{k}").as_str()),
                &QueryArgs::default(),
            )
            .expect("update");
        } else {
            sys.cp_query(ctx.del_pid, &words.with_id(id), &QueryArgs::default()).expect("query");
        }
        return 1;
    }
    if diag == "commit" {
        sys.commit_vol(&ctx.init, &VolCommitPlan::default()).expect("commit");
        return 1;
    }
    let skip_cp = diag == "nocp";
    let skip_commit = diag == "nocommit";
    // Two private reads through the delegate's union mounts.
    for i in 0..2 {
        sys.kernel.read(ctx.del_pid, &ctx.files[(k + i) % SEEDED_FILES]).expect("read");
        ops += 1;
    }
    think();
    // A public write, redirected into Vol(init); bounded name set keeps
    // per-tenant volatile state finite while still accreting real bytes.
    let out = vpath(&format!("/storage/sdcard/{}_s{}.dat", ctx.init, k % 8));
    let body = vec![(k % 251) as u8; FILE_BYTES];
    sys.kernel.write(ctx.del_pid, &out, &body, Mode::PUBLIC).expect("vol write");
    ops += 1;
    if k % 16 == 7 && !skip_cp {
        // Sparse COW provider traffic: a point query, and every fourth
        // one an update into the tenant's delta table (first update pays
        // the delta DDL — part of the modelled cost).
        let words = words_uri();
        let id = (k % DICT_ROWS) as i64 + 1;
        if k % 64 == 39 {
            sys.cp_update(
                ctx.del_pid,
                &words.with_id(id),
                &ContentValues::new().put("word", format!("s{k}").as_str()),
                &QueryArgs::default(),
            )
            .expect("update");
        } else {
            sys.cp_query(ctx.del_pid, &words.with_id(id), &QueryArgs::default()).expect("query");
        }
        ops += 1;
    }
    if k % 128 == 63 && !skip_commit {
        // Occasional (empty) commit gesture: ticks the activity clock
        // and exercises the gesture-lock path under fleet load.
        sys.commit_vol(&ctx.init, &VolCommitPlan::default()).expect("commit");
        ops += 1;
    }
    ops
}

/// Drives `sessions` Zipf-skewed tenant sessions over `threads` workers.
/// Returns (total ops, elapsed secs, per-session latencies in µs).
fn drive(
    sys: &Arc<MaxoidSystem>,
    ctxs: &Arc<Vec<TenantCtx>>,
    cdf: &Arc<Vec<f64>>,
    sessions: usize,
    threads: usize,
) -> (u64, f64, Vec<f64>) {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let per_worker = sessions / threads;
    let mut handles = Vec::with_capacity(threads);
    for w in 0..threads {
        let sys = sys.clone();
        let ctxs = ctxs.clone();
        let cdf = cdf.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng::new(w as u64 + 1);
            let mut lats = Vec::with_capacity(per_worker);
            let mut ops = 0u64;
            barrier.wait();
            for s in 0..per_worker {
                let t = zipf_sample(&cdf, &mut rng);
                let k = w * per_worker + s;
                let started = Instant::now();
                ops += run_session(&sys, &ctxs[t], k);
                lats.push(started.elapsed().as_secs_f64() * 1e6);
                std::thread::yield_now();
            }
            (ops, lats)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut total = 0u64;
    let mut lats = Vec::with_capacity(sessions);
    for h in handles {
        let (ops, mut l) = h.join().expect("worker");
        total += ops;
        lats.append(&mut l);
    }
    (total, start.elapsed().as_secs_f64(), lats)
}

/// Nearest-rank percentile over unsorted data.
fn percentile(lats: &mut [f64], q: f64) -> f64 {
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * lats.len() as f64).ceil() as usize).clamp(1, lats.len());
    lats[rank - 1]
}

fn main() {
    let tenants = env_usize("FLEET_TENANTS", DEFAULT_TENANTS);
    let sessions = env_usize("FLEET_SESSIONS", DEFAULT_SESSIONS);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut json = BenchJson::new();
    println!("Fleet simulator — {tenants} tenant pairs, {sessions} Zipf(s={ZIPF_S}) sessions, {cores} core(s)\n");
    json.push_scalar("fleet/cores", cores as f64);
    json.push_scalar("fleet/tenants", tenants as f64);
    json.push_scalar("fleet/sessions", sessions as f64);

    // Single-thread latency cells (cache_on methodology, same keys as
    // BENCH_concurrency.json) so sharding regressions show up as a
    // direct cell-to-cell diff. Measured first, in fresh-process state.
    println!("Single-thread latency (cache_on methodology):");
    let mut dict = DictWorkload::new(DictMode::Delegate, DICT_ROWS);
    dict.set_caches(true);
    for _ in 0..50 {
        dict.update();
    }
    let mut kq = 0usize;
    let dictq = std::rc::Rc::new(std::cell::RefCell::new(dict));
    let q = measure(
        200,
        {
            let dictq = dictq.clone();
            move || {
                dictq.borrow_mut().stage_query_one((kq % DICT_ROWS) as i64 + 1);
                kq += 1;
            }
        },
        move || {
            std::hint::black_box(dictq.borrow_mut().query_one_staged());
        },
    );
    json.push("lat1/dict/query 1 word/delegate/cache_on", &q);
    println!("  dict/query 1 word  {:>8.3} us", q.mean_us());

    let mut dict = DictWorkload::new(DictMode::Delegate, DICT_ROWS);
    dict.set_caches(true);
    for _ in 0..50 {
        dict.update();
    }
    let dictu = std::rc::Rc::new(std::cell::RefCell::new(dict));
    let u = measure(
        200,
        {
            let dictu = dictu.clone();
            move || dictu.borrow_mut().stage_update()
        },
        move || dictu.borrow_mut().update_staged(),
    );
    json.push("lat1/dict/update/delegate/cache_on", &u);
    println!("  dict/update        {:>8.3} us", u.mean_us());

    let mut fs = FsWorkload::new(FsMode::Delegate, 1, 4 * 1024);
    fs.set_resolve_caches(true);
    fs.append(0, 4 * 1024);
    let fsa = std::rc::Rc::new(std::cell::RefCell::new(fs));
    let a = measure(
        200,
        {
            let fsa = fsa.clone();
            move || fsa.borrow_mut().stage_append(0, 64)
        },
        move || fsa.borrow_mut().append_staged(),
    );
    json.push("lat1/fs_4KB/append/delegate/cache_on", &a);
    println!("  fs_4KB/append      {:>8.3} us", a.mean_us());

    // Fleet boot: how fast the sharded substrate absorbs tenant churn.
    println!("\nBooting {tenants} tenant pairs…");
    let boot_start = Instant::now();
    let (sys, ctxs) = build(tenants);
    let boot_secs = boot_start.elapsed().as_secs_f64();
    let ctxs = Arc::new(ctxs);
    let cdf = Arc::new(zipf_cdf(tenants));
    json.push_scalar("fleet/boot/secs", boot_secs);
    json.push_scalar_unit("fleet/boot/tenants_per_sec", tenants as f64 / boot_secs, Unit::OpsPerSec);
    println!("  booted in {boot_secs:.2}s ({:.0} tenants/s)\n", tenants as f64 / boot_secs);

    if std::env::var("FLEET_OBS").is_ok() {
        maxoid_obs::enable();
        let (_, secs, _) = drive(&sys, &ctxs, &cdf, sessions, 1);
        maxoid_obs::disable();
        let snap = maxoid_obs::take_snapshot();
        let mut totals: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
        for sp in &snap.spans {
            let e = totals.entry(sp.name).or_default();
            e.0 += 1;
            e.1 += sp.dur_ns;
        }
        let mut rows: Vec<_> = totals.into_iter().collect();
        rows.sort_by_key(|(_, (_, ns))| std::cmp::Reverse(*ns));
        println!("top spans over {secs:.2}s:");
        for (name, (n, ns)) in rows.iter().take(15) {
            println!("  {name:<32} n={n:<8} total={:>9.1}ms", *ns as f64 / 1e6);
        }
        return;
    }

    // Session drive at 1 then 8 workers over the same warm fleet. The
    // same-system reuse biases *for* the later run, which only makes the
    // scaling gate harder to cheat on a multi-core host.
    let mut ops_by_threads = Vec::new();
    for &threads in &[1usize, 8] {
        let (ops, secs, mut lats) = drive(&sys, &ctxs, &cdf, sessions, threads);
        let rate = ops as f64 / secs;
        let p50 = percentile(&mut lats, 0.50);
        let p95 = percentile(&mut lats, 0.95);
        let p99 = percentile(&mut lats, 0.99);
        ops_by_threads.push(rate);
        json.push_scalar_unit(&format!("fleet/threads{threads}/ops_per_sec"), rate, Unit::OpsPerSec);
        json.push_scalar_unit(
            &format!("fleet/threads{threads}/sessions_per_sec"),
            lats.len() as f64 / secs,
            Unit::OpsPerSec,
        );
        json.push_scalar(&format!("fleet/threads{threads}/session_p50_us"), p50);
        json.push_scalar(&format!("fleet/threads{threads}/session_p95_us"), p95);
        json.push_scalar(&format!("fleet/threads{threads}/session_p99_us"), p99);
        println!(
            "  {threads} worker(s): {rate:>10.0} ops/s | session p50 {p50:>7.1}us p95 {p95:>7.1}us p99 {p99:>7.1}us"
        );
    }

    // Per-tenant COW accounting over the Zipf-hot head, before and after
    // idle eviction. Everything is idle once the drive stops, so the
    // evictor must reclaim all sampled volatile state.
    let sample = COW_SAMPLE.min(tenants);
    let collect = |sys: &MaxoidSystem| {
        let mut vol_bytes = 0u64;
        let mut cow_bytes = 0u64;
        let mut delta_rows = 0usize;
        let mut max_total = 0u64;
        for ctx in ctxs.iter().take(sample) {
            let st = sys.tenant_stats(&ctx.init).expect("stats");
            vol_bytes += st.volatile_bytes;
            cow_bytes += st.cow_bytes;
            delta_rows += st.delta_rows;
            max_total = max_total.max(st.total_bytes());
        }
        (vol_bytes, cow_bytes, delta_rows, max_total)
    };
    let (vol_before, cow_before, rows_before, max_before) = collect(&sys);
    println!(
        "\nCOW accounting over {sample} hottest tenants (before eviction):\n  \
         volatile {vol_before} B | cow {cow_before} B | delta rows {rows_before} | max tenant {max_before} B"
    );
    json.push_scalar("fleet/cow/sampled_tenants", sample as f64);
    json.push_scalar("fleet/cow/volatile_bytes_before", vol_before as f64);
    json.push_scalar("fleet/cow/cow_bytes_before", cow_before as f64);
    json.push_scalar("fleet/cow/delta_rows_before", rows_before as f64);
    json.push_scalar("fleet/cow/max_tenant_bytes_before", max_before as f64);
    json.push_scalar(
        "fleet/cow/per_tenant_volatile_bytes_before",
        vol_before as f64 / sample as f64,
    );

    let evict_start = Instant::now();
    let report = sys.evict_idle_tenants(0).expect("evict");
    let evict_secs = evict_start.elapsed().as_secs_f64();
    let (vol_after, _cow_after, rows_after, max_after) = collect(&sys);
    println!(
        "Evicted {} tenants ({} files) in {evict_secs:.2}s; after: volatile {vol_after} B | \
         delta rows {rows_after} | max tenant {max_after} B",
        report.tenants, report.files_removed
    );
    json.push_scalar("fleet/evict/tenants", report.tenants as f64);
    json.push_scalar("fleet/evict/files_removed", report.files_removed as f64);
    json.push_scalar("fleet/evict/secs", evict_secs);
    json.push_scalar("fleet/cow/volatile_bytes_after", vol_after as f64);
    json.push_scalar("fleet/cow/delta_rows_after", rows_after as f64);
    json.push_scalar("fleet/cow/per_tenant_volatile_bytes_after", vol_after as f64 / sample as f64);
    json.push_scalar("fleet/init_locks/retained", sys.init_lock_count() as f64);

    json.write("BENCH_fleet.json").expect("write BENCH_fleet.json");
    println!("\n(wrote BENCH_fleet.json)");

    // Exit gates. Scaling: with real parallelism 8 workers must not lose
    // to 1 (the sharded hot paths must actually run in parallel); on a
    // single core only bounded locking overhead can be demanded.
    let (one, eight) = (ops_by_threads[0], ops_by_threads[1]);
    let floor = if cores >= 2 { one } else { one * 0.7 };
    let mut failed = false;
    if eight < floor {
        eprintln!(
            "FAIL: 8-worker throughput {eight:.0} ops/s below floor {floor:.0} ops/s \
             (1-worker {one:.0}, {cores} core(s))"
        );
        failed = true;
    }
    // Eviction: per-tenant COW state must be bounded — all sampled
    // volatile bytes and delta rows reclaimed once every tenant is idle.
    if vol_after != 0 || rows_after != 0 {
        eprintln!(
            "FAIL: eviction left volatile state behind: {vol_after} volatile bytes, \
             {rows_after} delta rows across the {sample}-tenant sample"
        );
        failed = true;
    }
    if report.tenants == 0 && vol_before > 0 {
        eprintln!("FAIL: evictor found no idle tenants despite sampled volatile state");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
