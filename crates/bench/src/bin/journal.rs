//! Journal ablations: what write-ahead logging costs, and what recovery
//! buys.
//!
//! Two experiment families, emitted to `BENCH_journal.json`:
//!
//! - **journal_overhead** — the same SQL-insert and file-write loops with
//!   logging off vs group-commit batch sizes 1/16/128. Batch 1 is the
//!   worst case (every record pays a flush); larger batches amortise it
//!   toward the logging-off floor.
//! - **recovery** — replay time of `maxoid::recover` as a function of log
//!   size (100/1000/5000 committed records), the quantity that bounds
//!   crash-restart latency and motivates snapshot checkpoints; plus
//!   replay time of *compacted* logs whose histories differ 100× but
//!   whose live state is identical — compaction's claim is that recovery
//!   cost tracks live state, not uptime, so those two cells must be flat.
//!
//! Exits non-zero when the journaled/unjournaled 4KB-write median ratio
//! exceeds [`MAX_WRITE_RATIO`] (the CI gate for the write-path work).
//!
//! Run with: `cargo run --release -p maxoid-bench --bin journal`

use maxoid::durability::{compact_log, recover};
use maxoid_bench::{measure, measure_interleaved, BenchJson, Case, Measurement};
use maxoid_journal::JournalHandle;
use maxoid_sqldb::{Database, Value};
use maxoid_vfs::{vpath, Mode, Store, Uid};
use std::cell::RefCell;
use std::rc::Rc;

const TRIALS: usize = 300;

/// The ablation axis: no journal, then group-commit batch sizes.
const MODES: [(&str, Option<usize>); 4] =
    [("off", None), ("batch1", Some(1)), ("batch16", Some(16)), ("batch128", Some(128))];

/// CI gate: the journaled (default batch 16) 4KB file write may cost at
/// most this multiple of the unjournaled write, by median.
const MAX_WRITE_RATIO: f64 = 5.0;

fn main() {
    let mut json = BenchJson::new();
    println!("Journal ablations — logging overhead and recovery scaling");
    println!("({TRIALS} interleaved trials per cell)\n");

    // --- journal_overhead: logical SQL records ------------------------
    let sql = measure_interleaved(
        TRIALS,
        MODES
            .iter()
            .map(|&(_, batch)| {
                let mut db = Database::new();
                if let Some(b) = batch {
                    db.set_journal(JournalHandle::with_batch(b).sink(), "db.bench");
                }
                db.execute_batch(
                    "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER);",
                )
                .expect("schema");
                let db = Rc::new(RefCell::new(db));
                let i = Rc::new(RefCell::new(0i64));
                let case: Case = (
                    Box::new(|| {}),
                    Box::new(move || {
                        let mut k = i.borrow_mut();
                        *k += 1;
                        db.borrow_mut()
                            .execute(
                                "INSERT INTO words (word, frequency) VALUES (?, ?)",
                                &[Value::Text(format!("w{k}")), Value::Integer(*k)],
                            )
                            .expect("insert");
                    }),
                );
                case
            })
            .collect(),
    );
    println!("journal_overhead, SQL insert:");
    print_row(&mut json, "journal_overhead/sql_insert", &sql);

    // --- journal_overhead: physical file-write records ----------------
    let fs = measure_interleaved(
        TRIALS,
        MODES
            .iter()
            .map(|&(_, batch)| {
                let mut store = Store::new();
                store.mkdir_all(&vpath("/data"), Uid::ROOT, Mode::PUBLIC).expect("mkdir");
                if let Some(b) = batch {
                    store.set_journal(JournalHandle::with_batch(b).sink());
                }
                let store = Rc::new(RefCell::new(store));
                let i = Rc::new(RefCell::new(0u64));
                let payload = vec![0xabu8; 4096];
                let case: Case = (
                    Box::new(|| {}),
                    Box::new(move || {
                        let mut k = i.borrow_mut();
                        *k += 1;
                        store
                            .borrow_mut()
                            .write(
                                &vpath("/data").join(&format!("f{k}.dat")).unwrap(),
                                &payload,
                                Uid::ROOT,
                                Mode::PUBLIC,
                            )
                            .expect("write");
                    }),
                );
                case
            })
            .collect(),
    );
    println!("\njournal_overhead, 4KB file write:");
    print_row(&mut json, "journal_overhead/fs_write_4k", &fs);

    // --- recovery time vs log size ------------------------------------
    println!("\nrecovery time vs committed log size:");
    for n in [100usize, 1000, 5000] {
        let log = build_log(n);
        let m = measure(
            30.min(TRIALS),
            || {},
            || {
                std::hint::black_box(recover(&log).expect("recover"));
            },
        );
        json.push(&format!("recovery/replay/n{n}"), &m);
        println!(
            "  {:>5} records ({:>8} bytes): {:>10.1} us  ({:.3} us/record)",
            n,
            log.len(),
            m.mean_us(),
            m.mean_us() / n as f64,
        );
    }

    // --- recovery after compaction: flat in history length ------------
    println!("\nrecovery of compacted logs (identical live state, 100x history):");
    let mut compacted_medians = Vec::new();
    for n in [1_000usize, 100_000] {
        let full = build_churn_log(n);
        let (records, upto) = compact_log(&full).expect("compact");
        let j = JournalHandle::with_batch(64);
        j.replace_with(&records, upto).expect("replace");
        let log = j.bytes();
        let m = measure(
            30,
            || {},
            || {
                std::hint::black_box(recover(&log).expect("recover"));
            },
        );
        json.push(&format!("recovery/compacted/n{n}"), &m);
        println!(
            "  {:>6}-op history -> {:>6} compacted bytes: {:>8.1} us",
            n,
            log.len(),
            m.median_us(),
        );
        compacted_medians.push(m.median_us());
    }
    let flatness = compacted_medians[1] / compacted_medians[0];
    json.push_scalar("recovery/compacted/ratio_100k_vs_1k", flatness);
    println!("  100k/1k replay ratio: {flatness:.2}x (compaction bounds recovery by live state)");

    // --- write-overhead gate ------------------------------------------
    let (off, batch16) = (fs[0].median_us(), fs[2].median_us());
    let ratio = if off > 0.0 { batch16 / off } else { 0.0 };
    json.push_scalar("journal_overhead/fs_write_4k/median_ratio_batch16_vs_off", ratio);
    println!("\njournaled (batch16) vs unjournaled 4KB write: {ratio:.2}x by median");

    json.write("BENCH_journal.json").expect("write BENCH_journal.json");
    println!("(wrote BENCH_journal.json)");

    if ratio > MAX_WRITE_RATIO {
        eprintln!(
            "FAIL: journaled 4KB write {batch16:.2} us is {ratio:.2}x the unjournaled \
             {off:.2} us (gate: {MAX_WRITE_RATIO}x)"
        );
        std::process::exit(1);
    }
}

/// Builds a flushed log of `n` committed records, half logical SQL
/// inserts and half physical 1KB file writes — the mix `recover` sees
/// after real use.
fn build_log(n: usize) -> Vec<u8> {
    let j = JournalHandle::with_batch(64);
    let mut db = Database::new();
    db.set_journal(j.sink(), "db.bench");
    db.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER);")
        .expect("schema");
    let mut store = Store::new();
    store.set_journal(j.sink());
    store.mkdir_all(&vpath("/data"), Uid::ROOT, Mode::PUBLIC).expect("mkdir");
    let payload = vec![0x5au8; 1024];
    for i in 0..n / 2 {
        db.execute(
            "INSERT INTO words (word, frequency) VALUES (?, ?)",
            &[Value::Text(format!("w{i}")), Value::Integer(i as i64)],
        )
        .expect("insert");
        store
            .write(
                &vpath("/data").join(&format!("f{i}.dat")).unwrap(),
                &payload,
                Uid::ROOT,
                Mode::PUBLIC,
            )
            .expect("write");
    }
    j.flush().expect("flush");
    j.bytes()
}

/// Builds a flushed log of `n` churn operations whose *final* state is
/// independent of `n`: the ops cycle over 4 files and 50 dictionary rows
/// with contents keyed by `i % 100`, so any `n` divisible by 100 lands
/// every file and row on the same last value. Only the history length
/// differs — exactly the input compaction collapses.
fn build_churn_log(n: usize) -> Vec<u8> {
    assert!(n % 100 == 0, "n must align the churn cycles");
    const FILES: usize = 4;
    const ROWS: usize = 50;
    let j = JournalHandle::with_batch(64);
    let mut db = Database::new();
    db.set_journal(j.sink(), "db.bench");
    db.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER);")
        .expect("schema");
    for r in 0..ROWS {
        db.execute(
            "INSERT INTO words (word, frequency) VALUES (?, ?)",
            &[Value::Text(format!("w{r}")), Value::Integer(0)],
        )
        .expect("seed");
    }
    let mut store = Store::new();
    store.set_journal(j.sink());
    store.mkdir_all(&vpath("/data"), Uid::ROOT, Mode::PUBLIC).expect("mkdir");
    for i in 0..n {
        let gen = (i % 100) as i64;
        let body = format!("generation {gen:02} of a file that keeps being rewritten");
        store
            .write(
                &vpath("/data").join(&format!("f{}.dat", i % FILES)).unwrap(),
                body.as_bytes(),
                Uid::ROOT,
                Mode::PUBLIC,
            )
            .expect("write");
        db.execute(
            "UPDATE words SET frequency = ? WHERE _id = ?",
            &[Value::Integer(gen), Value::Integer((i % ROWS) as i64 + 1)],
        )
        .expect("update");
    }
    j.flush().expect("flush");
    j.bytes()
}

fn print_row(json: &mut BenchJson, section: &str, ms: &[Measurement]) {
    let base = &ms[0];
    for ((mode, _), m) in MODES.iter().zip(ms) {
        json.push(&format!("{section}/{mode}"), m);
        println!(
            "  {:<10} {:>9.2} us  (+{:.1}% vs off)",
            mode,
            m.mean_us(),
            m.overhead_pct(base).max(0.0),
        );
    }
}
