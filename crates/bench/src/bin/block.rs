//! Block-layer ablations: what paging file content through a device
//! costs, and what the page cache buys back.
//!
//! Three experiment families, emitted to `BENCH_block.json`:
//!
//! - **backend** — the same 4KB file read/write loops against a resident
//!   store, a mem-device-backed paged store, and a file-device-backed
//!   paged store, with a hot set that fits the cache. The paged cells pay
//!   spill bookkeeping and cache lookups but no device I/O on hits, so
//!   they must stay within [`MAX_CACHED_RATIO`] of resident (the CI
//!   gate for the block-layer hot path).
//! - **working_set sweep** — read hit rates as the working set grows from
//!   0.5x to 4x the page budget. The cache's memory is structural
//!   (`budget_bytes` never moves); what degrades is the hit rate, and
//!   the sweep quantifies the cliff.
//! - **cold_boot** — end-to-end `MaxoidSystem::boot_journaled` latency
//!   from a file-backed [`BlockStorage`] holding 100/1000-record logs:
//!   the crash-restart cost the journal+block stack promises to bound.
//!
//! Run with: `cargo run --release -p maxoid-bench --bin block`

use maxoid::manifest::MaxoidManifest;
use maxoid::{Caller, ContentValues, MaxoidSystem, QueryArgs, Uri};
use maxoid_bench::{measure, measure_interleaved, BenchJson, Case, Measurement};
use maxoid_block::{FileDevice, MemDevice};
use maxoid_journal::{BlockStorage, JournalHandle};
use maxoid_vfs::{vpath, Mode, Store, Uid};
use std::cell::RefCell;
use std::rc::Rc;

const TRIALS: usize = 300;

/// Page budget for the paged backends: 16 x 4096 = 64 KiB.
const PAGES: usize = 16;

/// Spill threshold for the paged backends: everything over 64 bytes goes
/// to sectors, so the 4KB cells below always exercise the block path.
const THRESHOLD: usize = 64;

/// Files in the hot set: 8 x 4KB = 32 KiB, half the page budget, so the
/// steady state is all hits.
const HOT_FILES: usize = 8;

/// CI gate: a paged 4KB read/write on a cache-resident hot set may cost
/// at most this multiple of the all-in-memory store, by median.
const MAX_CACHED_RATIO: f64 = 3.0;

/// The backend axis of the `backend` family.
const BACKENDS: [&str; 3] = ["resident", "paged_mem", "paged_file"];

fn hot_store(backend: &str) -> Store {
    let mut s = match backend {
        "resident" => Store::new(),
        "paged_mem" => Store::with_block_device(Box::new(MemDevice::new()), PAGES, THRESHOLD),
        "paged_file" => Store::with_block_device(
            Box::new(FileDevice::temp("bench-hot").expect("temp device")),
            PAGES,
            THRESHOLD,
        ),
        other => unreachable!("unknown backend {other}"),
    };
    s.mkdir_all(&vpath("/data"), Uid::ROOT, Mode::PUBLIC).expect("mkdir");
    let payload = vec![0xabu8; 4096];
    for i in 0..HOT_FILES {
        s.write(
            &vpath("/data").join(&format!("f{i}.dat")).unwrap(),
            &payload,
            Uid::ROOT,
            Mode::PUBLIC,
        )
        .expect("seed");
    }
    s
}

fn main() {
    let mut json = BenchJson::new();
    println!("Block-layer ablations — paged backends, cache sweep, cold boot");
    println!("({TRIALS} interleaved trials per cell)\n");

    // --- backend: 4KB read on a cache-resident hot set ----------------
    let reads = measure_interleaved(
        TRIALS,
        BACKENDS
            .iter()
            .map(|&backend| {
                let s = Rc::new(RefCell::new(hot_store(backend)));
                let i = Rc::new(RefCell::new(0usize));
                let case: Case = (
                    Box::new(|| {}),
                    Box::new(move || {
                        let mut k = i.borrow_mut();
                        *k += 1;
                        let path =
                            vpath("/data").join(&format!("f{}.dat", *k % HOT_FILES)).unwrap();
                        std::hint::black_box(s.borrow().read(&path).expect("read"));
                    }),
                );
                case
            })
            .collect(),
    );
    println!("backend, 4KB read (hot set {} KiB, budget {} KiB):", HOT_FILES * 4, PAGES * 4);
    print_row(&mut json, "backend/read_4k", &reads);

    // --- backend: 4KB overwrite on the same hot set -------------------
    let writes = measure_interleaved(
        TRIALS,
        BACKENDS
            .iter()
            .map(|&backend| {
                let s = Rc::new(RefCell::new(hot_store(backend)));
                let i = Rc::new(RefCell::new(0usize));
                let payload = vec![0x5au8; 4096];
                let case: Case = (
                    Box::new(|| {}),
                    Box::new(move || {
                        let mut k = i.borrow_mut();
                        *k += 1;
                        let path =
                            vpath("/data").join(&format!("f{}.dat", *k % HOT_FILES)).unwrap();
                        s.borrow_mut()
                            .write(&path, &payload, Uid::ROOT, Mode::PUBLIC)
                            .expect("write");
                    }),
                );
                case
            })
            .collect(),
    );
    println!("\nbackend, 4KB overwrite:");
    print_row(&mut json, "backend/write_4k", &writes);

    // --- working-set sweep: hit rate vs cache pressure ----------------
    println!("\nworking-set sweep (page budget {} KiB, sequential re-read passes):", PAGES * 4);
    for ratio in [0.5f64, 1.0, 2.0, 4.0] {
        let files = ((PAGES as f64 * ratio) as usize).max(1);
        let mut s = Store::with_block_device(Box::new(MemDevice::new()), PAGES, THRESHOLD);
        s.mkdir_all(&vpath("/data"), Uid::ROOT, Mode::PUBLIC).expect("mkdir");
        let payload = vec![0x77u8; 4096];
        for i in 0..files {
            s.write(
                &vpath("/data").join(&format!("f{i}.dat")).unwrap(),
                &payload,
                Uid::ROOT,
                Mode::PUBLIC,
            )
            .expect("seed");
        }
        let seeded = s.stats().cache.expect("paged store");
        for _pass in 0..8 {
            for i in 0..files {
                std::hint::black_box(
                    s.read(&vpath("/data").join(&format!("f{i}.dat")).unwrap()).expect("read"),
                );
            }
        }
        let st = s.stats();
        let c = st.cache.expect("paged store");
        let (hits, misses) = (c.hits - seeded.hits, c.misses - seeded.misses);
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        json.push_scalar(&format!("working_set/ratio{ratio}/hit_rate"), hit_rate);
        json.push_scalar(&format!("working_set/ratio{ratio}/evictions"), c.evictions as f64);
        json.push_scalar(
            &format!("working_set/ratio{ratio}/budget_bytes"),
            st.cache_budget_bytes as f64,
        );
        println!(
            "  {:>4.1}x budget ({:>2} files): hit rate {:>5.1}%  evictions {:>5}  budget {:>6} B",
            ratio,
            files,
            hit_rate * 100.0,
            c.evictions,
            st.cache_budget_bytes,
        );
        assert_eq!(
            st.cache_budget_bytes,
            (PAGES * 4096) as u64,
            "the page budget is structural; it must not track the working set"
        );
    }

    // --- cold boot from a file-backed device --------------------------
    println!("\ncold boot from a file-backed block journal:");
    for n in [100usize, 1000] {
        let path =
            std::env::temp_dir().join(format!("maxoid-bench-boot-{}-{n}.blk", std::process::id()));
        build_device_log(&path, n);
        let m = measure(
            20,
            || {},
            || {
                let dev = FileDevice::open(&path).expect("reopen");
                let storage = BlockStorage::open(Box::new(dev), 64).expect("open storage");
                let j = JournalHandle::with_storage(Box::new(storage), 16);
                std::hint::black_box(MaxoidSystem::boot_journaled(j).expect("cold boot"));
            },
        );
        json.push(&format!("cold_boot/file_n{n}"), &m);
        println!("  {n:>5}-record log: {:>10.1} us median", m.median_us());
        let _ = std::fs::remove_file(&path);
    }

    // --- cached hot-set gate ------------------------------------------
    let mut worst = 0.0f64;
    for (family, ms) in [("read_4k", &reads), ("write_4k", &writes)] {
        let (resident, mem) = (ms[0].median_us(), ms[1].median_us());
        let ratio = if resident > 0.0 { mem / resident } else { 0.0 };
        json.push_scalar(&format!("backend/{family}/median_ratio_paged_mem_vs_resident"), ratio);
        println!("\npaged_mem vs resident {family}: {ratio:.2}x by median");
        worst = worst.max(ratio);
    }

    json.write("BENCH_block.json").expect("write BENCH_block.json");
    println!("(wrote BENCH_block.json)");

    if worst > MAX_CACHED_RATIO {
        eprintln!(
            "FAIL: cache-resident paged hot set is {worst:.2}x the all-in-memory store \
             (gate: {MAX_CACHED_RATIO}x)"
        );
        std::process::exit(1);
    }
}

/// Seeds a journaled system over the file device at `path` with `n`
/// committed records (provider rows and 1KB file writes), then drops it —
/// the device file is the only survivor, ready for cold-boot timing.
fn build_device_log(path: &std::path::Path, n: usize) {
    let _ = std::fs::remove_file(path);
    let dev = FileDevice::create(path).expect("create device");
    let storage = BlockStorage::open(Box::new(dev), 64).expect("open storage");
    let j = JournalHandle::with_storage(Box::new(storage), 16);
    let sys = MaxoidSystem::boot_journaled(j.clone()).expect("boot");
    sys.install("seeder", vec![], MaxoidManifest::new()).expect("install");
    let words = Uri::parse("content://user_dictionary/words").unwrap();
    let caller = Caller::normal("seeder");
    let payload = vec![0x3cu8; 1024];
    for i in 0..n / 2 {
        sys.resolver
            .insert(
                &caller,
                &words,
                &ContentValues::new().put("word", format!("w{i}")).put("frequency", i as i64),
            )
            .expect("insert");
        sys.kernel
            .vfs()
            .with_store_mut(|s| {
                s.mkdir_all(&vpath("/data/seed"), Uid::ROOT, Mode::PUBLIC)?;
                s.write(
                    &vpath("/data/seed").join(&format!("f{i}.dat")).unwrap(),
                    &payload,
                    Uid::ROOT,
                    Mode::PUBLIC,
                )
            })
            .expect("write");
    }
    // Sanity: the state is queryable before we throw the process away.
    let rows =
        sys.resolver.query(&caller, &words, &QueryArgs::default()).expect("query").rows.len();
    assert_eq!(rows, n / 2);
    j.flush().expect("flush");
}

fn print_row(json: &mut BenchJson, section: &str, ms: &[Measurement]) {
    let base = &ms[0];
    for (backend, m) in BACKENDS.iter().zip(ms) {
        json.push(&format!("{section}/{backend}"), m);
        println!(
            "  {:<11} {:>9.2} us  (+{:.1}% vs resident)",
            backend,
            m.mean_us(),
            m.overhead_pct(base).max(0.0),
        );
    }
}
