//! Criterion version of the Table 5 application-task benchmarks:
//! Adobe Reader open/search, CamScanner page processing, CameraMX
//! take/save photo, each in android/initiator/delegate mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxoid::manifest::MaxoidManifest;
use maxoid::{MaxoidSystem, Pid};
use maxoid_apps::{compute, AdobeReader, CamScanner, CameraMx, FileRef};
use maxoid_vfs::{vpath, Mode};

// Smaller than the paper's 1.6 MB to keep Criterion's many iterations
// affordable; the CPU-vs-I/O balance is preserved.
const PDF_SIZE: usize = 256 * 1024;

fn setup(mode: &str, pkg: &str) -> (MaxoidSystem, Pid) {
    let mut sys = MaxoidSystem::boot().expect("boot");
    sys.install(pkg, vec![], MaxoidManifest::new()).expect("install");
    sys.install("bench.init", vec![], MaxoidManifest::new()).expect("install");
    let seeder = sys.launch("bench.init").expect("seeder");
    let mut doc = compute::capture_photo(PDF_SIZE, 11);
    for chunk in doc.chunks_mut(10_000) {
        if chunk.len() >= 6 {
            chunk[..6].copy_from_slice(b"needle");
        }
    }
    sys.kernel
        .write(seeder, &vpath("/storage/sdcard/bench.pdf"), &doc, Mode::PUBLIC)
        .expect("seed");
    let pid = if mode == "delegate" {
        sys.launch_as_delegate(pkg, "bench.init").expect("delegate")
    } else {
        sys.launch(pkg).expect("launch")
    };
    (sys, pid)
}

fn bench_reader(c: &mut Criterion) {
    let reader = AdobeReader::default();
    let mut g = c.benchmark_group("table5/adobe_reader");
    g.sample_size(10);
    for mode in ["android", "initiator", "delegate"] {
        g.bench_function(BenchmarkId::new("open_file", mode), |b| {
            let (mut sys, pid) = setup(mode, &reader.pkg);
            let data = sys.kernel.read(pid, &vpath("/storage/sdcard/bench.pdf")).unwrap();
            b.iter(|| {
                reader
                    .open(
                        &mut sys,
                        pid,
                        &FileRef::Content { name: "bench.pdf".into(), data: data.clone() },
                    )
                    .expect("open");
            });
        });
        g.bench_function(BenchmarkId::new("in_file_search", mode), |b| {
            let (sys, pid) = setup(mode, &reader.pkg);
            b.iter(|| {
                std::hint::black_box(
                    reader
                        .search(&sys, pid, &vpath("/storage/sdcard/bench.pdf"), "needle")
                        .expect("search"),
                );
            });
        });
    }
    g.finish();
}

fn bench_camscanner(c: &mut Criterion) {
    let scanner = CamScanner::default();
    let mut g = c.benchmark_group("table5/camscanner");
    g.sample_size(10);
    for mode in ["android", "initiator", "delegate"] {
        g.bench_function(BenchmarkId::new("process_page", mode), |b| {
            let (mut sys, pid) = setup(mode, &scanner.pkg);
            let pixels = compute::capture_photo(100_000, 3);
            let mut i = 0;
            b.iter(|| {
                scanner.scan_page(&mut sys, pid, &format!("page{i}"), &pixels).expect("scan");
                i += 1;
            });
        });
    }
    g.finish();
}

fn bench_cameramx(c: &mut Criterion) {
    let cam = CameraMx::default();
    let mut g = c.benchmark_group("table5/cameramx");
    g.sample_size(10);
    for mode in ["android", "initiator", "delegate"] {
        g.bench_function(BenchmarkId::new("take_photo", mode), |b| {
            let (mut sys, pid) = setup(mode, &cam.pkg);
            let mut i = 0;
            b.iter(|| {
                cam.take_photo(&mut sys, pid, &format!("p{i}"), 100_000).expect("photo");
                i += 1;
            });
        });
        g.bench_function(BenchmarkId::new("save_edited_photo", mode), |b| {
            let (mut sys, pid) = setup(mode, &cam.pkg);
            let photo = cam.take_photo(&mut sys, pid, "base", 100_000).expect("photo");
            b.iter(|| {
                cam.save_edited(&mut sys, pid, &photo).expect("edit");
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reader, bench_camscanner, bench_cameramx);
criterion_main!(benches);
