//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//!
//! 1. **Subquery flattening** (paper §5.2 footnote 5): point queries on a
//!    COW view under every planner policy, showing the cliff the authors
//!    engineered around (Off materializes the whole view; 3.7.11 refuses
//!    to flatten under ORDER BY; 3.8.6 flattens with the proxy's
//!    column-append workaround).
//! 2. **Unilateral COW vs full snapshot** (paper §3.3): delegate start-up
//!    cost with lazy branch creation vs eagerly snapshotting public state.
//! 3. **File- vs block-granularity copy-up** (paper §7.2.1): append cost
//!    as a function of file size, showing the O(file size) behaviour that
//!    makes append the worst case.
//! 4. **Secondary indexes vs full scans**: point queries on a 1000-row
//!    table with and without an index, plain and through a COW view whose
//!    delta table mirrors the index on both UNION ALL arms.
//! 5. **Statement cache vs re-parsing**: the hot-path caches (prepared
//!    statements, plans, rewrite SQL) against the re-parse-everything
//!    mode the equivalence proptests compare them to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxoid::manifest::MaxoidManifest;
use maxoid::MaxoidSystem;
use maxoid_bench::{cow_point_query, cow_table, FsMode, FsWorkload};
use maxoid_cowproxy::{DbView, QueryOpts};
use maxoid_sqldb::{FlattenPolicy, Value};
use maxoid_vfs::{vpath, Mode, Uid};

fn bench_flattening(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/flattening_point_query");
    g.sample_size(20);
    let policies = [
        ("off", FlattenPolicy::Off),
        ("sqlite_3_7_11", FlattenPolicy::Sqlite3711),
        ("sqlite_3_8_6", FlattenPolicy::Sqlite386),
        ("always", FlattenPolicy::Always),
    ];
    for (name, policy) in policies {
        // 5000 public rows, 100 volatile rows: big enough that a
        // materialize-then-filter plan visibly loses.
        let p = cow_table(policy, 5000, 100);
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut id = 0i64;
            b.iter(|| {
                id = id % 5000 + 1;
                std::hint::black_box(cow_point_query(&p, id));
            });
        });
    }
    g.finish();

    // The ORDER BY variant that separates 3.7.11 from 3.8.6: named
    // columns + ORDER BY (the proxy's workaround appends the column).
    let mut g = c.benchmark_group("ablation/flattening_order_by");
    g.sample_size(20);
    for (name, policy) in policies {
        let p = cow_table(policy, 5000, 100);
        let delegate = DbView::Delegate { initiator: "A".into() };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let rs = p
                    .query(
                        &delegate,
                        "tab1",
                        &QueryOpts {
                            columns: vec!["data".into()],
                            where_clause: Some("_id <= ?".into()),
                            order_by: Some("_id DESC".into()),
                            limit: Some(10),
                        },
                        &[Value::Integer(50)],
                    )
                    .expect("query");
                std::hint::black_box(rs.rows.len());
            });
        });
    }
    g.finish();
}

/// Secondary indexes vs full scans: a point query on a 1000-row table,
/// and the same predicate through a flattened COW view where both UNION
/// ALL arms carry the index.
fn bench_index_vs_fullscan(c: &mut Criterion) {
    use maxoid_sqldb::Database;
    let mut g = c.benchmark_group("ablation/index_vs_fullscan");
    g.sample_size(20);
    let build = |indexed: bool| {
        let mut db = Database::new();
        db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, data TEXT);").expect("schema");
        for i in 0..1000 {
            db.execute("INSERT INTO t (data) VALUES (?)", &[Value::Text(format!("row{i:04}"))])
                .expect("seed");
        }
        if indexed {
            db.execute_batch("CREATE INDEX idx_t_data ON t (data);").expect("index");
        }
        db
    };
    for (name, indexed) in [("full_scan", false), ("indexed", true)] {
        let db = build(indexed);
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut i = 0i64;
            b.iter(|| {
                i = (i + 1) % 1000;
                let rs = db
                    .query("SELECT _id FROM t WHERE data = ?", &[Value::Text(format!("row{i:04}"))])
                    .expect("query");
                std::hint::black_box(rs.rows.len());
            });
        });
    }
    // COW view on top: the proxy mirrors the index onto the delta table,
    // so the flattened point query probes on both arms.
    for (name, indexed) in [("cow_full_scan", false), ("cow_indexed", true)] {
        let mut p = cow_table(FlattenPolicy::Sqlite386, 1000, 50);
        if indexed {
            // The fork predates the index here, so mirror it by hand the
            // way ensure_cow would for a post-index fork.
            p.execute_batch("CREATE INDEX idx_tab1_data ON tab1 (data);").expect("index");
            p.execute_batch("CREATE INDEX idx_tab1_data_delta_A ON tab1_delta_A (data);")
                .expect("index");
        }
        let delegate = DbView::Delegate { initiator: "A".into() };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut i = 0i64;
            b.iter(|| {
                i = (i + 1) % 1000;
                let rs = p
                    .query(
                        &delegate,
                        "tab1",
                        &QueryOpts { where_clause: Some("data = ?".into()), ..Default::default() },
                        &[Value::Text(format!("d{i}"))],
                    )
                    .expect("query");
                std::hint::black_box(rs.rows.len());
            });
        });
    }
    g.finish();
}

/// Statement cache vs re-parsing: the same point query and update run
/// with the hot-path caches at their defaults and with every cache
/// disabled (re-lex, re-parse, re-plan, re-generate rewrite SQL each
/// call), on a raw table and through a delegate's COW view.
fn bench_stmt_cache_vs_reparse(c: &mut Criterion) {
    use maxoid_sqldb::Database;
    let mut g = c.benchmark_group("ablation/stmt_cache_vs_reparse");
    g.sample_size(20);
    for (name, caches) in [("raw_cached", true), ("raw_reparse", false)] {
        let mut db = Database::new();
        db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, data TEXT);").expect("schema");
        for i in 0..1000 {
            db.execute("INSERT INTO t (data) VALUES (?)", &[Value::Text(format!("d{i}"))])
                .expect("seed");
        }
        db.set_statement_caches(caches);
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut i = 0i64;
            b.iter(|| {
                i = i % 1000 + 1;
                let rs = db
                    .query("SELECT data FROM t WHERE _id = ?", &[Value::Integer(i)])
                    .expect("query");
                std::hint::black_box(rs.rows.len());
            });
        });
    }
    for (name, caches) in [("cow_cached", true), ("cow_reparse", false)] {
        let mut p = cow_table(FlattenPolicy::Sqlite386, 1000, 50);
        p.set_rewrite_cache(caches);
        p.db().set_statement_caches(caches);
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut i = 0i64;
            b.iter(|| {
                i = i % 1000 + 1;
                std::hint::black_box(cow_point_query(&p, i));
            });
        });
    }
    g.finish();
}

/// Write-ahead logging cost: the same insert loop with the journal
/// detached vs group-commit batch sizes 1/16/128. Batch 1 flushes every
/// record (crash window of zero records); larger batches amortise the
/// flush toward the logging-off floor. The JSON-emitting variant plus
/// the recovery-time-vs-log-size experiment live in `src/bin/journal.rs`.
fn bench_journal_overhead(c: &mut Criterion) {
    use maxoid_journal::JournalHandle;
    use maxoid_sqldb::Database;
    let mut g = c.benchmark_group("ablation/journal_overhead_insert");
    g.sample_size(20);
    for (name, batch) in
        [("off", None), ("batch1", Some(1usize)), ("batch16", Some(16)), ("batch128", Some(128))]
    {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut db = Database::new();
            if let Some(n) = batch {
                db.set_journal(JournalHandle::with_batch(n).sink(), "db.bench");
            }
            db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, data TEXT);")
                .expect("schema");
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                db.execute("INSERT INTO t (data) VALUES (?)", &[Value::Text(format!("d{i}"))])
                    .expect("insert");
            });
        });
    }
    g.finish();
}

fn bench_snapshot_vs_unilateral(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/delegate_start");
    g.sample_size(10);
    // Seed a public external storage with many files.
    let seed = |sys: &mut MaxoidSystem, files: usize| {
        let pid = sys.launch("seeder").expect("launch");
        for i in 0..files {
            sys.kernel
                .write(
                    pid,
                    &vpath("/storage/sdcard").join(&format!("f{i}.dat")).unwrap(),
                    &vec![0u8; 4096],
                    Mode::PUBLIC,
                )
                .expect("seed");
        }
    };
    for files in [50usize, 500] {
        // Unilateral per-name COW (Maxoid): delegate start only builds
        // mounts; no copying.
        g.bench_function(BenchmarkId::new("unilateral_cow", files), |b| {
            b.iter(|| {
                let mut sys = MaxoidSystem::boot().expect("boot");
                sys.install("seeder", vec![], MaxoidManifest::new()).expect("install");
                sys.install("init", vec![], MaxoidManifest::new()).expect("install");
                sys.install("worker", vec![], MaxoidManifest::new()).expect("install");
                seed(&mut sys, files);
                std::hint::black_box(sys.launch_as_delegate("worker", "init").expect("delegate"));
            });
        });
        // Full snapshot (the rejected design): copy all of Pub(all) into
        // a per-delegate area before starting.
        g.bench_function(BenchmarkId::new("full_snapshot", files), |b| {
            b.iter(|| {
                let mut sys = MaxoidSystem::boot().expect("boot");
                sys.install("seeder", vec![], MaxoidManifest::new()).expect("install");
                sys.install("init", vec![], MaxoidManifest::new()).expect("install");
                sys.install("worker", vec![], MaxoidManifest::new()).expect("install");
                seed(&mut sys, files);
                // Eager snapshot of the public branch.
                sys.kernel.vfs().with_store_mut(|s| {
                    s.mkdir_all(&vpath("/backing/snapshots"), Uid::ROOT, Mode::PUBLIC)
                        .expect("mkdir");
                    s.copy_all(&vpath("/backing/ext/pub"), &vpath("/backing/snapshots/worker"))
                        .expect("snapshot");
                });
                std::hint::black_box(sys.launch_as_delegate("worker", "init").expect("delegate"));
            });
        });
    }
    g.finish();
}

fn bench_copyup_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/append_copyup_scaling");
    g.sample_size(15);
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        g.bench_function(BenchmarkId::from_parameter(size), |b| {
            let w = FsWorkload::new(FsMode::Delegate, 1, size);
            b.iter(|| {
                w.reset_seeded(0, size);
                w.append(0, 64);
            });
        });
    }
    g.finish();
}

/// File- vs block-granularity copy-up at the union layer: the paper's
/// §7.2.1 suggestion implemented. Block mode makes append O(appended
/// bytes) instead of O(file size).
fn bench_granularity(c: &mut Criterion) {
    use maxoid_vfs::{vpath, Branch, CopyUpGranularity, Store, Union};
    let mut g = c.benchmark_group("ablation/copyup_granularity_1MB_append");
    g.sample_size(15);
    for (name, granularity) in
        [("file_level_aufs", CopyUpGranularity::File), ("block_level", CopyUpGranularity::Block)]
    {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut store = Store::new();
            store.mkdir_all(&vpath("/up"), Uid::ROOT, Mode::PUBLIC).expect("mkdir");
            store.mkdir_all(&vpath("/low"), Uid::ROOT, Mode::PUBLIC).expect("mkdir");
            let payload = vec![0u8; 1024 * 1024];
            store.write(&vpath("/low/big.dat"), &payload, Uid::ROOT, Mode::PUBLIC).expect("seed");
            let union =
                Union::new(vec![Branch::rw(vpath("/up")), Branch::ro(vpath("/low"))], false)
                    .with_granularity(granularity);
            b.iter(|| {
                // Reset to the pre-copy-up state so every iteration pays
                // the first-touch cost.
                let _ = store.unlink(&vpath("/up/big.dat"));
                let _ = store.unlink(&vpath("/up/.ad.big.dat"));
                union.append(&mut store, "big.dat", b"tail").expect("append");
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_flattening,
    bench_index_vs_fullscan,
    bench_stmt_cache_vs_reparse,
    bench_journal_overhead,
    bench_snapshot_vs_unilateral,
    bench_copyup_scaling,
    bench_granularity
);
criterion_main!(benches);
