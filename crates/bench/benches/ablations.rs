//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//!
//! 1. **Subquery flattening** (paper §5.2 footnote 5): point queries on a
//!    COW view under every planner policy, showing the cliff the authors
//!    engineered around (Off materializes the whole view; 3.7.11 refuses
//!    to flatten under ORDER BY; 3.8.6 flattens with the proxy's
//!    column-append workaround).
//! 2. **Unilateral COW vs full snapshot** (paper §3.3): delegate start-up
//!    cost with lazy branch creation vs eagerly snapshotting public state.
//! 3. **File- vs block-granularity copy-up** (paper §7.2.1): append cost
//!    as a function of file size, showing the O(file size) behaviour that
//!    makes append the worst case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxoid::manifest::MaxoidManifest;
use maxoid::MaxoidSystem;
use maxoid_bench::{cow_point_query, cow_table, FsMode, FsWorkload};
use maxoid_cowproxy::{DbView, QueryOpts};
use maxoid_sqldb::{FlattenPolicy, Value};
use maxoid_vfs::{vpath, Mode, Uid};

fn bench_flattening(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/flattening_point_query");
    g.sample_size(20);
    let policies = [
        ("off", FlattenPolicy::Off),
        ("sqlite_3_7_11", FlattenPolicy::Sqlite3711),
        ("sqlite_3_8_6", FlattenPolicy::Sqlite386),
        ("always", FlattenPolicy::Always),
    ];
    for (name, policy) in policies {
        // 5000 public rows, 100 volatile rows: big enough that a
        // materialize-then-filter plan visibly loses.
        let p = cow_table(policy, 5000, 100);
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut id = 0i64;
            b.iter(|| {
                id = id % 5000 + 1;
                std::hint::black_box(cow_point_query(&p, id));
            });
        });
    }
    g.finish();

    // The ORDER BY variant that separates 3.7.11 from 3.8.6: named
    // columns + ORDER BY (the proxy's workaround appends the column).
    let mut g = c.benchmark_group("ablation/flattening_order_by");
    g.sample_size(20);
    for (name, policy) in policies {
        let p = cow_table(policy, 5000, 100);
        let delegate = DbView::Delegate { initiator: "A".into() };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let rs = p
                    .query(
                        &delegate,
                        "tab1",
                        &QueryOpts {
                            columns: vec!["data".into()],
                            where_clause: Some("_id <= ?".into()),
                            order_by: Some("_id DESC".into()),
                            limit: Some(10),
                        },
                        &[Value::Integer(50)],
                    )
                    .expect("query");
                std::hint::black_box(rs.rows.len());
            });
        });
    }
    g.finish();
}

fn bench_snapshot_vs_unilateral(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/delegate_start");
    g.sample_size(10);
    // Seed a public external storage with many files.
    let seed = |sys: &mut MaxoidSystem, files: usize| {
        let pid = sys.launch("seeder").expect("launch");
        for i in 0..files {
            sys.kernel
                .write(
                    pid,
                    &vpath("/storage/sdcard").join(&format!("f{i}.dat")).unwrap(),
                    &vec![0u8; 4096],
                    Mode::PUBLIC,
                )
                .expect("seed");
        }
    };
    for files in [50usize, 500] {
        // Unilateral per-name COW (Maxoid): delegate start only builds
        // mounts; no copying.
        g.bench_function(BenchmarkId::new("unilateral_cow", files), |b| {
            b.iter(|| {
                let mut sys = MaxoidSystem::boot().expect("boot");
                sys.install("seeder", vec![], MaxoidManifest::new()).expect("install");
                sys.install("init", vec![], MaxoidManifest::new()).expect("install");
                sys.install("worker", vec![], MaxoidManifest::new()).expect("install");
                seed(&mut sys, files);
                std::hint::black_box(
                    sys.launch_as_delegate("worker", "init").expect("delegate"),
                );
            });
        });
        // Full snapshot (the rejected design): copy all of Pub(all) into
        // a per-delegate area before starting.
        g.bench_function(BenchmarkId::new("full_snapshot", files), |b| {
            b.iter(|| {
                let mut sys = MaxoidSystem::boot().expect("boot");
                sys.install("seeder", vec![], MaxoidManifest::new()).expect("install");
                sys.install("init", vec![], MaxoidManifest::new()).expect("install");
                sys.install("worker", vec![], MaxoidManifest::new()).expect("install");
                seed(&mut sys, files);
                // Eager snapshot of the public branch.
                sys.kernel.vfs().with_store_mut(|s| {
                    s.mkdir_all(&vpath("/backing/snapshots"), Uid::ROOT, Mode::PUBLIC)
                        .expect("mkdir");
                    s.copy_all(&vpath("/backing/ext/pub"), &vpath("/backing/snapshots/worker"))
                        .expect("snapshot");
                });
                std::hint::black_box(
                    sys.launch_as_delegate("worker", "init").expect("delegate"),
                );
            });
        });
    }
    g.finish();
}

fn bench_copyup_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/append_copyup_scaling");
    g.sample_size(15);
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        g.bench_function(BenchmarkId::from_parameter(size), |b| {
            let w = FsWorkload::new(FsMode::Delegate, 1, size);
            b.iter(|| {
                w.reset_seeded(0, size);
                w.append(0, 64);
            });
        });
    }
    g.finish();
}

/// File- vs block-granularity copy-up at the union layer: the paper's
/// §7.2.1 suggestion implemented. Block mode makes append O(appended
/// bytes) instead of O(file size).
fn bench_granularity(c: &mut Criterion) {
    use maxoid_vfs::{vpath, Branch, CopyUpGranularity, Store, Union};
    let mut g = c.benchmark_group("ablation/copyup_granularity_1MB_append");
    g.sample_size(15);
    for (name, granularity) in [
        ("file_level_aufs", CopyUpGranularity::File),
        ("block_level", CopyUpGranularity::Block),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut store = Store::new();
            store
                .mkdir_all(&vpath("/up"), Uid::ROOT, Mode::PUBLIC)
                .expect("mkdir");
            store
                .mkdir_all(&vpath("/low"), Uid::ROOT, Mode::PUBLIC)
                .expect("mkdir");
            let payload = vec![0u8; 1024 * 1024];
            store
                .write(&vpath("/low/big.dat"), &payload, Uid::ROOT, Mode::PUBLIC)
                .expect("seed");
            let union = Union::new(
                vec![Branch::rw(vpath("/up")), Branch::ro(vpath("/low"))],
                false,
            )
            .with_granularity(granularity);
            b.iter(|| {
                // Reset to the pre-copy-up state so every iteration pays
                // the first-touch cost.
                let _ = store.unlink(&vpath("/up/big.dat"));
                let _ = store.unlink(&vpath("/up/.ad.big.dat"));
                union.append(&mut store, "big.dat", b"tail").expect("append");
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_flattening,
    bench_snapshot_vs_unilateral,
    bench_copyup_scaling,
    bench_granularity
);
criterion_main!(benches);
