//! Criterion version of the Table 3 microbenchmarks: CPU, internal file
//! system (read/write/append × 4KB/1MB) and User Dictionary operations,
//! each in android/initiator/delegate mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxoid_apps::compute;
use maxoid_bench::{DictMode, DictWorkload, FsMode, FsWorkload};

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/cpu");
    g.sample_size(20);
    for mode in FsMode::ALL {
        // The CPU benchmark is mode-independent by construction; measuring
        // it per mode documents that Maxoid adds nothing.
        g.bench_function(BenchmarkId::from_parameter(mode.label()), |b| {
            b.iter(|| std::hint::black_box(compute::matmul_checksum(48, 7)));
        });
    }
    g.finish();
}

fn bench_fs(c: &mut Criterion) {
    for (label, size) in [("4KB", 4 * 1024usize), ("1MB", 1024 * 1024)] {
        let mut g = c.benchmark_group(format!("table3/fs_{label}"));
        g.sample_size(20);
        for mode in FsMode::ALL {
            g.bench_function(BenchmarkId::new("read", mode.label()), |b| {
                let w = FsWorkload::new(mode, 8, size);
                let mut i = 0;
                b.iter(|| {
                    w.read(i % 8);
                    i += 1;
                });
            });
            g.bench_function(BenchmarkId::new("write", mode.label()), |b| {
                let mut w = FsWorkload::new(mode, 1, size);
                b.iter(|| w.write_new(size));
            });
            g.bench_function(BenchmarkId::new("append", mode.label()), |b| {
                let w = FsWorkload::new(mode, 1, size);
                b.iter(|| {
                    // Reset is part of the loop; it keeps the copy-up on
                    // the measured path (the paper's worst case).
                    w.reset_seeded(0, size);
                    w.append(0, size);
                });
            });
        }
        g.finish();
    }
}

fn bench_dict(c: &mut Criterion) {
    let rows = 1000;
    let mut g = c.benchmark_group("table3/user_dictionary");
    g.sample_size(20);
    for mode in DictMode::ALL {
        g.bench_function(BenchmarkId::new("insert", mode.label()), |b| {
            let mut w = DictWorkload::new(mode, rows);
            let mut i = 0;
            b.iter(|| {
                w.insert(i);
                i += 1;
            });
        });
        g.bench_function(BenchmarkId::new("update", mode.label()), |b| {
            let mut w = DictWorkload::new(mode, rows);
            b.iter(|| w.update());
        });
        g.bench_function(BenchmarkId::new("query_1_word", mode.label()), |b| {
            let mut w = DictWorkload::new(mode, rows);
            for _ in 0..50 {
                w.update();
            }
            let mut id = 0i64;
            b.iter(|| {
                id = id % rows as i64 + 1;
                std::hint::black_box(w.query_one(id));
            });
        });
        g.bench_function(BenchmarkId::new("query_1k_words", mode.label()), |b| {
            let mut w = DictWorkload::new(mode, rows);
            for _ in 0..50 {
                w.update();
            }
            b.iter(|| std::hint::black_box(w.query_all()));
        });
        g.bench_function(BenchmarkId::new("delete", mode.label()), |b| {
            let mut w = DictWorkload::new(mode, rows);
            let mut id = 0i64;
            b.iter(|| {
                id = id % rows as i64 + 1;
                w.delete(id);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cpu, bench_fs, bench_dict);
criterion_main!(benches);
