//! Criterion version of the Table 4 provider benchmarks: 100 x 1KB
//! downloads (public vs volatile) and 100-image Media scans (public vs
//! volatile), against a no-provider baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxoid::manifest::MaxoidManifest;
use maxoid::{DownloadRequest, MaxoidSystem, MediaKind};
use maxoid_vfs::{vpath, Mode};

const FILES: usize = 100;
const FILE_SIZE: usize = 1024;
// Criterion repeats each iteration many times; a smaller image than the
// paper's 780 KB keeps total bench time sane without changing the story.
const IMAGE_SIZE: usize = 64 * 1024;

fn bench_downloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4/download_100x1KB");
    g.sample_size(10);
    for variant in ["baseline", "public", "volatile"] {
        g.bench_function(BenchmarkId::from_parameter(variant), |b| {
            b.iter(|| {
                let mut sys = MaxoidSystem::boot().expect("boot");
                for i in 0..FILES {
                    sys.kernel.net.publish(
                        "files.example",
                        &format!("f{i}.bin"),
                        vec![0u8; FILE_SIZE],
                    );
                }
                sys.install("bench.app", vec![], MaxoidManifest::new()).expect("install");
                let pid = sys.launch("bench.app").expect("launch");
                sys.kernel
                    .mkdir_all(pid, &vpath("/storage/sdcard/Download"), Mode::PUBLIC)
                    .expect("mkdir");
                if variant == "baseline" {
                    for i in 0..FILES {
                        let data = sys
                            .kernel
                            .http_get(pid, &format!("files.example/f{i}.bin"))
                            .expect("fetch");
                        sys.kernel
                            .write(
                                pid,
                                &vpath("/storage/sdcard/Download")
                                    .join(&format!("f{i}.bin"))
                                    .unwrap(),
                                &data,
                                Mode::PUBLIC,
                            )
                            .expect("store");
                    }
                } else {
                    for i in 0..FILES {
                        sys.enqueue_download(
                            pid,
                            &DownloadRequest {
                                url: format!("files.example/f{i}.bin"),
                                dest: vpath("/storage/sdcard/Download")
                                    .join(&format!("f{i}.bin"))
                                    .unwrap(),
                                title: format!("f{i}.bin"),
                                headers: vec![],
                                volatile: variant == "volatile",
                            },
                        )
                        .expect("enqueue");
                    }
                    assert_eq!(sys.pump_downloads().expect("pump"), FILES);
                }
            });
        });
    }
    g.finish();
}

fn bench_media_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4/media_scan_100");
    g.sample_size(10);
    for variant in ["public", "volatile"] {
        g.bench_function(BenchmarkId::from_parameter(variant), |b| {
            b.iter(|| {
                let mut sys = MaxoidSystem::boot().expect("boot");
                sys.install("bench.cam", vec![], MaxoidManifest::new()).expect("install");
                sys.install("bench.init", vec![], MaxoidManifest::new()).expect("install");
                let pid = if variant == "volatile" {
                    sys.launch_as_delegate("bench.cam", "bench.init").expect("launch")
                } else {
                    sys.launch("bench.cam").expect("launch")
                };
                let image = vec![0u8; IMAGE_SIZE];
                sys.kernel
                    .mkdir_all(pid, &vpath("/storage/sdcard/DCIM"), Mode::PUBLIC)
                    .expect("mkdir");
                for i in 0..FILES {
                    let path = vpath("/storage/sdcard/DCIM").join(&format!("img{i}.jpg")).unwrap();
                    sys.kernel.write(pid, &path, &image, Mode::PUBLIC).expect("img");
                    sys.scan_media(pid, &path, MediaKind::Image, &format!("img{i}"), IMAGE_SIZE)
                        .expect("scan");
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_downloads, bench_media_scan);
criterion_main!(benches);
