//! Provider edge cases: multi-initiator isolation through the admin view,
//! delegate access to volatile downloads, and resolver-level Clear-Vol.

use maxoid_cowproxy::{ADMIN_INITIATOR_COL, ADMIN_STATE_COL};
use maxoid_kernel::{AppId, ExecContext, Kernel, Pid};
use maxoid_providers::provider::ContentProvider;
use maxoid_providers::{
    Caller, ContentResolver, ContentValues, DownloadRequest, DownloadsProvider, ProviderScope,
    QueryArgs, SimpleLocator, SystemFiles, Uri, UserDictionaryProvider,
};
use maxoid_sqldb::Value;
use maxoid_vfs::{vpath, MountNamespace};

fn words() -> Uri {
    Uri::parse("content://user_dictionary/words").unwrap()
}

#[test]
fn admin_view_tracks_provenance_across_initiators() {
    let mut p = UserDictionaryProvider::new();
    let seeder = Caller::normal("kb");
    p.insert(&seeder, &words(), &ContentValues::new().put("word", "public")).unwrap();
    // Two different initiators' delegates write.
    for (init, word) in [("email", "for-email"), ("dropbox", "for-dropbox")] {
        let del = Caller::delegate("viewer", init);
        p.insert(&del, &words(), &ContentValues::new().put("word", word)).unwrap();
    }
    let admin = p.proxy().admin_query("words").unwrap();
    let state_i = admin.column_index(ADMIN_STATE_COL).unwrap();
    let init_i = admin.column_index(ADMIN_INITIATOR_COL).unwrap();
    let word_i = admin.column_index("word").unwrap();
    let mut summary: Vec<(String, String, String)> = admin
        .rows
        .iter()
        .map(|r| (r[word_i].to_string(), r[state_i].to_string(), r[init_i].to_string()))
        .collect();
    summary.sort();
    assert_eq!(
        summary,
        vec![
            ("for-dropbox".into(), "volatile".into(), "dropbox".into()),
            ("for-email".into(), "volatile".into(), "email".into()),
            ("public".into(), "public".into(), "NULL".into()),
        ]
    );
    // Clearing one initiator leaves the other's volatile rows intact.
    p.clear_volatile("email").unwrap();
    let admin = p.proxy().admin_query("words").unwrap();
    assert_eq!(admin.rows.len(), 2);
}

#[test]
fn delegate_ids_from_different_initiators_may_collide() {
    // Delta keys are per initiator; both start at the same offset, and
    // that is fine because the namespaces never meet.
    let mut p = UserDictionaryProvider::new();
    let d1 = Caller::delegate("viewer", "A");
    let d2 = Caller::delegate("viewer", "B");
    let u1 = p.insert(&d1, &words(), &ContentValues::new().put("word", "x")).unwrap();
    let u2 = p.insert(&d2, &words(), &ContentValues::new().put("word", "y")).unwrap();
    assert_eq!(u1.id(), u2.id());
    let r1 = p.query(&d1, &words(), &QueryArgs::default()).unwrap();
    let r2 = p.query(&d2, &words(), &QueryArgs::default()).unwrap();
    let w = r1.column_index("word").unwrap();
    assert_eq!(r1.rows[0][w], Value::Text("x".into()));
    assert_eq!(r2.rows[0][w], Value::Text("y".into()));
}

#[test]
fn volatile_download_readable_by_same_initiators_delegates() {
    let mut kernel = Kernel::new();
    kernel.net.publish("files.example", "doc.pdf", b"DOC".to_vec());
    let svc = AppId::new("downloads.svc");
    kernel.install_app(&svc);
    let svc_pid: Pid = kernel.spawn(&svc, ExecContext::Normal, MountNamespace::new()).unwrap();
    let files = SystemFiles::new(kernel.vfs().clone(), SimpleLocator);
    let mut p = DownloadsProvider::new(files);

    let browser = Caller::normal("browser");
    p.enqueue(
        &browser,
        &DownloadRequest {
            url: "files.example/doc.pdf".into(),
            dest: vpath("/sdcard/Download/doc.pdf"),
            title: "doc.pdf".into(),
            headers: vec![],
            volatile: true,
        },
    )
    .unwrap();
    p.process_pending(&mut kernel, svc_pid).unwrap();

    // A delegate of the browser sees the record via its COW view...
    let viewer = Caller::delegate("pdf", "browser");
    let dl_uri = Uri::parse("content://downloads/my_downloads").unwrap();
    let rs = p.query(&viewer, &dl_uri, &QueryArgs::default()).unwrap();
    assert_eq!(rs.rows.len(), 1);
    // ...and the provider resolves the file from the browser's volatile
    // storage (the File-wrapper behaviour).
    assert_eq!(
        p.open_download(Some("browser"), &vpath("/sdcard/Download/doc.pdf")).unwrap(),
        b"DOC"
    );
    // An unrelated initiator's view holds neither record nor file.
    let other = Caller::normal("other");
    assert!(p.query(&other, &dl_uri, &QueryArgs::default()).unwrap().rows.is_empty());
    assert!(p.open_download(None, &vpath("/sdcard/Download/doc.pdf")).is_err());
}

#[test]
fn resolver_clear_volatile_spans_providers() {
    let mut r = ContentResolver::new();
    r.register(ProviderScope::System, Box::new(UserDictionaryProvider::new()));
    let del = Caller::delegate("viewer", "init");
    r.insert(&del, &words(), &ContentValues::new().put("word", "temp")).unwrap();
    assert_eq!(r.query(&del, &words(), &QueryArgs::default()).unwrap().rows.len(), 1);
    r.clear_volatile("init").unwrap();
    assert!(r.query(&del, &words(), &QueryArgs::default()).unwrap().rows.is_empty());
}

#[test]
fn projection_and_empty_projection_consistency() {
    let mut p = UserDictionaryProvider::new();
    let kb = Caller::normal("kb");
    p.insert(&kb, &words(), &ContentValues::new().put("word", "w").put("frequency", 9)).unwrap();
    // Narrow projection returns exactly the asked columns in order.
    let rs = p
        .query(
            &kb,
            &words(),
            &QueryArgs {
                projection: vec!["frequency".into(), "word".into()],
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(rs.columns, vec!["frequency", "word"]);
    assert_eq!(rs.rows[0], vec![Value::Integer(9), Value::Text("w".into())]);
    // Empty projection means all schema columns.
    let rs = p.query(&kb, &words(), &QueryArgs::default()).unwrap();
    assert_eq!(rs.columns.len(), 5);
}

#[test]
fn update_with_both_set_and_where_params() {
    let mut p = UserDictionaryProvider::new();
    let kb = Caller::normal("kb");
    for w in ["a", "b", "c"] {
        p.insert(&kb, &words(), &ContentValues::new().put("word", w).put("frequency", 1)).unwrap();
    }
    // The proxy renumbers `?` in WHERE after the SET params.
    let n = p
        .update(
            &kb,
            &words(),
            &ContentValues::new().put("frequency", 42),
            &QueryArgs {
                selection: Some("word = ?".into()),
                selection_args: vec![Value::Text("b".into())],
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(n, 1);
    let rs = p
        .query(
            &kb,
            &words(),
            &QueryArgs {
                projection: vec!["word".into()],
                selection: Some("frequency = ?".into()),
                selection_args: vec![Value::Integer(42)],
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("b".into())]]);
}
