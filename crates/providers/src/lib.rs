//! Android-style content providers for the Maxoid reproduction.
//!
//! Provides the provider framework — content [`Uri`]s (including Maxoid's
//! volatile `tmp` URIs), [`ContentValues`] with the paper's `isVolatile`
//! extension, the [`ContentResolver`] with per-URI permission grants — and
//! the three system providers the paper ports onto the COW proxy (§5.3):
//!
//! - [`UserDictionaryProvider`] — pure passive storage; trivial port.
//! - [`DownloadsProvider`] — background fetch worker, notifications,
//!   volatile (incognito) downloads, and delegate request refusal.
//! - [`MediaProvider`] — a hierarchy of user-defined views
//!   (`images`/`audio_meta`/`video`/`audio` over `files`) plus thumbnail
//!   generation that tracks record provenance.
//!
//! # Examples
//!
//! ```
//! use maxoid_providers::{Caller, ContentValues, QueryArgs, Uri, UserDictionaryProvider};
//! use maxoid_providers::provider::ContentProvider;
//!
//! let mut dict = UserDictionaryProvider::new();
//! let words = Uri::parse("content://user_dictionary/words").unwrap();
//!
//! // A delegate's insert is confined to its initiator's volatile state.
//! let delegate = Caller::delegate("com.viewer", "com.email");
//! dict.insert(&delegate, &words, &ContentValues::new().put("word", "secret")).unwrap();
//!
//! // Other apps do not see it.
//! let rs = dict.query(&Caller::normal("com.other"), &words, &QueryArgs::default()).unwrap();
//! assert!(rs.rows.is_empty());
//! ```

#![warn(missing_docs)]

pub mod downloads;
pub mod locator;
pub mod media;
pub mod provider;
pub mod resolver;
pub mod uri;
pub mod userdict;

pub use downloads::{DownloadNotification, DownloadRequest, DownloadsProvider};
pub use locator::{FileLocator, SimpleLocator, SystemFiles};
pub use media::{MediaKind, MediaProvider};
pub use provider::{Caller, ContentValues, ProviderError, ProviderResult, QueryArgs, ReadHandle};
pub use resolver::{ContentResolver, ProviderScope};
pub use uri::{Uri, UriError};
pub use userdict::UserDictionaryProvider;
