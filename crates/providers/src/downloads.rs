//! The Downloads provider.
//!
//! Downloads is not just passive storage (§5.3): it keeps a queue of
//! requested downloads, fetches them in the background, writes the files,
//! and posts notifications. The Maxoid port:
//!
//! - lets an initiator request **volatile downloads** (incognito mode) —
//!   the record lands in its delta table and the file in its tmp storage;
//! - uses the proxy's **administrative view** to see every pending record,
//!   public or volatile, and tracks which state each belongs to;
//! - refuses download requests from delegates with a network error (§6.2
//!   item 4), closing the "fetch this URL for me" leak;
//! - still allows delegates to add or update database entries for existing
//!   files, because that does not touch the network.

use crate::locator::{FileLocator, SystemFiles};
use crate::provider::{
    Caller, ContentProvider, ContentValues, ProviderError, ProviderResult, QueryArgs, ReadHandle,
};
use crate::uri::Uri;
use maxoid_cowproxy::{CowProxy, DbView, QueryOpts, ReadSlot, ADMIN_INITIATOR_COL, ADMIN_STATE_COL};
use maxoid_kernel::{Kernel, Pid};
use maxoid_sqldb::{ResultSet, Value};
use maxoid_vfs::VPath;
use std::sync::Arc;

/// Authority of the Downloads provider.
pub const AUTHORITY: &str = "downloads";

/// The provider's schema DDL.
const SCHEMA: &str = "CREATE TABLE downloads (_id INTEGER PRIMARY KEY, uri TEXT, \
     dest TEXT, title TEXT, status INTEGER, total_bytes INTEGER);
     CREATE INDEX idx_downloads_status ON downloads (status);
     CREATE INDEX idx_downloads_uri ON downloads (uri);
     CREATE TABLE request_headers (_id INTEGER PRIMARY KEY, \
     download_id INTEGER, header TEXT, value TEXT);";

/// Download status values (Android's `DownloadManager` constants).
pub mod status {
    /// Queued, not yet started.
    pub const PENDING: i64 = 1;
    /// Transfer in progress.
    pub const RUNNING: i64 = 2;
    /// Completed successfully.
    pub const SUCCESS: i64 = 8;
    /// Failed permanently.
    pub const FAILED: i64 = 16;
}

/// A notification posted when a download finishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DownloadNotification {
    /// Row id of the download.
    pub id: i64,
    /// `Some(initiator)` for volatile downloads, `None` for public ones.
    pub initiator: Option<String>,
    /// Title shown to the user.
    pub title: String,
    /// Final status.
    pub success: bool,
}

/// A download request (the `DownloadManager.Request` analogue).
#[derive(Debug, Clone)]
pub struct DownloadRequest {
    /// Source URL.
    pub url: String,
    /// Destination path on external storage.
    pub dest: VPath,
    /// Human-readable title.
    pub title: String,
    /// Extra request headers.
    pub headers: Vec<(String, String)>,
    /// Maxoid extension: store the download in the requesting initiator's
    /// volatile state (incognito downloads, §7.1).
    pub volatile: bool,
}

/// The Downloads system content provider plus its manager service.
pub struct DownloadsProvider<L: FileLocator> {
    proxy: CowProxy,
    files: SystemFiles<L>,
    notifications: Vec<DownloadNotification>,
}

impl<L: FileLocator> std::fmt::Debug for DownloadsProvider<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DownloadsProvider")
            .field("notifications", &self.notifications.len())
            .finish()
    }
}

impl<L: FileLocator> DownloadsProvider<L> {
    /// Creates the provider with its two tables (downloads and
    /// request_headers, as in Android).
    pub fn new(files: SystemFiles<L>) -> Self {
        let mut proxy = CowProxy::new();
        proxy.execute_batch(SCHEMA).expect("static schema is valid");
        DownloadsProvider { proxy, files, notifications: Vec::new() }
    }

    /// Creates the provider with a journal sink attached *before* the
    /// schema DDL runs, so replaying the log rebuilds the catalog
    /// (tables and indexes) as well as the rows.
    pub fn with_journal(files: SystemFiles<L>, sink: maxoid_journal::SinkRef) -> Self {
        let mut proxy = CowProxy::new();
        proxy.attach_journal(sink, &format!("db.{AUTHORITY}"));
        proxy.execute_batch(SCHEMA).expect("static schema is valid");
        DownloadsProvider { proxy, files, notifications: Vec::new() }
    }

    /// Rebuilds the provider around a database recovered from a journal.
    /// In-flight notifications are not durable state and start empty.
    pub fn from_recovered(db: maxoid_sqldb::Database, files: SystemFiles<L>) -> Self {
        let mut proxy = CowProxy::adopt(db);
        if !proxy.db().has_table("downloads") {
            proxy.execute_batch(SCHEMA).expect("static schema is valid");
        }
        DownloadsProvider { proxy, files, notifications: Vec::new() }
    }

    /// Rebuilds the provider from a recovered database *and* reattaches
    /// the journal (cold boot). The sink is attached before any missing
    /// schema is installed so a pre-DDL crash re-logs the catalog.
    pub fn from_recovered_journaled(
        db: maxoid_sqldb::Database,
        files: SystemFiles<L>,
        sink: maxoid_journal::SinkRef,
    ) -> Self {
        let mut proxy = CowProxy::adopt(db);
        proxy.attach_journal(sink, &format!("db.{AUTHORITY}"));
        if !proxy.db().has_table("downloads") {
            proxy.execute_batch(SCHEMA).expect("static schema is valid");
        }
        DownloadsProvider { proxy, files, notifications: Vec::new() }
    }

    /// Access to the proxy (tests, benches).
    pub fn proxy(&self) -> &CowProxy {
        &self.proxy
    }

    /// Mutable access to the proxy (attaching storage tiers).
    pub fn proxy_mut(&mut self) -> &mut CowProxy {
        &mut self.proxy
    }

    /// Rows held in `initiator`'s delta tables (per-tenant accounting).
    pub fn delta_row_count(&self, initiator: &str) -> usize {
        self.proxy.delta_row_count(initiator)
    }

    /// Drains posted notifications.
    pub fn take_notifications(&mut self) -> Vec<DownloadNotification> {
        std::mem::take(&mut self.notifications)
    }

    /// Enqueues a download (the `DownloadManager.enqueue` analogue).
    ///
    /// Returns the download id. Delegates are refused with a network
    /// error: a delegate could otherwise leak `Priv(A)` through the
    /// requested URL (§6.2 item 4).
    pub fn enqueue(&mut self, caller: &Caller, req: &DownloadRequest) -> ProviderResult<i64> {
        if caller.ctx.is_delegate() {
            return Err(ProviderError::NetworkUnreachable);
        }
        let view = if req.volatile {
            DbView::Volatile { initiator: caller.app.pkg().to_string() }
        } else {
            DbView::Primary
        };
        let id = self.proxy.insert(
            &view,
            "downloads",
            &[
                ("uri", req.url.as_str().into()),
                ("dest", req.dest.as_str().into()),
                ("title", req.title.as_str().into()),
                ("status", status::PENDING.into()),
                ("total_bytes", 0.into()),
            ],
        )?;
        for (h, v) in &req.headers {
            self.proxy.insert(
                &view,
                "request_headers",
                &[
                    ("download_id", id.into()),
                    ("header", h.as_str().into()),
                    ("value", v.as_str().into()),
                ],
            )?;
        }
        Ok(id)
    }

    /// Background worker step: fetches every pending download, public and
    /// volatile, using the administrative view to find them and to track
    /// which state each record belongs to. Returns the number processed.
    ///
    /// `service_pid` is the Downloads service's own process — a trusted
    /// system process with network access.
    pub fn process_pending(&mut self, kernel: &Kernel, service_pid: Pid) -> ProviderResult<usize> {
        let admin = self.proxy.admin_query("downloads")?;
        let idx = |name: &str| admin.column_index(name);
        let (Some(id_i), Some(uri_i), Some(dest_i), Some(title_i), Some(status_i)) =
            (idx("_id"), idx("uri"), idx("dest"), idx("title"), idx("status"))
        else {
            return Err(ProviderError::UnknownUri("downloads schema".into()));
        };
        let state_i = idx(ADMIN_STATE_COL).expect("admin view has state column");
        let init_i = idx(ADMIN_INITIATOR_COL).expect("admin view has initiator column");

        let pending: Vec<(i64, String, String, String, Option<String>)> = admin
            .rows
            .iter()
            .filter(|r| r[status_i] == Value::Integer(status::PENDING))
            .map(|r| {
                let initiator = match (&r[state_i], &r[init_i]) {
                    (Value::Text(s), Value::Text(init)) if s == "volatile" => Some(init.clone()),
                    _ => None,
                };
                (
                    r[id_i].as_integer().unwrap_or(0),
                    r[uri_i].to_string(),
                    r[dest_i].to_string(),
                    r[title_i].to_string(),
                    initiator,
                )
            })
            .collect();

        let mut processed = 0;
        for (id, url, dest, title, initiator) in pending {
            let view = match &initiator {
                Some(init) => DbView::Volatile { initiator: init.clone() },
                None => DbView::Primary,
            };
            // Mark running, then transfer.
            self.proxy.update(
                &view,
                "downloads",
                &[("status", status::RUNNING.into())],
                Some("_id = ?"),
                &[Value::Integer(id)],
            )?;
            let result = kernel.http_get(service_pid, &url);
            match result {
                Ok(data) => {
                    let dest_path = VPath::new(&dest).map_err(maxoid_kernel::KernelError::Fs)?;
                    self.files
                        .write(initiator.as_deref(), &dest_path, &data)
                        .map_err(maxoid_kernel::KernelError::Fs)?;
                    self.proxy.update(
                        &view,
                        "downloads",
                        &[
                            ("status", status::SUCCESS.into()),
                            ("total_bytes", (data.len() as i64).into()),
                        ],
                        Some("_id = ?"),
                        &[Value::Integer(id)],
                    )?;
                    self.notifications.push(DownloadNotification {
                        id,
                        initiator,
                        title,
                        success: true,
                    });
                }
                Err(_) => {
                    self.proxy.update(
                        &view,
                        "downloads",
                        &[("status", status::FAILED.into())],
                        Some("_id = ?"),
                        &[Value::Integer(id)],
                    )?;
                    self.notifications.push(DownloadNotification {
                        id,
                        initiator,
                        title,
                        success: false,
                    });
                }
            }
            processed += 1;
        }
        Ok(processed)
    }

    /// Reads a completed download's bytes, resolving volatile files to the
    /// requesting initiator's tmp storage (the `File`-wrapper behaviour).
    pub fn open_download(&self, initiator: Option<&str>, dest: &VPath) -> ProviderResult<Vec<u8>> {
        self.files
            .read(initiator, dest)
            .map_err(|e| ProviderError::Kernel(maxoid_kernel::KernelError::Fs(e)))
    }

    fn table_for(&self, uri: &Uri) -> ProviderResult<&'static str> {
        table_for(uri)
    }

    fn build_where(uri: &Uri, args: &QueryArgs) -> (Option<String>, Vec<Value>) {
        build_where(uri, args)
    }

    /// The lock-free read handle for this provider (see
    /// [`crate::ContentResolver::register_with_read`]). Routed queries
    /// are pure plans — the background download pump mutates through the
    /// provider lock and retracts the snapshot — so reads can run from
    /// the published snapshot without that lock.
    pub fn read_handle(&self) -> Arc<dyn ReadHandle> {
        Arc::new(DownloadsReadHandle { slot: self.proxy.read_slot() })
    }
}

fn table_for(uri: &Uri) -> ProviderResult<&'static str> {
    match uri.collection() {
        Some("my_downloads") | Some("all_downloads") | Some("downloads") => Ok("downloads"),
        Some("headers") | Some("request_headers") => Ok("request_headers"),
        _ => Err(ProviderError::UnknownUri(uri.to_string())),
    }
}

fn build_where(uri: &Uri, args: &QueryArgs) -> (Option<String>, Vec<Value>) {
    let mut clauses = Vec::new();
    let mut params = Vec::new();
    if let Some(id) = uri.id() {
        clauses.push("_id = ?".to_string());
        params.push(Value::Integer(id));
    }
    if let Some(sel) = &args.selection {
        clauses.push(format!("({sel})"));
        params.extend(args.selection_args.iter().cloned());
    }
    if clauses.is_empty() {
        (None, params)
    } else {
        (Some(clauses.join(" AND ")), params)
    }
}

/// Snapshot read path mirroring [`DownloadsProvider::query`]'s routing.
#[derive(Debug)]
struct DownloadsReadHandle {
    slot: ReadSlot,
}

impl ReadHandle for DownloadsReadHandle {
    fn try_query(
        &self,
        caller: &Caller,
        uri: &Uri,
        args: &QueryArgs,
    ) -> Option<ProviderResult<ResultSet>> {
        let table = match table_for(uri) {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        let view = match caller.db_view(uri) {
            Ok(v) => v,
            Err(e) => return Some(Err(e)),
        };
        let (where_clause, params) = build_where(uri, args);
        let opts = QueryOpts {
            columns: args.projection.clone(),
            where_clause,
            order_by: args.sort_order.clone(),
            limit: None,
        };
        let rs = self.slot.try_query(&view, table, &opts, &params)?;
        Some(rs.map_err(ProviderError::from))
    }
}

impl<L: FileLocator> ContentProvider for DownloadsProvider<L> {
    fn authority(&self) -> &str {
        AUTHORITY
    }

    fn insert(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
    ) -> ProviderResult<Uri> {
        let table = self.table_for(uri)?;
        let mut view = caller.db_view(uri)?;
        if values.is_volatile && view == DbView::Primary {
            view = DbView::Volatile { initiator: caller.app.pkg().to_string() };
        }
        // Delegates may create records for existing files — no network is
        // involved — but any URL they set will never be fetched for them.
        let vals = values.as_proxy_values();
        let id = self.proxy.insert(&view, table, &vals)?;
        let base = match &view {
            DbView::Volatile { .. } => uri.without_tmp().as_volatile(),
            _ => uri.without_tmp(),
        };
        Ok(base.with_id(id))
    }

    fn update(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
        args: &QueryArgs,
    ) -> ProviderResult<usize> {
        let table = self.table_for(uri)?;
        let view = caller.db_view(uri)?;
        let (where_clause, params) = Self::build_where(uri, args);
        let sets = values.as_proxy_values();
        Ok(self.proxy.update(&view, table, &sets, where_clause.as_deref(), &params)?)
    }

    fn query(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<ResultSet> {
        let table = self.table_for(uri)?;
        let view = caller.db_view(uri)?;
        let (where_clause, params) = Self::build_where(uri, args);
        let opts = QueryOpts {
            columns: args.projection.clone(),
            where_clause,
            order_by: args.sort_order.clone(),
            limit: None,
        };
        Ok(self.proxy.query(&view, table, &opts, &params)?)
    }

    fn delete(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<usize> {
        let table = self.table_for(uri)?;
        let view = caller.db_view(uri)?;
        let (where_clause, params) = Self::build_where(uri, args);
        Ok(self.proxy.delete(&view, table, where_clause.as_deref(), &params)?)
    }

    fn clear_volatile(&mut self, initiator: &str) -> ProviderResult<()> {
        self.proxy.clear_volatile(initiator)?;
        Ok(())
    }

    fn commit_volatile_row(
        &mut self,
        initiator: &str,
        table: &str,
        id: i64,
    ) -> ProviderResult<bool> {
        Ok(self.proxy.commit_volatile_row(initiator, table, id)?)
    }

    fn publish_read(&mut self) {
        self.proxy.publish_read();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locator::SimpleLocator;
    use maxoid_kernel::{AppId, ExecContext};
    use maxoid_vfs::{vpath, MountNamespace};

    fn setup() -> (Kernel, Pid, DownloadsProvider<SimpleLocator>) {
        let mut kernel = Kernel::new();
        kernel.net.publish("files.example", "doc.pdf", b"PDFDATA".to_vec());
        let svc = AppId::new("android.providers.downloads");
        kernel.install_app(&svc);
        let pid = kernel.spawn(&svc, ExecContext::Normal, MountNamespace::new()).unwrap();
        let files = SystemFiles::new(kernel.vfs().clone(), SimpleLocator);
        let provider = DownloadsProvider::new(files);
        (kernel, pid, provider)
    }

    fn request(volatile: bool) -> DownloadRequest {
        DownloadRequest {
            url: "files.example/doc.pdf".into(),
            dest: vpath("/sdcard/Download/doc.pdf"),
            title: "doc.pdf".into(),
            headers: vec![("User-Agent".into(), "browser".into())],
            volatile,
        }
    }

    #[test]
    fn public_download_lifecycle() {
        let (mut kernel, pid, mut p) = setup();
        let browser = Caller::normal("com.browser");
        let id = p.enqueue(&browser, &request(false)).unwrap();
        assert_eq!(p.process_pending(&mut kernel, pid).unwrap(), 1);
        let notes = p.take_notifications();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].success);
        assert_eq!(notes[0].initiator, None);
        assert_eq!(notes[0].id, id);
        // File is in public storage; record is public.
        assert_eq!(p.open_download(None, &vpath("/sdcard/Download/doc.pdf")).unwrap(), b"PDFDATA");
        let uri = Uri::parse("content://downloads/my_downloads").unwrap();
        let rs = p.query(&Caller::normal("other.app"), &uri, &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        let st = rs.column_index("status").unwrap();
        assert_eq!(rs.rows[0][st], Value::Integer(status::SUCCESS));
    }

    #[test]
    fn volatile_download_is_invisible_publicly() {
        let (mut kernel, pid, mut p) = setup();
        let browser = Caller::normal("com.browser");
        p.enqueue(&browser, &request(true)).unwrap();
        p.process_pending(&mut kernel, pid).unwrap();
        let notes = p.take_notifications();
        assert_eq!(notes[0].initiator.as_deref(), Some("com.browser"));
        // Public record list is empty; other apps see nothing.
        let uri = Uri::parse("content://downloads/my_downloads").unwrap();
        let rs = p.query(&Caller::normal("other.app"), &uri, &QueryArgs::default()).unwrap();
        assert!(rs.rows.is_empty());
        // The initiator reads its volatile record through the tmp URI.
        let rs = p.query(&browser, &uri.as_volatile(), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        // The file is in volatile storage only.
        assert!(p.open_download(None, &vpath("/sdcard/Download/doc.pdf")).is_err());
        assert_eq!(
            p.open_download(Some("com.browser"), &vpath("/sdcard/Download/doc.pdf")).unwrap(),
            b"PDFDATA"
        );
        // Browser's delegates see the record (it is part of Pub(x^A)).
        let viewer = Caller::delegate("com.pdf", "com.browser");
        let rs = p.query(&viewer, &uri, &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn delegate_enqueue_is_network_error() {
        let (_, _, mut p) = setup();
        let del = Caller::delegate("com.viewer", "com.email");
        assert_eq!(
            p.enqueue(&del, &request(false)).unwrap_err(),
            ProviderError::NetworkUnreachable
        );
    }

    #[test]
    fn delegate_may_touch_records_without_network() {
        let (_, _, mut p) = setup();
        let del = Caller::delegate("com.viewer", "com.email");
        let uri = Uri::parse("content://downloads/my_downloads").unwrap();
        // Adding an entry for an existing file does not access network.
        let item = p
            .insert(
                &del,
                &uri,
                &ContentValues::new()
                    .put("dest", "/sdcard/existing.bin")
                    .put("title", "existing")
                    .put("status", status::SUCCESS),
            )
            .unwrap();
        assert!(item.id().is_some());
        // The record is confined to email's volatile state.
        let rs = p.query(&Caller::normal("x"), &uri, &QueryArgs::default()).unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn failed_fetch_marks_failed() {
        let (mut kernel, pid, mut p) = setup();
        let browser = Caller::normal("com.browser");
        let mut req = request(false);
        req.url = "files.example/missing".into();
        p.enqueue(&browser, &req).unwrap();
        p.process_pending(&mut kernel, pid).unwrap();
        let notes = p.take_notifications();
        assert!(!notes[0].success);
        let uri = Uri::parse("content://downloads/my_downloads").unwrap();
        let rs = p.query(&browser, &uri, &QueryArgs::default()).unwrap();
        let st = rs.column_index("status").unwrap();
        assert_eq!(rs.rows[0][st], Value::Integer(status::FAILED));
    }

    #[test]
    fn headers_are_recorded_alongside() {
        let (_, _, mut p) = setup();
        let browser = Caller::normal("com.browser");
        let id = p.enqueue(&browser, &request(false)).unwrap();
        let uri = Uri::parse("content://downloads/headers").unwrap();
        let rs = p
            .query(
                &browser,
                &uri,
                &QueryArgs {
                    selection: Some("download_id = ?".into()),
                    selection_args: vec![Value::Integer(id)],
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn clear_volatile_discards_download_records() {
        let (mut kernel, pid, mut p) = setup();
        let browser = Caller::normal("com.browser");
        p.enqueue(&browser, &request(true)).unwrap();
        p.process_pending(&mut kernel, pid).unwrap();
        p.clear_volatile("com.browser").unwrap();
        let uri = Uri::parse("content://downloads/my_downloads").unwrap();
        let rs = p.query(&browser, &uri.as_volatile(), &QueryArgs::default());
        // The volatile table is gone; querying tmp now fails cleanly.
        assert!(rs.is_err() || rs.unwrap().rows.is_empty());
    }
}
