//! Locating provider files across public and volatile storage.
//!
//! Downloads and Media store *client-visible* path names (e.g.
//! `/storage/sdcard/Download/file.pdf`) in their databases, but the actual
//! bytes of a volatile record live in the initiator's tmp branch. The
//! paper wraps Java's `File` class to automate locating such files;
//! [`FileLocator`] is that wrapper: trusted system services resolve a
//! client path plus provenance to the real backing-store location.

use maxoid_vfs::{Mode, Uid, VPath, Vfs, VfsResult};

/// Resolves client-visible paths to backing-store host paths.
pub trait FileLocator: std::fmt::Debug + Send + Sync {
    /// Host path of the public copy of an external-storage path.
    fn public_host(&self, path: &VPath) -> VfsResult<VPath>;

    /// Host path of the volatile copy of `path` for `initiator`.
    fn volatile_host(&self, initiator: &str, path: &VPath) -> VfsResult<VPath>;
}

/// Trusted file access for system services (Downloads, Media): reads and
/// writes go straight to the backing store at locator-resolved paths,
/// bypassing app namespaces — these services run as system UIDs with all
/// volatile tmp directories visible (§5.3).
#[derive(Debug, Clone)]
pub struct SystemFiles<L: FileLocator> {
    vfs: Vfs,
    locator: L,
}

impl<L: FileLocator> SystemFiles<L> {
    /// Creates system file access over a VFS and a locator.
    pub fn new(vfs: Vfs, locator: L) -> Self {
        SystemFiles { vfs, locator }
    }

    /// Returns the locator.
    pub fn locator(&self) -> &L {
        &self.locator
    }

    fn host(&self, initiator: Option<&str>, path: &VPath) -> VfsResult<VPath> {
        match initiator {
            Some(init) => self.locator.volatile_host(init, path),
            None => self.locator.public_host(path),
        }
    }

    /// Writes a file into public (initiator `None`) or volatile storage.
    pub fn write(&self, initiator: Option<&str>, path: &VPath, data: &[u8]) -> VfsResult<()> {
        let host = self.host(initiator, path)?;
        self.vfs.with_store_mut(|s| {
            if let Some(parent) = host.parent() {
                s.mkdir_all(&parent, Uid::SYSTEM, Mode::PUBLIC)?;
            }
            s.write(&host, data, Uid::SYSTEM, Mode::PUBLIC)?;
            Ok(())
        })
    }

    /// Reads a file, checking the volatile copy first when `initiator` is
    /// set (the record's provenance decides, per the Downloads port).
    pub fn read(&self, initiator: Option<&str>, path: &VPath) -> VfsResult<Vec<u8>> {
        let host = self.host(initiator, path)?;
        self.vfs.with_store(|s| s.read(&host))
    }

    /// Deletes a file from the selected storage.
    pub fn delete(&self, initiator: Option<&str>, path: &VPath) -> VfsResult<()> {
        let host = self.host(initiator, path)?;
        self.vfs.with_store_mut(|s| s.unlink(&host))
    }

    /// Returns true when the file exists in the selected storage.
    pub fn exists(&self, initiator: Option<&str>, path: &VPath) -> bool {
        self.host(initiator, path).map(|h| self.vfs.with_store(|s| s.exists(&h))).unwrap_or(false)
    }
}

/// A minimal locator for standalone provider tests: public files under
/// `/back/pub`, volatile files under `/back/vol/<initiator>`.
#[derive(Debug, Clone, Default)]
pub struct SimpleLocator;

impl FileLocator for SimpleLocator {
    fn public_host(&self, path: &VPath) -> VfsResult<VPath> {
        path.rebase(&VPath::root(), &maxoid_vfs::vpath("/back/pub"))
            .ok_or(maxoid_vfs::VfsError::InvalidArgument)
    }

    fn volatile_host(&self, initiator: &str, path: &VPath) -> VfsResult<VPath> {
        let base = maxoid_vfs::vpath("/back/vol").join(initiator)?;
        path.rebase(&VPath::root(), &base).ok_or(maxoid_vfs::VfsError::InvalidArgument)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_vfs::vpath;

    #[test]
    fn system_files_route_by_provenance() {
        let vfs = Vfs::new();
        let sf = SystemFiles::new(vfs.clone(), SimpleLocator);
        let p = vpath("/sdcard/Download/f.pdf");
        sf.write(None, &p, b"public").unwrap();
        sf.write(Some("browser"), &p, b"volatile").unwrap();
        assert_eq!(sf.read(None, &p).unwrap(), b"public");
        assert_eq!(sf.read(Some("browser"), &p).unwrap(), b"volatile");
        // The two copies live in different host locations.
        vfs.with_store(|s| {
            assert_eq!(s.read(&vpath("/back/pub/sdcard/Download/f.pdf")).unwrap(), b"public");
            assert_eq!(
                s.read(&vpath("/back/vol/browser/sdcard/Download/f.pdf")).unwrap(),
                b"volatile"
            );
        });
        sf.delete(Some("browser"), &p).unwrap();
        assert!(!sf.exists(Some("browser"), &p));
        assert!(sf.exists(None, &p));
    }
}
