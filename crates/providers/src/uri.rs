//! Content URIs.
//!
//! Android content providers map `content://authority/path` URIs to data.
//! Maxoid adds **volatile URIs** with a `tmp` component (§5.1), through
//! which an initiator addresses the volatile records its delegates
//! produced, e.g. `content://user_dictionary/tmp/words/5`.

use std::fmt;

/// A parsed content URI.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Uri {
    /// The provider authority, e.g. `user_dictionary`.
    pub authority: String,
    /// Path segments after the authority.
    pub segments: Vec<String>,
}

/// Errors from URI parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UriError(pub String);

impl fmt::Display for UriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed content URI: {}", self.0)
    }
}

impl std::error::Error for UriError {}

impl Uri {
    /// Parses a `content://authority/segments...` URI.
    pub fn parse(s: &str) -> Result<Uri, UriError> {
        let rest = s.strip_prefix("content://").ok_or_else(|| UriError(s.to_string()))?;
        let mut parts = rest.split('/');
        let authority = parts.next().unwrap_or("").to_string();
        if authority.is_empty() {
            return Err(UriError(s.to_string()));
        }
        let segments: Vec<String> =
            parts.filter(|p| !p.is_empty()).map(|p| p.to_string()).collect();
        Ok(Uri { authority, segments })
    }

    /// Builds a URI from an authority and segments.
    pub fn build(authority: &str, segments: &[&str]) -> Uri {
        Uri {
            authority: authority.to_string(),
            segments: segments.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Returns the trailing numeric id, if the URI addresses a single row.
    pub fn id(&self) -> Option<i64> {
        self.segments.last().and_then(|s| s.parse().ok())
    }

    /// Appends an id segment.
    pub fn with_id(&self, id: i64) -> Uri {
        let mut u = self.clone();
        u.segments.push(id.to_string());
        u
    }

    /// True when the URI addresses volatile state (`tmp` component, §5.1).
    pub fn is_volatile(&self) -> bool {
        self.segments.first().map(|s| s == "tmp").unwrap_or(false)
    }

    /// Returns the URI with a leading `tmp` segment added.
    pub fn as_volatile(&self) -> Uri {
        if self.is_volatile() {
            return self.clone();
        }
        let mut segments = vec!["tmp".to_string()];
        segments.extend(self.segments.iter().cloned());
        Uri { authority: self.authority.clone(), segments }
    }

    /// Returns the URI with any leading `tmp` segment removed.
    pub fn without_tmp(&self) -> Uri {
        if !self.is_volatile() {
            return self.clone();
        }
        Uri { authority: self.authority.clone(), segments: self.segments[1..].to_vec() }
    }

    /// The first non-`tmp` segment: the table/collection addressed.
    pub fn collection(&self) -> Option<&str> {
        let segs = if self.is_volatile() { &self.segments[1..] } else { &self.segments[..] };
        segs.first().map(|s| s.as_str())
    }

    /// True when the URI addresses a single row (trailing numeric id).
    pub fn is_item(&self) -> bool {
        self.id().is_some()
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "content://{}", self.authority)?;
        for s in &self.segments {
            write!(f, "/{s}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Uri {
    type Err = UriError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Uri::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let u = Uri::parse("content://user_dictionary/words/5").unwrap();
        assert_eq!(u.authority, "user_dictionary");
        assert_eq!(u.segments, vec!["words", "5"]);
        assert_eq!(u.to_string(), "content://user_dictionary/words/5");
        assert_eq!(u.id(), Some(5));
        assert!(u.is_item());
        assert!(!u.is_volatile());
    }

    #[test]
    fn volatile_uris() {
        let u = Uri::parse("content://user_dictionary/tmp/words/7").unwrap();
        assert!(u.is_volatile());
        assert_eq!(u.collection(), Some("words"));
        assert_eq!(u.id(), Some(7));
        assert_eq!(u.without_tmp().to_string(), "content://user_dictionary/words/7");
        let v = Uri::parse("content://user_dictionary/words").unwrap().as_volatile();
        assert_eq!(v.to_string(), "content://user_dictionary/tmp/words");
        // as_volatile is idempotent.
        assert_eq!(v.as_volatile(), v);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Uri::parse("http://x/y").is_err());
        assert!(Uri::parse("content://").is_err());
        assert!(Uri::parse("words/5").is_err());
    }

    #[test]
    fn collection_and_non_numeric_tail() {
        let u = Uri::parse("content://downloads/all_downloads").unwrap();
        assert_eq!(u.collection(), Some("all_downloads"));
        assert_eq!(u.id(), None);
        assert!(!u.is_item());
    }

    #[test]
    fn build_and_with_id() {
        let u = Uri::build("media", &["images"]).with_id(3);
        assert_eq!(u.to_string(), "content://media/images/3");
    }
}
