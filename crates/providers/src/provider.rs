//! The content-provider interface and caller identity.

use crate::uri::Uri;
use maxoid_cowproxy::DbView;
use maxoid_kernel::{AppId, ExecContext};
use maxoid_sqldb::{ResultSet, Value};
use std::fmt;

/// Identity of the process calling into a provider.
///
/// In the paper the proxy "uses a Maxoid API to get the information about
/// the calling process, which tells whether the caller is a delegate and
/// what its initiator is" (§5.2); this struct is that information,
/// captured by the resolver from the kernel's task struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Caller {
    /// The calling app.
    pub app: AppId,
    /// Its Maxoid execution context.
    pub ctx: ExecContext,
}

impl Caller {
    /// A normal (initiator) caller.
    pub fn normal(app: &str) -> Caller {
        Caller { app: AppId::new(app), ctx: ExecContext::Normal }
    }

    /// A delegate caller (`app` running on behalf of `initiator`).
    pub fn delegate(app: &str, initiator: &str) -> Caller {
        Caller { app: AppId::new(app), ctx: ExecContext::OnBehalfOf(AppId::new(initiator)) }
    }

    /// Maps this caller and the addressed URI to the proxy view that must
    /// serve the operation:
    ///
    /// - delegates always get their initiator's COW view;
    /// - initiators get primary tables for normal URIs, and their own
    ///   volatile state for `tmp` URIs;
    /// - delegates may not address `tmp` URIs (volatile state is the
    ///   initiator's interface).
    pub fn db_view(&self, uri: &Uri) -> Result<DbView, ProviderError> {
        match (&self.ctx, uri.is_volatile()) {
            (ExecContext::OnBehalfOf(init), false) => {
                Ok(DbView::Delegate { initiator: init.pkg().to_string() })
            }
            (ExecContext::OnBehalfOf(_), true) => {
                Err(ProviderError::Denied("delegates cannot address volatile (tmp) URIs".into()))
            }
            (ExecContext::Normal, true) => {
                Ok(DbView::Volatile { initiator: self.app.pkg().to_string() })
            }
            (ExecContext::Normal, false) => Ok(DbView::Primary),
        }
    }
}

/// Values for an insert or update, with Maxoid's `isVolatile` extension.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContentValues {
    pairs: Vec<(String, Value)>,
    /// Maxoid's new initiator API (§6.1 item 4): when set on an insert by
    /// an initiator, the record is created in its volatile state instead
    /// of public state. This is the one-line hook behind Browser's
    /// incognito downloads.
    pub is_volatile: bool,
}

impl ContentValues {
    /// Creates an empty value set.
    pub fn new() -> Self {
        ContentValues::default()
    }

    /// Adds a column value (builder style).
    pub fn put(mut self, column: &str, value: impl Into<Value>) -> Self {
        self.pairs.push((column.to_string(), value.into()));
        self
    }

    /// Sets the `isVolatile` flag (builder style).
    pub fn volatile(mut self) -> Self {
        self.is_volatile = true;
        self
    }

    /// Returns the column/value pairs.
    pub fn pairs(&self) -> &[(String, Value)] {
        &self.pairs
    }

    /// Returns the value for a column, if present.
    pub fn get(&self, column: &str) -> Option<&Value> {
        self.pairs.iter().find(|(c, _)| c.eq_ignore_ascii_case(column)).map(|(_, v)| v)
    }

    /// Returns pairs as the `(&str, Value)` slices the proxy consumes.
    pub fn as_proxy_values(&self) -> Vec<(&str, Value)> {
        self.pairs.iter().map(|(c, v)| (c.as_str(), v.clone())).collect()
    }
}

/// Query arguments (projection / selection / sort), SQLite-shaped.
#[derive(Debug, Clone, Default)]
pub struct QueryArgs {
    /// Columns to return; empty = all.
    pub projection: Vec<String>,
    /// WHERE clause with `?` placeholders.
    pub selection: Option<String>,
    /// Values for the placeholders.
    pub selection_args: Vec<Value>,
    /// ORDER BY clause.
    pub sort_order: Option<String>,
}

/// Errors surfaced by content providers.
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderError {
    /// The URI does not name a known collection.
    UnknownUri(String),
    /// The caller is not allowed to perform the operation.
    Denied(String),
    /// The network was unreachable (delegate download requests, §6.2).
    NetworkUnreachable,
    /// An underlying SQL error.
    Sql(maxoid_sqldb::SqlError),
    /// An underlying kernel/file error.
    Kernel(maxoid_kernel::KernelError),
}

impl fmt::Display for ProviderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProviderError::UnknownUri(u) => write!(f, "unknown URI: {u}"),
            ProviderError::Denied(m) => write!(f, "denied: {m}"),
            ProviderError::NetworkUnreachable => f.write_str("ENETUNREACH"),
            ProviderError::Sql(e) => write!(f, "sql: {e}"),
            ProviderError::Kernel(e) => write!(f, "kernel: {e}"),
        }
    }
}

impl std::error::Error for ProviderError {}

impl From<maxoid_sqldb::SqlError> for ProviderError {
    fn from(e: maxoid_sqldb::SqlError) -> Self {
        ProviderError::Sql(e)
    }
}

impl From<maxoid_kernel::KernelError> for ProviderError {
    fn from(e: maxoid_kernel::KernelError) -> Self {
        ProviderError::Kernel(e)
    }
}

/// Result alias for provider operations.
pub type ProviderResult<T> = Result<T, ProviderError>;

/// The four content-provider operations (plus authority), mirroring
/// Android's `ContentProvider` class.
pub trait ContentProvider {
    /// The authority this provider serves.
    fn authority(&self) -> &str;

    /// Inserts a row; returns the URI of the new row.
    fn insert(&mut self, caller: &Caller, uri: &Uri, values: &ContentValues)
        -> ProviderResult<Uri>;

    /// Updates matching rows; returns the affected count.
    fn update(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
        args: &QueryArgs,
    ) -> ProviderResult<usize>;

    /// Queries rows.
    fn query(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<ResultSet>;

    /// Deletes matching rows; returns the affected count.
    fn delete(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<usize>;

    /// Maxoid administrative hook: discards the volatile state this
    /// provider holds for `initiator` (Clear-Vol, §6.3).
    fn clear_volatile(&mut self, initiator: &str) -> ProviderResult<()>;

    /// Maxoid administrative hook: selectively commits one volatile row
    /// of `initiator` (identified by delta-table row id) into the
    /// provider's public state (§3.3). Returns true if a row was
    /// committed. Providers without proxy-managed row state ignore it.
    fn commit_volatile_row(
        &mut self,
        _initiator: &str,
        _table: &str,
        _id: i64,
    ) -> ProviderResult<bool> {
        Ok(false)
    }

    /// MVCC hook: publishes a fresh committed snapshot for lock-free
    /// readers (see [`ReadHandle`]). The resolver calls this after every
    /// locked provider call, i.e. at a quiescent point while it still
    /// holds the authority lock. Providers without a snapshot read path
    /// ignore it.
    fn publish_read(&mut self) {}
}

/// The lock-free read path of a provider (MVCC snapshot reads).
///
/// A read handle is registered alongside its provider
/// ([`crate::ContentResolver::register_with_read`]) and holds a
/// [`maxoid_cowproxy::ReadSlot`] — never the provider itself — so
/// [`ReadHandle::try_query`] runs without the per-authority write lock.
/// Returning `None` sends the resolver down the locked path: either no
/// snapshot is published (a mutation just retracted it, a transaction is
/// open, tables are paged to the block tier) or this particular read
/// needs write-side work first (e.g. Media building a COW view on
/// demand). Access control stays in the resolver; handles only plan and
/// execute the query.
pub trait ReadHandle: Send + Sync {
    /// Attempts to serve a routed query from the published snapshot.
    fn try_query(
        &self,
        caller: &Caller,
        uri: &Uri,
        args: &QueryArgs,
    ) -> Option<ProviderResult<ResultSet>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_selection_rules() {
        let words = Uri::parse("content://user_dictionary/words").unwrap();
        let tmp = Uri::parse("content://user_dictionary/tmp/words").unwrap();

        let init = Caller::normal("com.email");
        assert_eq!(init.db_view(&words).unwrap(), DbView::Primary);
        assert_eq!(init.db_view(&tmp).unwrap(), DbView::Volatile { initiator: "com.email".into() });

        let del = Caller::delegate("com.viewer", "com.email");
        assert_eq!(
            del.db_view(&words).unwrap(),
            DbView::Delegate { initiator: "com.email".into() }
        );
        assert!(matches!(del.db_view(&tmp), Err(ProviderError::Denied(_))));
    }

    #[test]
    fn content_values_builder() {
        let cv = ContentValues::new().put("word", "hi").put("frequency", 3).volatile();
        assert_eq!(cv.get("word"), Some(&Value::Text("hi".into())));
        assert_eq!(cv.get("FREQUENCY"), Some(&Value::Integer(3)));
        assert!(cv.is_volatile);
        assert_eq!(cv.as_proxy_values().len(), 2);
        assert_eq!(cv.get("missing"), None);
    }
}
