//! The Media provider.
//!
//! Media "defines multiple SQL tables and views ... it stores data for
//! different types of media files in a single base table called `files`;
//! `images`, `audio_meta` and `video` are views defined as selections over
//! `files`. `audio` is a view defined on ... `audio_meta`" (§5.3). The COW
//! proxy manages the hierarchy of per-initiator COW views. Media also runs
//! extra services — thumbnail generation — and, like Downloads, tracks
//! which state a record/request belongs to so a delegate's thumbnails land
//! in the initiator's volatile storage.

use crate::locator::{FileLocator, SystemFiles};
use crate::provider::{
    Caller, ContentProvider, ContentValues, ProviderError, ProviderResult, QueryArgs, ReadHandle,
};
use crate::uri::Uri;
use maxoid_cowproxy::{cow_view, delta_table, CowProxy, DbView, QueryOpts, ReadSlot};
use maxoid_kernel::ExecContext;
use maxoid_sqldb::{ResultSet, Value};
use maxoid_vfs::VPath;
use std::sync::Arc;

/// Authority of the Media provider.
pub const AUTHORITY: &str = "media";

/// Media types stored in the `files` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaKind {
    /// Still image.
    Image,
    /// Audio track.
    Audio,
    /// Video clip.
    Video,
}

impl MediaKind {
    /// The `media_type` column value.
    pub fn type_code(self) -> i64 {
        match self {
            MediaKind::Image => 1,
            MediaKind::Audio => 2,
            MediaKind::Video => 3,
        }
    }
}

/// The Media system content provider with its view hierarchy and thumbnail
/// service.
pub struct MediaProvider<L: FileLocator> {
    proxy: CowProxy,
    files: SystemFiles<L>,
}

impl<L: FileLocator> std::fmt::Debug for MediaProvider<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediaProvider").finish()
    }
}

/// The provider's schema DDL.
const SCHEMA: &str = "CREATE TABLE files (_id INTEGER PRIMARY KEY, _data TEXT, \
     media_type INTEGER, title TEXT, _size INTEGER, date_added INTEGER, \
     bucket_id INTEGER);
     CREATE INDEX idx_files_bucket_id ON files (bucket_id);
     CREATE TABLE thumbnails (_id INTEGER PRIMARY KEY, file_id INTEGER, \
     _data TEXT);";

/// Registers Media's user-defined view hierarchy with the proxy. On an
/// adopted (journal-recovered) database the replayed view definitions are
/// adopted rather than recreated.
fn register_views(proxy: &mut CowProxy) {
    proxy
        .register_user_view(
            "CREATE VIEW images AS SELECT _id, _data, title, _size, date_added \
             FROM files WHERE media_type = 1",
        )
        .expect("static view is valid");
    proxy
        .register_user_view(
            "CREATE VIEW audio_meta AS SELECT _id, _data, title, _size, date_added \
             FROM files WHERE media_type = 2",
        )
        .expect("static view is valid");
    proxy
        .register_user_view(
            "CREATE VIEW video AS SELECT _id, _data, title, _size, date_added \
             FROM files WHERE media_type = 3",
        )
        .expect("static view is valid");
    // `audio` is defined over `audio_meta` — a second hierarchy level.
    proxy
        .register_user_view("CREATE VIEW audio AS SELECT _id, _data, title FROM audio_meta")
        .expect("static view is valid");
}

impl<L: FileLocator> MediaProvider<L> {
    /// Creates the provider: the `files` base table, the thumbnails table,
    /// and the user-defined view hierarchy registered with the proxy.
    pub fn new(files: SystemFiles<L>) -> Self {
        let mut proxy = CowProxy::new();
        proxy.execute_batch(SCHEMA).expect("static schema is valid");
        register_views(&mut proxy);
        MediaProvider { proxy, files }
    }

    /// Creates the provider with a journal sink attached *before* the
    /// schema DDL and view registration run, so replaying the log
    /// rebuilds the catalog (tables, indexes, user views) as well as the
    /// rows.
    pub fn with_journal(files: SystemFiles<L>, sink: maxoid_journal::SinkRef) -> Self {
        let mut proxy = CowProxy::new();
        proxy.attach_journal(sink, &format!("db.{AUTHORITY}"));
        proxy.execute_batch(SCHEMA).expect("static schema is valid");
        register_views(&mut proxy);
        MediaProvider { proxy, files }
    }

    /// Rebuilds the provider around a database recovered from a journal.
    /// Replayed user-view definitions are adopted, and the per-initiator
    /// COW instances of those views (derived state that is never
    /// journaled) are rebuilt eagerly so delegate reads do not fall back
    /// to the plain views.
    pub fn from_recovered(db: maxoid_sqldb::Database, files: SystemFiles<L>) -> Self {
        let mut proxy = CowProxy::adopt(db);
        if !proxy.db().has_table("files") {
            proxy.execute_batch(SCHEMA).expect("static schema is valid");
        }
        register_views(&mut proxy);
        proxy.rebuild_cow_views().expect("registered views rebuild cleanly");
        MediaProvider { proxy, files }
    }

    /// Rebuilds the provider from a recovered database *and* reattaches
    /// the journal (cold boot). The sink is attached before any missing
    /// schema is installed so a pre-DDL crash re-logs the catalog; view
    /// registration and COW-view rebuilds are derived state and follow.
    pub fn from_recovered_journaled(
        db: maxoid_sqldb::Database,
        files: SystemFiles<L>,
        sink: maxoid_journal::SinkRef,
    ) -> Self {
        let mut proxy = CowProxy::adopt(db);
        proxy.attach_journal(sink, &format!("db.{AUTHORITY}"));
        if !proxy.db().has_table("files") {
            proxy.execute_batch(SCHEMA).expect("static schema is valid");
        }
        register_views(&mut proxy);
        proxy.rebuild_cow_views().expect("registered views rebuild cleanly");
        MediaProvider { proxy, files }
    }

    /// Access to the proxy (tests, benches).
    pub fn proxy(&self) -> &CowProxy {
        &self.proxy
    }

    /// Mutable access to the proxy (attaching storage tiers).
    pub fn proxy_mut(&mut self) -> &mut CowProxy {
        &mut self.proxy
    }

    /// Rows held in `initiator`'s delta tables (per-tenant accounting).
    pub fn delta_row_count(&self, initiator: &str) -> usize {
        self.proxy.delta_row_count(initiator)
    }

    /// Scans a media file: inserts its metadata and generates a thumbnail
    /// (Media's background service). The record and the thumbnail follow
    /// the caller's state: a delegate's scan is confined to its
    /// initiator's volatile state.
    pub fn scan_file(
        &mut self,
        caller: &Caller,
        path: &VPath,
        kind: MediaKind,
        title: &str,
        data_len: usize,
    ) -> ProviderResult<i64> {
        let view = match &caller.ctx {
            ExecContext::Normal => DbView::Primary,
            ExecContext::OnBehalfOf(init) => DbView::Delegate { initiator: init.pkg().to_string() },
        };
        let id = self.proxy.insert(
            &view,
            "files",
            &[
                ("_data", path.as_str().into()),
                ("media_type", kind.type_code().into()),
                ("title", title.into()),
                ("_size", (data_len as i64).into()),
                ("date_added", 0.into()),
                ("bucket_id", bucket_id(path).into()),
            ],
        )?;
        // Thumbnail generation: a small derived file, written to public or
        // volatile storage according to the record's state.
        let thumb_path = thumbnail_path(path)?;
        let thumb_bytes = synth_thumbnail(path, data_len);
        let initiator = caller.ctx.initiator().map(|a| a.pkg().to_string());
        self.files
            .write(initiator.as_deref(), &thumb_path, &thumb_bytes)
            .map_err(maxoid_kernel::KernelError::Fs)?;
        self.proxy.insert(
            &view,
            "thumbnails",
            &[("file_id", id.into()), ("_data", thumb_path.as_str().into())],
        )?;
        Ok(id)
    }

    /// Reads a thumbnail, resolving provenance like the Downloads
    /// provider's file wrapper.
    pub fn open_thumbnail(
        &self,
        initiator: Option<&str>,
        media_path: &VPath,
    ) -> ProviderResult<Vec<u8>> {
        let thumb = thumbnail_path(media_path).map_err(ProviderError::Kernel)?;
        self.files
            .read(initiator, &thumb)
            .map_err(|e| ProviderError::Kernel(maxoid_kernel::KernelError::Fs(e)))
    }

    fn relation_for(&self, uri: &Uri) -> ProviderResult<&'static str> {
        relation_for(uri)
    }

    fn is_user_view(rel: &str) -> bool {
        is_user_view(rel)
    }

    fn build_where(uri: &Uri, args: &QueryArgs) -> (Option<String>, Vec<Value>) {
        build_where(uri, args)
    }

    /// The lock-free read handle for this provider (see
    /// [`crate::ContentResolver::register_with_read`]). Most reads run
    /// from the published snapshot; the one write-side read — a delegate
    /// with a `files` delta querying a user view whose per-initiator COW
    /// instance has not been built yet — is detected against the same
    /// snapshot and declined so the locked path can run `ensure_cow`.
    pub fn read_handle(&self) -> Arc<dyn ReadHandle> {
        Arc::new(MediaReadHandle { slot: self.proxy.read_slot() })
    }
}

fn relation_for(uri: &Uri) -> ProviderResult<&'static str> {
    match uri.collection() {
        Some("files") => Ok("files"),
        Some("images") => Ok("images"),
        Some("audio") => Ok("audio"),
        Some("audio_meta") => Ok("audio_meta"),
        Some("video") => Ok("video"),
        Some("thumbnails") => Ok("thumbnails"),
        _ => Err(ProviderError::UnknownUri(uri.to_string())),
    }
}

fn is_user_view(rel: &str) -> bool {
    matches!(rel, "images" | "audio" | "audio_meta" | "video")
}

fn build_where(uri: &Uri, args: &QueryArgs) -> (Option<String>, Vec<Value>) {
    let mut clauses = Vec::new();
    let mut params = Vec::new();
    if let Some(id) = uri.id() {
        clauses.push("_id = ?".to_string());
        params.push(Value::Integer(id));
    }
    if let Some(sel) = &args.selection {
        clauses.push(format!("({sel})"));
        params.extend(args.selection_args.iter().cloned());
    }
    if clauses.is_empty() {
        (None, params)
    } else {
        (Some(clauses.join(" AND ")), params)
    }
}

/// Snapshot read path mirroring [`MediaProvider::query`]'s routing,
/// including the on-demand COW-view wrinkle (declined via the gate).
#[derive(Debug)]
struct MediaReadHandle {
    slot: ReadSlot,
}

impl ReadHandle for MediaReadHandle {
    fn try_query(
        &self,
        caller: &Caller,
        uri: &Uri,
        args: &QueryArgs,
    ) -> Option<ProviderResult<ResultSet>> {
        let rel = match relation_for(uri) {
            Ok(r) => r,
            Err(e) => return Some(Err(e)),
        };
        let view = match caller.db_view(uri) {
            Ok(v) => v,
            Err(e) => return Some(Err(e)),
        };
        let (where_clause, params) = build_where(uri, args);
        let opts = QueryOpts {
            columns: args.projection.clone(),
            where_clause,
            order_by: args.sort_order.clone(),
            limit: None,
        };
        let gate = |db: &maxoid_sqldb::Database| {
            // The locked path builds a user view's per-initiator COW
            // instance on demand when the initiator holds a `files`
            // delta. If this snapshot has the delta but not the COW
            // view, a snapshot read of the plain view would hide the
            // delta rows — fall back so `ensure_cow` can run. The check
            // and the query use the same snapshot, so the decision
            // cannot race a republish.
            if let DbView::Delegate { initiator } = &view {
                if is_user_view(rel)
                    && db.has_table(&delta_table("files", initiator))
                    && !db.has_view(&cow_view(rel, initiator))
                {
                    return false;
                }
            }
            true
        };
        let rs = self.slot.try_query_gated(gate, &view, rel, &opts, &params)?;
        Some(rs.map_err(ProviderError::from))
    }
}

/// Thumbnail location convention: `<dir>/.thumbnails/<name>.thumb`.
fn thumbnail_path(media: &VPath) -> Result<VPath, maxoid_kernel::KernelError> {
    let parent = media
        .parent()
        .ok_or(maxoid_kernel::KernelError::Fs(maxoid_vfs::VfsError::InvalidArgument))?;
    let name = media
        .file_name()
        .ok_or(maxoid_kernel::KernelError::Fs(maxoid_vfs::VfsError::InvalidArgument))?;
    parent
        .join(".thumbnails")
        .and_then(|d| d.join(&format!("{name}.thumb")))
        .map_err(maxoid_kernel::KernelError::Fs)
}

/// Android's bucket id: a hash of the lowercased parent directory, so all
/// files in one folder (e.g. `/sdcard/DCIM/Camera`) share a bucket. Gallery
/// apps query `bucket_id = ?`, which the indexed `files` table serves with
/// an index probe.
fn bucket_id(media: &VPath) -> i64 {
    let dir = media.parent().map(|p| p.as_str().to_ascii_lowercase()).unwrap_or_default();
    // djb2, truncated to i32 like Android's String.hashCode-based bucket.
    let mut h: u32 = 5381;
    for b in dir.bytes() {
        h = h.wrapping_mul(33).wrapping_add(b as u32);
    }
    h as i32 as i64
}

/// Deterministic fake thumbnail bytes derived from the source.
fn synth_thumbnail(path: &VPath, data_len: usize) -> Vec<u8> {
    let mut bytes = format!("THUMB:{}:{data_len}", path.as_str()).into_bytes();
    bytes.truncate(64);
    bytes
}

impl<L: FileLocator> ContentProvider for MediaProvider<L> {
    fn authority(&self) -> &str {
        AUTHORITY
    }

    fn insert(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
    ) -> ProviderResult<Uri> {
        let rel = self.relation_for(uri)?;
        if Self::is_user_view(rel) {
            return Err(ProviderError::Denied(format!(
                "insert through view {rel} not supported; insert into files"
            )));
        }
        let mut view = caller.db_view(uri)?;
        if values.is_volatile && view == DbView::Primary {
            view = DbView::Volatile { initiator: caller.app.pkg().to_string() };
        }
        let vals = values.as_proxy_values();
        let id = self.proxy.insert(&view, rel, &vals)?;
        let base = match &view {
            DbView::Volatile { .. } => uri.without_tmp().as_volatile(),
            _ => uri.without_tmp(),
        };
        Ok(base.with_id(id))
    }

    fn update(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
        args: &QueryArgs,
    ) -> ProviderResult<usize> {
        let rel = self.relation_for(uri)?;
        if Self::is_user_view(rel) {
            return Err(ProviderError::Denied(format!(
                "update through view {rel} not supported; update files"
            )));
        }
        let view = caller.db_view(uri)?;
        let (where_clause, params) = Self::build_where(uri, args);
        let sets = values.as_proxy_values();
        Ok(self.proxy.update(&view, rel, &sets, where_clause.as_deref(), &params)?)
    }

    fn query(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<ResultSet> {
        let rel = self.relation_for(uri)?;
        let view = caller.db_view(uri)?;
        // User-view COW instances are built on demand when a delegate with
        // volatile state queries through the hierarchy.
        if let DbView::Delegate { initiator } = &view {
            if Self::is_user_view(rel) && self.proxy.has_delta("files", initiator) {
                let initiator = initiator.clone();
                self.proxy.ensure_cow(rel, &initiator)?;
            }
        }
        let (where_clause, params) = Self::build_where(uri, args);
        let opts = QueryOpts {
            columns: args.projection.clone(),
            where_clause,
            order_by: args.sort_order.clone(),
            limit: None,
        };
        Ok(self.proxy.query(&view, rel, &opts, &params)?)
    }

    fn delete(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<usize> {
        let rel = self.relation_for(uri)?;
        if Self::is_user_view(rel) {
            return Err(ProviderError::Denied(format!(
                "delete through view {rel} not supported; delete from files"
            )));
        }
        let view = caller.db_view(uri)?;
        let (where_clause, params) = Self::build_where(uri, args);
        Ok(self.proxy.delete(&view, rel, where_clause.as_deref(), &params)?)
    }

    fn clear_volatile(&mut self, initiator: &str) -> ProviderResult<()> {
        self.proxy.clear_volatile(initiator)?;
        Ok(())
    }

    fn commit_volatile_row(
        &mut self,
        initiator: &str,
        table: &str,
        id: i64,
    ) -> ProviderResult<bool> {
        Ok(self.proxy.commit_volatile_row(initiator, table, id)?)
    }

    fn publish_read(&mut self) {
        self.proxy.publish_read();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locator::SimpleLocator;
    use maxoid_vfs::{vpath, Vfs};

    fn provider() -> MediaProvider<SimpleLocator> {
        MediaProvider::new(SystemFiles::new(Vfs::new(), SimpleLocator))
    }

    fn images_uri() -> Uri {
        Uri::parse("content://media/images").unwrap()
    }

    #[test]
    fn scan_inserts_row_and_thumbnail() {
        let mut p = provider();
        let cam = Caller::normal("com.camera");
        let id =
            p.scan_file(&cam, &vpath("/sdcard/DCIM/p1.jpg"), MediaKind::Image, "p1", 1000).unwrap();
        assert_eq!(id, 1);
        let rs = p.query(&cam, &images_uri(), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        let thumb = p.open_thumbnail(None, &vpath("/sdcard/DCIM/p1.jpg")).unwrap();
        assert!(thumb.starts_with(b"THUMB:"));
    }

    #[test]
    fn bucket_queries_use_the_index() {
        let mut p = provider();
        let cam = Caller::normal("com.camera");
        for (dir, n) in [("/sdcard/DCIM/Camera", 3), ("/sdcard/Download", 2)] {
            for i in 0..n {
                p.scan_file(&cam, &vpath(&format!("{dir}/f{i}.jpg")), MediaKind::Image, "f", 10)
                    .unwrap();
            }
        }
        let camera_bucket = bucket_id(&vpath("/sdcard/DCIM/Camera/f0.jpg"));
        p.proxy().db().stats.reset();
        let rs = p
            .proxy()
            .db()
            .query("SELECT _id FROM files WHERE bucket_id = ?", &[Value::Integer(camera_bucket)])
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(p.proxy().db().stats.index_probes.get(), 1);
        assert_eq!(p.proxy().db().stats.rows_scanned.get(), 0);
    }

    #[test]
    fn delegate_scan_is_confined() {
        let mut p = provider();
        // Seed a public image.
        p.scan_file(
            &Caller::normal("com.camera"),
            &vpath("/sdcard/DCIM/pub.jpg"),
            MediaKind::Image,
            "pub",
            10,
        )
        .unwrap();
        // A camera app running on behalf of Dropbox takes a photo.
        let del = Caller::delegate("com.camera", "com.dropbox");
        p.scan_file(&del, &vpath("/sdcard/DCIM/secret.jpg"), MediaKind::Image, "secret", 20)
            .unwrap();
        // The delegate sees both records through the images view.
        let rs = p.query(&del, &images_uri(), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 2);
        // The public world sees only the public one.
        let rs = p.query(&Caller::normal("x"), &images_uri(), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        // The thumbnail lives in Dropbox's volatile storage, not public.
        assert!(p.open_thumbnail(None, &vpath("/sdcard/DCIM/secret.jpg")).is_err());
        assert!(p.open_thumbnail(Some("com.dropbox"), &vpath("/sdcard/DCIM/secret.jpg")).is_ok());
    }

    #[test]
    fn audio_hierarchy_spans_two_levels() {
        let mut p = provider();
        p.scan_file(
            &Caller::normal("com.music"),
            &vpath("/sdcard/Music/pub.mp3"),
            MediaKind::Audio,
            "pub",
            10,
        )
        .unwrap();
        let del = Caller::delegate("com.player", "com.email");
        p.scan_file(&del, &vpath("/sdcard/Music/att.mp3"), MediaKind::Audio, "att", 20).unwrap();
        let audio = Uri::parse("content://media/audio").unwrap();
        let rs = p.query(&del, &audio, &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 2);
        let rs = p.query(&Caller::normal("x"), &audio, &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn writes_through_views_are_rejected() {
        let mut p = provider();
        let cam = Caller::normal("com.camera");
        let err =
            p.insert(&cam, &images_uri(), &ContentValues::new().put("title", "x")).unwrap_err();
        assert!(matches!(err, ProviderError::Denied(_)));
    }

    #[test]
    fn clear_volatile_removes_delegate_media() {
        let mut p = provider();
        let del = Caller::delegate("com.camera", "com.dropbox");
        p.scan_file(&del, &vpath("/sdcard/DCIM/s.jpg"), MediaKind::Image, "s", 5).unwrap();
        p.clear_volatile("com.dropbox").unwrap();
        let rs = p.query(&del, &images_uri(), &QueryArgs::default()).unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn video_kind_routes_to_video_view() {
        let mut p = provider();
        let cam = Caller::normal("com.camera");
        p.scan_file(&cam, &vpath("/sdcard/v.mp4"), MediaKind::Video, "v", 99).unwrap();
        let video = Uri::parse("content://media/video").unwrap();
        let rs = p.query(&cam, &video, &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        let rs = p.query(&cam, &images_uri(), &QueryArgs::default()).unwrap();
        assert!(rs.rows.is_empty());
    }
}
