//! The User Dictionary provider.
//!
//! "User Dictionary is purely a passive storage service ... porting is
//! trivial, though we add new URIs for volatile state" (§5.3). It maps
//! `content://user_dictionary/words[/id]` to rows of the `words` table and
//! `content://user_dictionary/tmp/words[/id]` to the caller's volatile
//! records.

use crate::provider::{
    Caller, ContentProvider, ContentValues, ProviderError, ProviderResult, QueryArgs, ReadHandle,
};
use crate::uri::Uri;
use maxoid_cowproxy::{CowProxy, DbView, QueryOpts, ReadSlot};
use maxoid_sqldb::{FlattenPolicy, ResultSet, Value};
use std::sync::Arc;

/// Authority of the User Dictionary provider.
pub const AUTHORITY: &str = "user_dictionary";

/// The `words` table served by this provider.
pub const WORDS_TABLE: &str = "words";

/// The provider's schema DDL.
const SCHEMA: &str = "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT NOT NULL, \
     frequency INTEGER, locale TEXT, appid INTEGER);
     CREATE INDEX idx_words_word ON words (word);";

/// The User Dictionary system content provider.
#[derive(Debug)]
pub struct UserDictionaryProvider {
    proxy: CowProxy,
}

impl Default for UserDictionaryProvider {
    fn default() -> Self {
        Self::new()
    }
}

impl UserDictionaryProvider {
    /// Creates the provider with its schema.
    pub fn new() -> Self {
        Self::with_policy(FlattenPolicy::Sqlite386)
    }

    /// Creates the provider with a specific planner policy (ablations).
    pub fn with_policy(policy: FlattenPolicy) -> Self {
        let mut proxy = CowProxy::with_policy(policy);
        proxy.execute_batch(SCHEMA).expect("static schema is valid");
        UserDictionaryProvider { proxy }
    }

    /// Creates the provider with a journal sink attached *before* the
    /// schema DDL runs, so replaying the log rebuilds the catalog
    /// (tables and indexes) as well as the rows.
    pub fn with_journal(sink: maxoid_journal::SinkRef) -> Self {
        let mut proxy = CowProxy::new();
        proxy.attach_journal(sink, &format!("db.{AUTHORITY}"));
        proxy.execute_batch(SCHEMA).expect("static schema is valid");
        UserDictionaryProvider { proxy }
    }

    /// Rebuilds the provider around a database recovered from a journal.
    /// The schema is installed only if replay did not already create it
    /// (a crash before the first flush leaves an empty log).
    pub fn from_recovered(db: maxoid_sqldb::Database) -> Self {
        let mut proxy = CowProxy::adopt(db);
        if !proxy.db().has_table(WORDS_TABLE) {
            proxy.execute_batch(SCHEMA).expect("static schema is valid");
        }
        UserDictionaryProvider { proxy }
    }

    /// Rebuilds the provider from a recovered database *and* reattaches
    /// the journal, so mutations after a cold boot keep logging. The sink
    /// is attached before any missing schema is installed: if the crash
    /// predated the schema DDL reaching the log, the reinstall is logged
    /// now rather than silently diverging from the journal.
    pub fn from_recovered_journaled(
        db: maxoid_sqldb::Database,
        sink: maxoid_journal::SinkRef,
    ) -> Self {
        let mut proxy = CowProxy::adopt(db);
        proxy.attach_journal(sink, &format!("db.{AUTHORITY}"));
        if !proxy.db().has_table(WORDS_TABLE) {
            proxy.execute_batch(SCHEMA).expect("static schema is valid");
        }
        UserDictionaryProvider { proxy }
    }

    /// Access to the underlying proxy (tests, benches).
    pub fn proxy(&self) -> &CowProxy {
        &self.proxy
    }

    /// Mutable access to the underlying proxy.
    pub fn proxy_mut(&mut self) -> &mut CowProxy {
        &mut self.proxy
    }

    /// Rows held in `initiator`'s delta tables (per-tenant accounting).
    pub fn delta_row_count(&self, initiator: &str) -> usize {
        self.proxy.delta_row_count(initiator)
    }

    fn check_uri(&self, uri: &Uri) -> ProviderResult<()> {
        check_uri(uri)
    }

    /// Combines a URI item id with caller selection into proxy arguments.
    fn build_where(uri: &Uri, args: &QueryArgs) -> (Option<String>, Vec<Value>) {
        build_where(uri, args)
    }

    /// The lock-free read handle for this provider, to be registered via
    /// [`crate::ContentResolver::register_with_read`]. Queries are pure
    /// plans over the proxy's published snapshot, so the whole read path
    /// runs without the provider lock.
    pub fn read_handle(&self) -> Arc<dyn ReadHandle> {
        Arc::new(DictReadHandle { slot: self.proxy.read_slot() })
    }
}

fn check_uri(uri: &Uri) -> ProviderResult<()> {
    if uri.authority != AUTHORITY || uri.collection() != Some(WORDS_TABLE) {
        return Err(ProviderError::UnknownUri(uri.to_string()));
    }
    Ok(())
}

fn build_where(uri: &Uri, args: &QueryArgs) -> (Option<String>, Vec<Value>) {
    let mut clauses = Vec::new();
    let mut params = Vec::new();
    if let Some(id) = uri.id() {
        clauses.push("_id = ?".to_string());
        params.push(Value::Integer(id));
    }
    if let Some(sel) = &args.selection {
        clauses.push(format!("({sel})"));
        params.extend(args.selection_args.iter().cloned());
    }
    if clauses.is_empty() {
        (None, params)
    } else {
        (Some(clauses.join(" AND ")), params)
    }
}

/// Snapshot read path: the same URI routing and query plan as
/// [`UserDictionaryProvider::query`], executed against the published
/// snapshot in [`ReadSlot::try_query`].
#[derive(Debug)]
struct DictReadHandle {
    slot: ReadSlot,
}

impl ReadHandle for DictReadHandle {
    fn try_query(
        &self,
        caller: &Caller,
        uri: &Uri,
        args: &QueryArgs,
    ) -> Option<ProviderResult<ResultSet>> {
        if let Err(e) = check_uri(uri) {
            return Some(Err(e));
        }
        let view = match caller.db_view(uri) {
            Ok(v) => v,
            Err(e) => return Some(Err(e)),
        };
        let (where_clause, params) = build_where(uri, args);
        let opts = QueryOpts {
            columns: args.projection.clone(),
            where_clause,
            order_by: args.sort_order.clone(),
            limit: None,
        };
        let rs = self.slot.try_query(&view, WORDS_TABLE, &opts, &params)?;
        Some(rs.map_err(ProviderError::from))
    }
}

impl ContentProvider for UserDictionaryProvider {
    fn authority(&self) -> &str {
        AUTHORITY
    }

    fn insert(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
    ) -> ProviderResult<Uri> {
        self.check_uri(uri)?;
        let mut view = caller.db_view(uri)?;
        // The initiator isVolatile API (§6.1 item 4).
        if values.is_volatile && view == DbView::Primary {
            view = DbView::Volatile { initiator: caller.app.pkg().to_string() };
        }
        let vals = values.as_proxy_values();
        let id = self.proxy.insert(&view, WORDS_TABLE, &vals)?;
        let base = match &view {
            DbView::Volatile { .. } => uri.without_tmp().as_volatile(),
            _ => uri.without_tmp(),
        };
        Ok(base.with_id(id))
    }

    fn update(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
        args: &QueryArgs,
    ) -> ProviderResult<usize> {
        self.check_uri(uri)?;
        let view = caller.db_view(uri)?;
        let (where_clause, params) = Self::build_where(uri, args);
        let sets = values.as_proxy_values();
        Ok(self.proxy.update(&view, WORDS_TABLE, &sets, where_clause.as_deref(), &params)?)
    }

    fn query(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<ResultSet> {
        self.check_uri(uri)?;
        let view = caller.db_view(uri)?;
        let (where_clause, params) = Self::build_where(uri, args);
        let opts = QueryOpts {
            columns: args.projection.clone(),
            where_clause,
            order_by: args.sort_order.clone(),
            limit: None,
        };
        Ok(self.proxy.query(&view, WORDS_TABLE, &opts, &params)?)
    }

    fn delete(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<usize> {
        self.check_uri(uri)?;
        let view = caller.db_view(uri)?;
        let (where_clause, params) = Self::build_where(uri, args);
        Ok(self.proxy.delete(&view, WORDS_TABLE, where_clause.as_deref(), &params)?)
    }

    fn clear_volatile(&mut self, initiator: &str) -> ProviderResult<()> {
        self.proxy.clear_volatile(initiator)?;
        Ok(())
    }

    fn commit_volatile_row(
        &mut self,
        initiator: &str,
        table: &str,
        id: i64,
    ) -> ProviderResult<bool> {
        Ok(self.proxy.commit_volatile_row(initiator, table, id)?)
    }

    fn publish_read(&mut self) {
        self.proxy.publish_read();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words_uri() -> Uri {
        Uri::parse("content://user_dictionary/words").unwrap()
    }

    fn seeded() -> UserDictionaryProvider {
        let mut p = UserDictionaryProvider::new();
        let kb = Caller::normal("com.keyboard");
        for (w, f) in [("hello", 10), ("world", 20), ("maxoid", 30)] {
            p.insert(&kb, &words_uri(), &ContentValues::new().put("word", w).put("frequency", f))
                .unwrap();
        }
        p
    }

    #[test]
    fn insert_returns_item_uri() {
        let mut p = UserDictionaryProvider::new();
        let uri = p
            .insert(&Caller::normal("kb"), &words_uri(), &ContentValues::new().put("word", "a"))
            .unwrap();
        assert_eq!(uri.to_string(), "content://user_dictionary/words/1");
    }

    #[test]
    fn item_uri_addresses_single_row() {
        let mut p = seeded();
        let kb = Caller::normal("com.keyboard");
        let rs = p.query(&kb, &words_uri().with_id(2), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        let w = rs.column_index("word").unwrap();
        assert_eq!(rs.rows[0][w], Value::Text("world".into()));
    }

    #[test]
    fn delegate_updates_are_confined() {
        let mut p = seeded();
        let del = Caller::delegate("com.viewer", "com.email");
        let n = p
            .update(
                &del,
                &words_uri().with_id(1),
                &ContentValues::new().put("word", "HELLO"),
                &QueryArgs::default(),
            )
            .unwrap();
        assert_eq!(n, 1);
        // Delegate reads its write through a normal URI.
        let rs = p.query(&del, &words_uri().with_id(1), &QueryArgs::default()).unwrap();
        let w = rs.column_index("word").unwrap();
        assert_eq!(rs.rows[0][w], Value::Text("HELLO".into()));
        // Other apps see the public record.
        let other = Caller::normal("com.other");
        let rs = p.query(&other, &words_uri().with_id(1), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows[0][w], Value::Text("hello".into()));
        // The initiator retrieves the volatile copy via the tmp URI.
        let email = Caller::normal("com.email");
        let tmp = words_uri().as_volatile();
        let rs = p.query(&email, &tmp, &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][rs.column_index("word").unwrap()], Value::Text("HELLO".into()));
    }

    #[test]
    fn delegate_delete_hides_but_preserves_public() {
        let mut p = seeded();
        let del = Caller::delegate("com.viewer", "com.email");
        assert_eq!(p.delete(&del, &words_uri().with_id(2), &QueryArgs::default()).unwrap(), 1);
        assert!(p
            .query(&del, &words_uri().with_id(2), &QueryArgs::default())
            .unwrap()
            .rows
            .is_empty());
        let pub_rs =
            p.query(&Caller::normal("x"), &words_uri().with_id(2), &QueryArgs::default()).unwrap();
        assert_eq!(pub_rs.rows.len(), 1);
    }

    #[test]
    fn is_volatile_insert_via_flag() {
        let mut p = seeded();
        let browser = Caller::normal("com.browser");
        let uri = p
            .insert(
                &browser,
                &words_uri(),
                &ContentValues::new().put("word", "incognito").volatile(),
            )
            .unwrap();
        assert!(uri.is_volatile());
        // Not visible publicly.
        let rs = p.query(&Caller::normal("x"), &words_uri(), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 3);
        // Visible to browser's delegates.
        let del = Caller::delegate("com.pdf", "com.browser");
        let rs = p.query(&del, &words_uri(), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn selection_and_sort() {
        let mut p = seeded();
        let kb = Caller::normal("com.keyboard");
        let rs = p
            .query(
                &kb,
                &words_uri(),
                &QueryArgs {
                    projection: vec!["word".into()],
                    selection: Some("frequency >= ?".into()),
                    selection_args: vec![Value::Integer(20)],
                    sort_order: Some("frequency DESC".into()),
                },
            )
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![Value::Text("maxoid".into())], vec![Value::Text("world".into())]]
        );
    }

    #[test]
    fn clear_volatile_erases_delegate_traces() {
        let mut p = seeded();
        let del = Caller::delegate("com.viewer", "com.email");
        p.insert(&del, &words_uri(), &ContentValues::new().put("word", "trace")).unwrap();
        p.clear_volatile("com.email").unwrap();
        let rs = p.query(&del, &words_uri(), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert!(!rs
            .rows
            .iter()
            .any(|r| r[rs.column_index("word").unwrap()] == Value::Text("trace".into())));
    }

    #[test]
    fn unknown_collection_rejected() {
        let mut p = UserDictionaryProvider::new();
        let bad = Uri::parse("content://user_dictionary/nope").unwrap();
        assert!(matches!(
            p.query(&Caller::normal("x"), &bad, &QueryArgs::default()),
            Err(ProviderError::UnknownUri(_))
        ));
    }
}
