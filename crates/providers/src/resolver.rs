//! Content resolver: URI routing and per-URI permission grants.
//!
//! Android resolves `content://` URIs to providers by authority. System
//! content providers are world-reachable (subject to install-time
//! permissions, which we treat as granted); app-defined providers are
//! private to their owner unless the owner issues a per-URI grant
//! (`FLAG_GRANT_READ_URI_PERMISSION`), the mechanism Email uses to let a
//! viewer open one attachment (§2.2).

use crate::provider::{
    Caller, ContentProvider, ContentValues, ProviderError, ProviderResult, QueryArgs,
};
use crate::uri::Uri;
use maxoid_sqldb::ResultSet;
use std::collections::BTreeMap;

/// Who may reach a provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProviderScope {
    /// A system content provider: reachable by every app.
    System,
    /// An app-defined provider owned by `owner`: reachable only by the
    /// owner and per-URI grantees.
    AppDefined {
        /// The owning package.
        owner: String,
    },
}

/// A per-URI permission grant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct UriGrant {
    grantee: String,
    uri: Uri,
    write: bool,
    /// One-shot grants are revoked after first use (Email's behaviour).
    one_shot: bool,
}

/// Routes content URIs to registered providers and enforces reachability.
#[derive(Default)]
pub struct ContentResolver {
    providers: BTreeMap<String, (ProviderScope, Box<dyn ContentProvider + Send>)>,
    grants: Vec<UriGrant>,
}

impl std::fmt::Debug for ContentResolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentResolver")
            .field("authorities", &self.providers.keys().collect::<Vec<_>>())
            .field("grants", &self.grants.len())
            .finish()
    }
}

impl ContentResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        ContentResolver::default()
    }

    /// Registers a provider under its authority.
    pub fn register(&mut self, scope: ProviderScope, provider: Box<dyn ContentProvider + Send>) {
        self.providers.insert(provider.authority().to_string(), (scope, provider));
    }

    /// Returns the registered authorities.
    pub fn authorities(&self) -> Vec<String> {
        self.providers.keys().cloned().collect()
    }

    /// Issues a per-URI grant (the `FLAG_GRANT_*_URI_PERMISSION` analogue).
    pub fn grant_uri_permission(&mut self, grantee: &str, uri: &Uri, write: bool, one_shot: bool) {
        self.grants.push(UriGrant {
            grantee: grantee.to_string(),
            uri: uri.clone(),
            write,
            one_shot,
        });
    }

    /// Revokes all grants for a URI.
    pub fn revoke_uri_permission(&mut self, uri: &Uri) {
        self.grants.retain(|g| &g.uri != uri);
    }

    /// Checks reachability; consumes one-shot grants on success.
    fn check_access(&mut self, caller: &Caller, uri: &Uri, write: bool) -> ProviderResult<()> {
        let (scope, _) = self
            .providers
            .get(&uri.authority)
            .ok_or_else(|| ProviderError::UnknownUri(uri.to_string()))?;
        match scope {
            ProviderScope::System => Ok(()),
            ProviderScope::AppDefined { owner } => {
                if caller.app.pkg() == owner {
                    return Ok(());
                }
                let idx = self.grants.iter().position(|g| {
                    g.grantee == caller.app.pkg() && &g.uri == uri && (!write || g.write)
                });
                match idx {
                    Some(i) => {
                        if self.grants[i].one_shot {
                            self.grants.remove(i);
                        }
                        Ok(())
                    }
                    None => Err(ProviderError::Denied(format!(
                        "{} has no grant for {uri}",
                        caller.app.pkg()
                    ))),
                }
            }
        }
    }

    fn provider_mut(
        &mut self,
        authority: &str,
    ) -> ProviderResult<&mut Box<dyn ContentProvider + Send>> {
        self.providers
            .get_mut(authority)
            .map(|(_, p)| p)
            .ok_or_else(|| ProviderError::UnknownUri(authority.to_string()))
    }

    /// Routed insert.
    pub fn insert(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
    ) -> ProviderResult<Uri> {
        self.check_access(caller, uri, true)?;
        let authority = uri.authority.clone();
        self.provider_mut(&authority)?.insert(caller, uri, values)
    }

    /// Routed update.
    pub fn update(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
        args: &QueryArgs,
    ) -> ProviderResult<usize> {
        self.check_access(caller, uri, true)?;
        let authority = uri.authority.clone();
        self.provider_mut(&authority)?.update(caller, uri, values, args)
    }

    /// Routed query.
    pub fn query(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        args: &QueryArgs,
    ) -> ProviderResult<ResultSet> {
        self.check_access(caller, uri, false)?;
        let authority = uri.authority.clone();
        self.provider_mut(&authority)?.query(caller, uri, args)
    }

    /// Routed delete.
    pub fn delete(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        args: &QueryArgs,
    ) -> ProviderResult<usize> {
        self.check_access(caller, uri, true)?;
        let authority = uri.authority.clone();
        self.provider_mut(&authority)?.delete(caller, uri, args)
    }

    /// Clears the volatile state every registered provider holds for
    /// `initiator` (the provider half of Clear-Vol).
    pub fn clear_volatile(&mut self, initiator: &str) -> ProviderResult<()> {
        for (_, p) in self.providers.values_mut() {
            p.clear_volatile(initiator)?;
        }
        Ok(())
    }

    /// Selectively commits one volatile row of `initiator` held by the
    /// provider serving `authority` (the resolver half of the
    /// initiator's Commit gesture, §3.3). Returns true if a row moved.
    pub fn commit_volatile_row(
        &mut self,
        authority: &str,
        initiator: &str,
        table: &str,
        id: i64,
    ) -> ProviderResult<bool> {
        self.provider_mut(authority)?.commit_volatile_row(initiator, table, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::userdict::UserDictionaryProvider;
    use maxoid_sqldb::SqlResult;

    /// A minimal app-defined provider (Email's attachment provider shape).
    #[derive(Debug, Default)]
    struct AttachmentProvider {
        rows: Vec<String>,
    }

    impl ContentProvider for AttachmentProvider {
        fn authority(&self) -> &str {
            "com.email.attachmentprovider"
        }

        fn insert(&mut self, _: &Caller, uri: &Uri, values: &ContentValues) -> ProviderResult<Uri> {
            self.rows.push(values.get("name").map(|v| v.to_string()).unwrap_or_default());
            Ok(uri.with_id(self.rows.len() as i64))
        }

        fn update(
            &mut self,
            _: &Caller,
            _: &Uri,
            _: &ContentValues,
            _: &QueryArgs,
        ) -> ProviderResult<usize> {
            Ok(0)
        }

        fn query(&mut self, _: &Caller, uri: &Uri, _: &QueryArgs) -> ProviderResult<ResultSet> {
            let id = uri.id().unwrap_or(0) as usize;
            let rows: SqlResult<Vec<Vec<maxoid_sqldb::Value>>> = Ok(self
                .rows
                .get(id.wrapping_sub(1))
                .map(|n| vec![vec![maxoid_sqldb::Value::Text(n.clone())]])
                .unwrap_or_default());
            Ok(ResultSet { columns: vec!["name".into()], rows: rows? })
        }

        fn delete(&mut self, _: &Caller, _: &Uri, _: &QueryArgs) -> ProviderResult<usize> {
            Ok(0)
        }

        fn clear_volatile(&mut self, _: &str) -> ProviderResult<()> {
            Ok(())
        }
    }

    fn resolver_with_attachments() -> (ContentResolver, Uri) {
        let mut r = ContentResolver::new();
        r.register(
            ProviderScope::AppDefined { owner: "com.email".into() },
            Box::new(AttachmentProvider::default()),
        );
        let base = Uri::parse("content://com.email.attachmentprovider/attachments").unwrap();
        let email = Caller::normal("com.email");
        let item =
            r.insert(&email, &base, &ContentValues::new().put("name", "report.pdf")).unwrap();
        (r, item)
    }

    #[test]
    fn system_providers_are_world_reachable() {
        let mut r = ContentResolver::new();
        r.register(ProviderScope::System, Box::new(UserDictionaryProvider::new()));
        let uri = Uri::parse("content://user_dictionary/words").unwrap();
        let any = Caller::normal("com.random");
        r.insert(&any, &uri, &ContentValues::new().put("word", "ok")).unwrap();
        assert_eq!(r.query(&any, &uri, &QueryArgs::default()).unwrap().rows.len(), 1);
    }

    #[test]
    fn app_defined_requires_grant() {
        let (mut r, item) = resolver_with_attachments();
        let viewer = Caller::normal("com.viewer");
        // No grant: denied.
        assert!(matches!(
            r.query(&viewer, &item, &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
        // Owner grants one-time read on the single item.
        r.grant_uri_permission("com.viewer", &item, false, true);
        let rs = r.query(&viewer, &item, &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        // The one-shot grant is consumed.
        assert!(matches!(
            r.query(&viewer, &item, &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
    }

    #[test]
    fn read_grant_does_not_allow_write() {
        let (mut r, item) = resolver_with_attachments();
        r.grant_uri_permission("com.viewer", &item, false, false);
        let viewer = Caller::normal("com.viewer");
        assert!(matches!(
            r.update(&viewer, &item, &ContentValues::new(), &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
        // Reads keep working (persistent grant).
        r.query(&viewer, &item, &QueryArgs::default()).unwrap();
        r.query(&viewer, &item, &QueryArgs::default()).unwrap();
    }

    #[test]
    fn grants_are_per_exact_uri() {
        let (mut r, item) = resolver_with_attachments();
        r.grant_uri_permission("com.viewer", &item, false, false);
        let viewer = Caller::normal("com.viewer");
        let other = item.with_id(999);
        assert!(matches!(
            r.query(&viewer, &other, &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
    }

    #[test]
    fn revoke_removes_grants() {
        let (mut r, item) = resolver_with_attachments();
        r.grant_uri_permission("com.viewer", &item, false, false);
        r.revoke_uri_permission(&item);
        let viewer = Caller::normal("com.viewer");
        assert!(matches!(
            r.query(&viewer, &item, &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
    }

    #[test]
    fn unknown_authority_is_error() {
        let mut r = ContentResolver::new();
        let uri = Uri::parse("content://nope/x").unwrap();
        assert!(matches!(
            r.query(&Caller::normal("a"), &uri, &QueryArgs::default()),
            Err(ProviderError::UnknownUri(_))
        ));
    }
}
