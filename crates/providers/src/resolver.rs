//! Content resolver: URI routing and per-URI permission grants.
//!
//! Android resolves `content://` URIs to providers by authority. System
//! content providers are world-reachable (subject to install-time
//! permissions, which we treat as granted); app-defined providers are
//! private to their owner unless the owner issues a per-URI grant
//! (`FLAG_GRANT_READ_URI_PERMISSION`), the mechanism Email uses to let a
//! viewer open one attachment (§2.2).

use crate::provider::{
    Caller, ContentProvider, ContentValues, ProviderError, ProviderResult, QueryArgs, ReadHandle,
};
use crate::uri::Uri;
use maxoid_sqldb::ResultSet;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Who may reach a provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProviderScope {
    /// A system content provider: reachable by every app.
    System,
    /// An app-defined provider owned by `owner`: reachable only by the
    /// owner and per-URI grantees.
    AppDefined {
        /// The owning package.
        owner: String,
    },
}

/// A per-URI permission grant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct UriGrant {
    grantee: String,
    uri: Uri,
    write: bool,
    /// One-shot grants are revoked after first use (Email's behaviour).
    one_shot: bool,
}

/// A registered provider: its reachability scope, the per-authority
/// **write lock** that serializes mutations into it, and the optional
/// lock-free read handle. The `Arc` lets routing clone the entry out of
/// the table and release the table lock before dispatching, so calls to
/// *different* authorities run fully in parallel; the read handle lets
/// queries on the *same* authority run in parallel too.
#[derive(Clone)]
struct ProviderEntry {
    scope: ProviderScope,
    provider: Arc<Mutex<Box<dyn ContentProvider + Send>>>,
    read: Option<Arc<dyn ReadHandle>>,
}

/// Routes content URIs to registered providers and enforces reachability.
///
/// # Concurrency
///
/// The authority table is an `RwLock` (registration is rare; routing
/// takes read locks), the grant list has its own mutex (one-shot grants
/// are consumed atomically), and each provider sits behind its own
/// per-authority **write lock**. Mutations take that lock; after each
/// one the resolver asks the provider to publish a fresh MVCC snapshot
/// ([`ContentProvider::publish_read`]). Queries first try the
/// provider's registered [`ReadHandle`], which serves them from the
/// published snapshot without the write lock; only when no snapshot is
/// available (or the read needs write-side work) do they fall back to
/// the locked path. When a caller must lock several providers (the
/// Clear-Vol sweep), it does so one at a time in ascending authority
/// order — the documented provider-lock order (DESIGN.md §4.10).
#[derive(Default)]
pub struct ContentResolver {
    providers: RwLock<BTreeMap<String, ProviderEntry>>,
    grants: Mutex<Vec<UriGrant>>,
    /// Queries served lock-free from a published snapshot.
    snapshot_reads: AtomicU64,
    /// Queries that fell back to the per-authority write lock.
    locked_reads: AtomicU64,
}

impl std::fmt::Debug for ContentResolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentResolver")
            .field("authorities", &self.providers.read().keys().collect::<Vec<_>>())
            .field("grants", &self.grants.lock().len())
            .finish()
    }
}

impl ContentResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        ContentResolver::default()
    }

    /// Registers a provider under its authority.
    pub fn register(&self, scope: ProviderScope, provider: Box<dyn ContentProvider + Send>) {
        let authority = provider.authority().to_string();
        self.providers.write().insert(
            authority,
            ProviderEntry { scope, provider: Arc::new(Mutex::new(provider)), read: None },
        );
    }

    /// Registers a provider together with its lock-free read handle.
    /// Queries will be served from the provider's published snapshot
    /// whenever one is available, without taking the authority's write
    /// lock.
    pub fn register_with_read(
        &self,
        scope: ProviderScope,
        provider: Box<dyn ContentProvider + Send>,
        read: Arc<dyn ReadHandle>,
    ) {
        let authority = provider.authority().to_string();
        self.providers.write().insert(
            authority,
            ProviderEntry { scope, provider: Arc::new(Mutex::new(provider)), read: Some(read) },
        );
    }

    /// `(snapshot_reads, locked_reads)` since construction: how many
    /// routed queries were served lock-free from a published snapshot
    /// versus under a per-authority write lock.
    pub fn read_path_stats(&self) -> (u64, u64) {
        (self.snapshot_reads.load(Ordering::Relaxed), self.locked_reads.load(Ordering::Relaxed))
    }

    /// Returns the registered authorities.
    pub fn authorities(&self) -> Vec<String> {
        self.providers.read().keys().cloned().collect()
    }

    /// Issues a per-URI grant (the `FLAG_GRANT_*_URI_PERMISSION` analogue).
    pub fn grant_uri_permission(&self, grantee: &str, uri: &Uri, write: bool, one_shot: bool) {
        self.grants.lock().push(UriGrant {
            grantee: grantee.to_string(),
            uri: uri.clone(),
            write,
            one_shot,
        });
    }

    /// Revokes all grants for a URI.
    pub fn revoke_uri_permission(&self, uri: &Uri) {
        self.grants.lock().retain(|g| &g.uri != uri);
    }

    /// Looks an authority up and clones its entry out, releasing the
    /// table lock before the caller dispatches into the provider.
    fn entry(&self, authority: &str) -> ProviderResult<ProviderEntry> {
        self.providers
            .read()
            .get(authority)
            .cloned()
            .ok_or_else(|| ProviderError::UnknownUri(authority.to_string()))
    }

    /// Checks reachability; consumes one-shot grants on success. The
    /// grant check-and-consume runs under the grant lock, so two racing
    /// callers cannot both spend the same one-shot grant.
    fn check_access(
        &self,
        scope: &ProviderScope,
        caller: &Caller,
        uri: &Uri,
        write: bool,
    ) -> ProviderResult<()> {
        match scope {
            ProviderScope::System => Ok(()),
            ProviderScope::AppDefined { owner } => {
                if caller.app.pkg() == owner {
                    return Ok(());
                }
                let mut grants = self.grants.lock();
                let idx = grants.iter().position(|g| {
                    g.grantee == caller.app.pkg() && &g.uri == uri && (!write || g.write)
                });
                match idx {
                    Some(i) => {
                        if grants[i].one_shot {
                            grants.remove(i);
                        }
                        Ok(())
                    }
                    None => Err(ProviderError::Denied(format!(
                        "{} has no grant for {uri}",
                        caller.app.pkg()
                    ))),
                }
            }
        }
    }

    /// Routed insert.
    pub fn insert(
        &self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
    ) -> ProviderResult<Uri> {
        let entry = self.entry(&uri.authority)?;
        self.check_access(&entry.scope, caller, uri, true)?;
        let mut p = entry.provider.lock();
        let res = p.insert(caller, uri, values);
        p.publish_read();
        res
    }

    /// Routed update.
    pub fn update(
        &self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
        args: &QueryArgs,
    ) -> ProviderResult<usize> {
        let entry = self.entry(&uri.authority)?;
        self.check_access(&entry.scope, caller, uri, true)?;
        let mut p = entry.provider.lock();
        let res = p.update(caller, uri, values, args);
        p.publish_read();
        res
    }

    /// Routed query.
    ///
    /// Tries the provider's lock-free read handle first: if a committed
    /// snapshot is published, the query runs against it without the
    /// authority's write lock (and in parallel with other readers).
    /// Otherwise the query takes the write lock, runs against live
    /// state, and republishes a snapshot for subsequent readers.
    pub fn query(&self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<ResultSet> {
        let entry = self.entry(&uri.authority)?;
        self.check_access(&entry.scope, caller, uri, false)?;
        if let Some(read) = &entry.read {
            if let Some(res) = read.try_query(caller, uri, args) {
                self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
                maxoid_obs::counter_add("resolver.snapshot_reads", 1);
                return res;
            }
        }
        let mut p = entry.provider.lock();
        let res = p.query(caller, uri, args);
        p.publish_read();
        self.locked_reads.fetch_add(1, Ordering::Relaxed);
        maxoid_obs::counter_add("resolver.locked_reads", 1);
        res
    }

    /// Routed delete.
    pub fn delete(&self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<usize> {
        let entry = self.entry(&uri.authority)?;
        self.check_access(&entry.scope, caller, uri, true)?;
        let mut p = entry.provider.lock();
        let res = p.delete(caller, uri, args);
        p.publish_read();
        res
    }

    /// Clears the volatile state every registered provider holds for
    /// `initiator` (the provider half of Clear-Vol). Providers are locked
    /// one at a time in ascending authority order (the documented
    /// provider-lock order).
    pub fn clear_volatile(&self, initiator: &str) -> ProviderResult<()> {
        let entries: Vec<ProviderEntry> = self.providers.read().values().cloned().collect();
        for e in entries {
            let mut p = e.provider.lock();
            let res = p.clear_volatile(initiator);
            p.publish_read();
            res?;
        }
        Ok(())
    }

    /// Selectively commits one volatile row of `initiator` held by the
    /// provider serving `authority` (the resolver half of the
    /// initiator's Commit gesture, §3.3). Returns true if a row moved.
    pub fn commit_volatile_row(
        &self,
        authority: &str,
        initiator: &str,
        table: &str,
        id: i64,
    ) -> ProviderResult<bool> {
        let entry = self.entry(authority)?;
        let mut p = entry.provider.lock();
        let res = p.commit_volatile_row(initiator, table, id);
        p.publish_read();
        res
    }
}

// Routing must be shareable across worker threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ContentResolver>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::userdict::UserDictionaryProvider;
    use maxoid_sqldb::SqlResult;

    /// A minimal app-defined provider (Email's attachment provider shape).
    #[derive(Debug, Default)]
    struct AttachmentProvider {
        rows: Vec<String>,
    }

    impl ContentProvider for AttachmentProvider {
        fn authority(&self) -> &str {
            "com.email.attachmentprovider"
        }

        fn insert(&mut self, _: &Caller, uri: &Uri, values: &ContentValues) -> ProviderResult<Uri> {
            self.rows.push(values.get("name").map(|v| v.to_string()).unwrap_or_default());
            Ok(uri.with_id(self.rows.len() as i64))
        }

        fn update(
            &mut self,
            _: &Caller,
            _: &Uri,
            _: &ContentValues,
            _: &QueryArgs,
        ) -> ProviderResult<usize> {
            Ok(0)
        }

        fn query(&mut self, _: &Caller, uri: &Uri, _: &QueryArgs) -> ProviderResult<ResultSet> {
            let id = uri.id().unwrap_or(0) as usize;
            let rows: SqlResult<Vec<Vec<maxoid_sqldb::Value>>> = Ok(self
                .rows
                .get(id.wrapping_sub(1))
                .map(|n| vec![vec![maxoid_sqldb::Value::Text(n.clone())]])
                .unwrap_or_default());
            Ok(ResultSet { columns: vec!["name".into()], rows: rows? })
        }

        fn delete(&mut self, _: &Caller, _: &Uri, _: &QueryArgs) -> ProviderResult<usize> {
            Ok(0)
        }

        fn clear_volatile(&mut self, _: &str) -> ProviderResult<()> {
            Ok(())
        }
    }

    fn resolver_with_attachments() -> (ContentResolver, Uri) {
        let mut r = ContentResolver::new();
        r.register(
            ProviderScope::AppDefined { owner: "com.email".into() },
            Box::new(AttachmentProvider::default()),
        );
        let base = Uri::parse("content://com.email.attachmentprovider/attachments").unwrap();
        let email = Caller::normal("com.email");
        let item =
            r.insert(&email, &base, &ContentValues::new().put("name", "report.pdf")).unwrap();
        (r, item)
    }

    #[test]
    fn system_providers_are_world_reachable() {
        let mut r = ContentResolver::new();
        r.register(ProviderScope::System, Box::new(UserDictionaryProvider::new()));
        let uri = Uri::parse("content://user_dictionary/words").unwrap();
        let any = Caller::normal("com.random");
        r.insert(&any, &uri, &ContentValues::new().put("word", "ok")).unwrap();
        assert_eq!(r.query(&any, &uri, &QueryArgs::default()).unwrap().rows.len(), 1);
    }

    #[test]
    fn app_defined_requires_grant() {
        let (mut r, item) = resolver_with_attachments();
        let viewer = Caller::normal("com.viewer");
        // No grant: denied.
        assert!(matches!(
            r.query(&viewer, &item, &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
        // Owner grants one-time read on the single item.
        r.grant_uri_permission("com.viewer", &item, false, true);
        let rs = r.query(&viewer, &item, &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        // The one-shot grant is consumed.
        assert!(matches!(
            r.query(&viewer, &item, &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
    }

    #[test]
    fn read_grant_does_not_allow_write() {
        let (mut r, item) = resolver_with_attachments();
        r.grant_uri_permission("com.viewer", &item, false, false);
        let viewer = Caller::normal("com.viewer");
        assert!(matches!(
            r.update(&viewer, &item, &ContentValues::new(), &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
        // Reads keep working (persistent grant).
        r.query(&viewer, &item, &QueryArgs::default()).unwrap();
        r.query(&viewer, &item, &QueryArgs::default()).unwrap();
    }

    #[test]
    fn grants_are_per_exact_uri() {
        let (mut r, item) = resolver_with_attachments();
        r.grant_uri_permission("com.viewer", &item, false, false);
        let viewer = Caller::normal("com.viewer");
        let other = item.with_id(999);
        assert!(matches!(
            r.query(&viewer, &other, &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
    }

    #[test]
    fn revoke_removes_grants() {
        let (mut r, item) = resolver_with_attachments();
        r.grant_uri_permission("com.viewer", &item, false, false);
        r.revoke_uri_permission(&item);
        let viewer = Caller::normal("com.viewer");
        assert!(matches!(
            r.query(&viewer, &item, &QueryArgs::default()),
            Err(ProviderError::Denied(_))
        ));
    }

    #[test]
    fn unknown_authority_is_error() {
        let mut r = ContentResolver::new();
        let uri = Uri::parse("content://nope/x").unwrap();
        assert!(matches!(
            r.query(&Caller::normal("a"), &uri, &QueryArgs::default()),
            Err(ProviderError::UnknownUri(_))
        ));
    }
}
