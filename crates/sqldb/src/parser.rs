//! Recursive-descent parser for the supported SQL subset.

use crate::ast::{
    Affinity, BinOp, ColumnDef, Expr, InsertSource, OrderTerm, ResultColumn, SelectCore,
    SelectStmt, Stmt, TableRef, TriggerEvent, UnOp,
};
use crate::error::{SqlError, SqlResult};
use crate::lexer::{lex, Token};
use crate::value::Value;

/// Parses a string containing one or more `;`-separated statements.
pub fn parse_statements(sql: &str) -> SqlResult<Vec<Stmt>> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        while p.eat_token(&Token::Semicolon) {}
        if p.at_end() {
            break;
        }
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

/// Parses exactly one statement.
pub fn parse_statement(sql: &str) -> SqlResult<Stmt> {
    let mut stmts = parse_statements(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(SqlError::Parse { message: "empty statement".into() }),
        _ => Err(SqlError::Parse { message: "expected a single statement".into() }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, ahead: usize) -> Option<&Token> {
        self.tokens.get(self.pos + ahead)
    }

    fn next(&mut self) -> SqlResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SqlError::Parse { message: "unexpected end of input".into() })?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse { message: format!("expected {kw}, found {:?}", self.peek()) })
        }
    }

    fn eat_token(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, tok: &Token) -> SqlResult<()> {
        if self.eat_token(tok) {
            Ok(())
        } else {
            Err(SqlError::Parse { message: format!("expected {tok:?}, found {:?}", self.peek()) })
        }
    }

    fn identifier(&mut self) -> SqlResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            other => {
                Err(SqlError::Parse { message: format!("expected identifier, found {other:?}") })
            }
        }
    }

    fn peek_is_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn statement(&mut self) -> SqlResult<Stmt> {
        if self.peek_is_kw("select") {
            return Ok(Stmt::Select(self.select_stmt()?));
        }
        if self.eat_kw("create") {
            return self.create_stmt();
        }
        if self.eat_kw("drop") {
            return self.drop_stmt();
        }
        if self.eat_kw("insert") {
            return self.insert_stmt();
        }
        if self.eat_kw("update") {
            return self.update_stmt();
        }
        if self.eat_kw("delete") {
            return self.delete_stmt();
        }
        if self.eat_kw("begin") {
            let _ = self.eat_kw("transaction");
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("commit") || self.eat_kw("end") {
            let _ = self.eat_kw("transaction");
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("rollback") {
            let _ = self.eat_kw("transaction");
            return Ok(Stmt::Rollback);
        }
        if self.eat_kw("alter") {
            self.expect_kw("table")?;
            let table = self.identifier()?;
            self.expect_kw("rowid")?;
            self.expect_kw("start")?;
            let start = match self.next()? {
                Token::Literal(Value::Integer(n)) => n,
                other => {
                    return Err(SqlError::Parse {
                        message: format!("expected integer rowid start, found {other:?}"),
                    })
                }
            };
            return Ok(Stmt::AlterRowidStart { table, start });
        }
        Err(SqlError::Parse { message: format!("unexpected token {:?}", self.peek()) })
    }

    fn if_not_exists(&mut self) -> SqlResult<bool> {
        if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn if_exists(&mut self) -> bool {
        if self.eat_kw("if") {
            let _ = self.eat_kw("exists");
            true
        } else {
            false
        }
    }

    fn create_stmt(&mut self) -> SqlResult<Stmt> {
        if self.eat_kw("table") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.identifier()?;
            self.expect_token(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.column_def()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            Ok(Stmt::CreateTable { name, if_not_exists, columns })
        } else if self.eat_kw("view") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.identifier()?;
            self.expect_kw("as")?;
            let select = self.select_stmt()?;
            Ok(Stmt::CreateView { name, if_not_exists, select })
        } else if self.eat_kw("trigger") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.identifier()?;
            self.expect_kw("instead")?;
            self.expect_kw("of")?;
            let event = if self.eat_kw("insert") {
                TriggerEvent::Insert
            } else if self.eat_kw("update") {
                TriggerEvent::Update
            } else if self.eat_kw("delete") {
                TriggerEvent::Delete
            } else {
                return Err(SqlError::Parse {
                    message: "expected INSERT, UPDATE or DELETE".into(),
                });
            };
            self.expect_kw("on")?;
            let on = self.identifier()?;
            self.expect_kw("begin")?;
            let mut body = Vec::new();
            loop {
                if self.eat_kw("end") {
                    break;
                }
                let stmt = self.statement()?;
                self.expect_token(&Token::Semicolon)?;
                body.push(stmt);
            }
            Ok(Stmt::CreateTrigger { name, if_not_exists, event, on, body })
        } else if self.peek_is_kw("unique") || self.peek_is_kw("index") {
            let unique = self.eat_kw("unique");
            self.expect_kw("index")?;
            let if_not_exists = self.if_not_exists()?;
            let name = self.identifier()?;
            self.expect_kw("on")?;
            let table = self.identifier()?;
            self.expect_token(&Token::LParen)?;
            let column = self.identifier()?;
            if self.eat_token(&Token::Comma) {
                return Err(SqlError::Parse {
                    message: "multi-column indexes are not supported".into(),
                });
            }
            self.expect_token(&Token::RParen)?;
            Ok(Stmt::CreateIndex { name, if_not_exists, unique, table, column })
        } else {
            Err(SqlError::Parse { message: "expected TABLE, VIEW, TRIGGER or INDEX".into() })
        }
    }

    fn drop_stmt(&mut self) -> SqlResult<Stmt> {
        if self.eat_kw("table") {
            let if_exists = self.if_exists();
            Ok(Stmt::DropTable { name: self.identifier()?, if_exists })
        } else if self.eat_kw("view") {
            let if_exists = self.if_exists();
            Ok(Stmt::DropView { name: self.identifier()?, if_exists })
        } else if self.eat_kw("trigger") {
            let if_exists = self.if_exists();
            Ok(Stmt::DropTrigger { name: self.identifier()?, if_exists })
        } else if self.eat_kw("index") {
            let if_exists = self.if_exists();
            Ok(Stmt::DropIndex { name: self.identifier()?, if_exists })
        } else {
            Err(SqlError::Parse { message: "expected TABLE, VIEW, TRIGGER or INDEX".into() })
        }
    }

    fn column_def(&mut self) -> SqlResult<ColumnDef> {
        let name = self.identifier()?;
        // Optional type name: one or more identifiers, optionally followed
        // by a parenthesized size like VARCHAR(40).
        let mut type_name = String::new();
        while let Some(Token::Ident(word)) = self.peek() {
            let upper = word.to_ascii_uppercase();
            if matches!(upper.as_str(), "PRIMARY" | "NOT" | "DEFAULT" | "UNIQUE") {
                break;
            }
            type_name.push_str(word);
            self.pos += 1;
        }
        if self.eat_token(&Token::LParen) {
            // Consume size arguments.
            while !self.eat_token(&Token::RParen) {
                self.next()?;
            }
        }
        let mut primary_key = false;
        let mut not_null = false;
        loop {
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                let _ = self.eat_kw("autoincrement");
                primary_key = true;
            } else if self.eat_kw("not") {
                self.expect_kw("null")?;
                not_null = true;
            } else if self.eat_kw("unique") {
                // Accepted and ignored (single-column pk is the only
                // uniqueness the engine enforces).
            } else if self.eat_kw("default") {
                // Accept a single literal / signed literal and ignore it.
                let _ = self.eat_token(&Token::Minus);
                self.next()?;
            } else {
                break;
            }
        }
        Ok(ColumnDef {
            name,
            affinity: Affinity::from_type_name(&type_name),
            primary_key,
            not_null,
        })
    }

    fn insert_stmt(&mut self) -> SqlResult<Stmt> {
        let or_replace = if self.eat_kw("or") {
            self.expect_kw("replace")?;
            true
        } else {
            false
        };
        self.expect_kw("into")?;
        let table = self.identifier()?;
        let mut columns = Vec::new();
        if self.eat_token(&Token::LParen) {
            loop {
                columns.push(self.identifier()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        }
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect_token(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat_token(&Token::Comma) {
                        break;
                    }
                }
                self.expect_token(&Token::RParen)?;
                rows.push(row);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_is_kw("select") {
            InsertSource::Select(Box::new(self.select_stmt()?))
        } else {
            return Err(SqlError::Parse { message: "expected VALUES or SELECT".into() });
        };
        Ok(Stmt::Insert { table, columns, source, or_replace })
    }

    fn update_stmt(&mut self) -> SqlResult<Stmt> {
        let table = self.identifier()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_token(&Token::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Stmt::Update { table, sets, where_clause })
    }

    fn delete_stmt(&mut self) -> SqlResult<Stmt> {
        self.expect_kw("from")?;
        let table = self.identifier()?;
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Stmt::Delete { table, where_clause })
    }

    fn select_stmt(&mut self) -> SqlResult<SelectStmt> {
        let mut cores = vec![self.select_core()?];
        while self.peek_is_kw("union") {
            // Only UNION ALL is supported (what COW views use).
            self.pos += 1;
            self.expect_kw("all")?;
            cores.push(self.select_core()?);
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("desc") {
                    false
                } else {
                    let _ = self.eat_kw("asc");
                    true
                };
                order_by.push(OrderTerm { expr, ascending });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let (limit, offset) = if self.eat_kw("limit") {
            let first = self.expr()?;
            if self.eat_kw("offset") {
                (Some(first), Some(self.expr()?))
            } else if self.eat_token(&Token::Comma) {
                // SQLite's `LIMIT offset, count` form.
                let count = self.expr()?;
                (Some(count), Some(first))
            } else {
                (Some(first), None)
            }
        } else {
            (None, None)
        };
        Ok(SelectStmt { cores, order_by, limit, offset })
    }

    fn select_core(&mut self) -> SqlResult<SelectCore> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        if !distinct {
            let _ = self.eat_kw("all");
        }
        let mut columns = Vec::new();
        loop {
            columns.push(self.result_column()?);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                let name = self.identifier()?;
                let alias = self.optional_alias()?;
                from.push(TableRef { name, alias });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };
        Ok(SelectCore { distinct, columns, from, where_clause, group_by, having })
    }

    /// Parses an optional `AS alias` or bare-identifier alias.
    fn optional_alias(&mut self) -> SqlResult<Option<String>> {
        if self.eat_kw("as") || matches!(self.peek(), Some(Token::Ident(w)) if !is_clause_kw(w)) {
            Ok(Some(self.identifier()?))
        } else {
            Ok(None)
        }
    }

    fn result_column(&mut self) -> SqlResult<ResultColumn> {
        if self.eat_token(&Token::Star) {
            return Ok(ResultColumn::Star);
        }
        // `table.*`
        if let (Some(Token::Ident(t)), Some(Token::Dot), Some(Token::Star)) =
            (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let t = t.clone();
            self.pos += 3;
            return Ok(ResultColumn::TableStar(t));
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(ResultColumn::Expr { expr, alias })
    }

    /// Entry point for expressions: lowest precedence is OR.
    fn expr(&mut self) -> SqlResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(inner)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> SqlResult<Expr> {
        let lhs = self.additive()?;
        // IS [NOT] NULL.
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }
        // [NOT] IN / LIKE / BETWEEN.
        let negated = self.eat_kw("not");
        if self.eat_kw("in") {
            self.expect_token(&Token::LParen)?;
            if self.peek_is_kw("select") {
                let select = self.select_stmt()?;
                self.expect_token(&Token::RParen)?;
                return Ok(Expr::InSelect {
                    expr: Box::new(lhs),
                    select: Box::new(select),
                    negated,
                });
            }
            let mut list = Vec::new();
            if !self.eat_token(&Token::RParen) {
                loop {
                    list.push(self.expr()?);
                    if !self.eat_token(&Token::Comma) {
                        break;
                    }
                }
                self.expect_token(&Token::RParen)?;
            }
            return Ok(Expr::InList { expr: Box::new(lhs), list, negated });
        }
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(lhs), pattern: Box::new(pattern), negated });
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse {
                message: "expected IN, LIKE or BETWEEN after NOT".into(),
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                Some(Token::Concat) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> SqlResult<Expr> {
        if self.eat_token(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        if self.eat_token(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        match self.next()? {
            Token::Literal(v) => Ok(Expr::Literal(v)),
            Token::Param(i) => Ok(Expr::Param(i)),
            Token::LParen => {
                let e = self.expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(first) => {
                if first.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if first.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Literal(Value::Integer(1)));
                }
                if first.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Literal(Value::Integer(0)));
                }
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    if self.eat_token(&Token::Star) {
                        self.expect_token(&Token::RParen)?;
                        return Ok(Expr::Call {
                            name: first.to_ascii_lowercase(),
                            args: Vec::new(),
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_token(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_token(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect_token(&Token::RParen)?;
                    }
                    return Ok(Expr::Call { name: first.to_ascii_lowercase(), args, star: false });
                }
                // Qualified column?
                if self.eat_token(&Token::Dot) {
                    let name = self.identifier()?;
                    return Ok(Expr::Column { table: Some(first), name });
                }
                Ok(Expr::Column { table: None, name: first })
            }
            Token::QuotedIdent(name) => {
                if self.eat_token(&Token::Dot) {
                    let col = self.identifier()?;
                    return Ok(Expr::Column { table: Some(name), name: col });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(SqlError::Parse { message: format!("unexpected token {other:?}") }),
        }
    }
}

/// Keywords that terminate an implicit alias position.
fn is_clause_kw(word: &str) -> bool {
    matches!(
        word.to_ascii_uppercase().as_str(),
        "FROM"
            | "WHERE"
            | "ORDER"
            | "LIMIT"
            | "UNION"
            | "GROUP"
            | "ON"
            | "AND"
            | "OR"
            | "NOT"
            | "AS"
            | "SET"
            | "VALUES"
            | "BEGIN"
            | "END"
            | "IN"
            | "IS"
            | "LIKE"
            | "BETWEEN"
            | "ASC"
            | "DESC"
            | "HAVING"
            | "OFFSET"
            | "ALL"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE IF NOT EXISTS words (_id INTEGER PRIMARY KEY, word TEXT NOT NULL, frequency INTEGER)",
        )
        .unwrap();
        match stmt {
            Stmt::CreateTable { name, if_not_exists, columns } => {
                assert_eq!(name, "words");
                assert!(if_not_exists);
                assert_eq!(columns.len(), 3);
                assert!(columns[0].primary_key);
                assert!(columns[1].not_null);
                assert_eq!(columns[1].affinity, Affinity::Text);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_paper_cow_view() {
        // The exact view shape from Figure 6 of the paper.
        let stmt = parse_statement(
            "CREATE VIEW tab1_view_A AS \
             SELECT _id,data FROM tab1 WHERE _id NOT IN (SELECT _id FROM tab1_delta_A) \
             UNION ALL SELECT _id,data FROM tab1_delta_A WHERE _whiteout=0",
        )
        .unwrap();
        match stmt {
            Stmt::CreateView { name, select, .. } => {
                assert_eq!(name, "tab1_view_A");
                assert_eq!(select.cores.len(), 2);
                let first = &select.cores[0];
                assert!(matches!(first.where_clause, Some(Expr::InSelect { negated: true, .. })));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_paper_trigger() {
        let stmt = parse_statement(
            "CREATE TRIGGER tab1_A_update INSTEAD OF UPDATE ON tab1_view_A BEGIN \
             INSERT OR REPLACE INTO tab1_delta_A (_id,data,_whiteout) \
             VALUES (NEW._id, NEW.data, 0); END",
        )
        .unwrap();
        match stmt {
            Stmt::CreateTrigger { event, on, body, .. } => {
                assert_eq!(event, TriggerEvent::Update);
                assert_eq!(on, "tab1_view_A");
                assert_eq!(body.len(), 1);
                match &body[0] {
                    Stmt::Insert { or_replace, columns, .. } => {
                        assert!(*or_replace);
                        assert_eq!(columns, &["_id", "data", "_whiteout"]);
                    }
                    other => panic!("wrong body: {other:?}"),
                }
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_select_with_everything() {
        let stmt = parse_statement(
            "SELECT w.word AS w2, count(*) FROM words w \
             WHERE frequency >= 10 AND word LIKE 'a%' ORDER BY word DESC LIMIT 5",
        )
        .unwrap();
        match stmt {
            Stmt::Select(s) => {
                assert_eq!(s.cores[0].columns.len(), 2);
                assert_eq!(s.cores[0].from[0].binding(), "w");
                assert_eq!(s.order_by.len(), 1);
                assert!(!s.order_by[0].ascending);
                assert!(s.limit.is_some());
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_update_delete() {
        let u = parse_statement("UPDATE t SET a = a + 1, b = ? WHERE _id = 3").unwrap();
        assert!(matches!(u, Stmt::Update { ref sets, .. } if sets.len() == 2));
        let d = parse_statement("DELETE FROM t").unwrap();
        assert!(matches!(d, Stmt::Delete { where_clause: None, .. }));
    }

    #[test]
    fn parses_insert_select() {
        let stmt = parse_statement("INSERT INTO dst (a, b) SELECT a, b FROM src").unwrap();
        assert!(matches!(stmt, Stmt::Insert { source: InsertSource::Select(_), .. }));
    }

    #[test]
    fn parses_multiple_statements() {
        let stmts =
            parse_statements("CREATE TABLE t (_id INTEGER PRIMARY KEY); INSERT INTO t VALUES (1);")
                .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn operator_precedence() {
        let stmt = parse_statement("SELECT 1 + 2 * 3").unwrap();
        match stmt {
            Stmt::Select(s) => match &s.cores[0].columns[0] {
                ResultColumn::Expr { expr: Expr::Binary(BinOp::Add, _, rhs), .. } => {
                    assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("wrong parse: {other:?}"),
            },
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn not_requires_operator() {
        assert!(parse_statement("SELECT a NOT 5").is_err());
    }

    #[test]
    fn between_and_in_list() {
        let stmt =
            parse_statement("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1,2,3)").unwrap();
        match stmt {
            Stmt::Select(s) => {
                let w = s.cores[0].where_clause.as_ref().unwrap();
                assert_eq!(w.conjuncts().len(), 2);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn table_star_and_aliases() {
        let stmt = parse_statement("SELECT t.*, u.x FROM t, u WHERE t.id = u.tid").unwrap();
        match stmt {
            Stmt::Select(s) => {
                assert!(
                    matches!(s.cores[0].columns[0], ResultColumn::TableStar(ref n) if n == "t")
                );
                assert_eq!(s.cores[0].from.len(), 2);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn rejects_plain_union() {
        assert!(parse_statement("SELECT 1 UNION SELECT 2").is_err());
    }

    #[test]
    fn parses_create_and_drop_index() {
        let stmt = parse_statement("CREATE INDEX IF NOT EXISTS idx_word ON words(word)").unwrap();
        assert_eq!(
            stmt,
            Stmt::CreateIndex {
                name: "idx_word".into(),
                if_not_exists: true,
                unique: false,
                table: "words".into(),
                column: "word".into(),
            }
        );
        let stmt = parse_statement("CREATE UNIQUE INDEX u_uri ON downloads (uri)").unwrap();
        assert!(matches!(stmt, Stmt::CreateIndex { unique: true, .. }));
        let stmt = parse_statement("DROP INDEX IF EXISTS idx_word").unwrap();
        assert_eq!(stmt, Stmt::DropIndex { name: "idx_word".into(), if_exists: true });
        // Single-column only.
        assert!(parse_statement("CREATE INDEX ix ON t(a, b)").is_err());
    }
}
