//! Multiversion concurrency control: commit stamps, snapshot tickets and
//! the published-snapshot machinery behind [`Database::begin_read`].
//!
//! The design exploits one structural fact: a [`Database`] is only ever
//! mutated by its single owner (the write-lock holder), and snapshots are
//! published exclusively at *committed, quiescent* points. A snapshot is
//! therefore a shallow freeze — every table's rowid map is an
//! `Arc<BTreeMap<_, Arc<VerNode>>>`, so freezing clones a handful of
//! `Arc`s, and a frozen map's heads *are* exactly the committed row
//! versions at freeze time. Readers never traverse version chains;
//! visibility is map membership, which keeps the snapshot read path
//! byte-for-byte the same cost as an ordinary read.
//!
//! Version chains still exist (newest-first, `begin`-stamped) because they
//! are what makes writes cheap in the presence of live snapshots: a write
//! pushes a fresh head above the old version instead of copying the row,
//! and garbage collection is *refcount-driven* — a frozen map pins every
//! version it can see with its own `Arc`, so any chain node whose
//! refcount has returned to one is invisible to every reader and is
//! spliced out in place by the next write to that row (see
//! `table::trim_chain`). Versions older than the oldest live snapshot are
//! by construction unpinned, so the classic "trim below the oldest
//! reader" rule falls out as a consequence rather than being the
//! mechanism. No background thread is involved.
//!
//! [`Database::begin_read`]: crate::Database::begin_read

use crate::db::{Database, TriggerDef, ViewDef};
use crate::planner::FlattenPolicy;
use crate::table::Table;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// MVCC bookkeeping shared between a live [`Database`], every table it
/// owns, and every snapshot it has published. All fields are independent
/// of the database's single-threaded interior, so snapshots can be
/// dropped (and their tickets deregistered) from any thread.
#[derive(Debug)]
pub(crate) struct MvccShared {
    /// Current commit stamp: bumped once per completed mutating
    /// statement. A published snapshot is valid exactly while its stamp
    /// equals this value.
    stamp: AtomicU64,
    /// Stamp of the oldest live snapshot, `u64::MAX` when none are live.
    /// Read lock-free on the write path (stats, trim fast-outs); the
    /// `live` mutex is only touched when snapshots are published or
    /// dropped.
    oldest: AtomicU64,
    /// Live snapshot registry: stamp -> number of outstanding tickets.
    live: Mutex<BTreeMap<u64, usize>>,
    /// Row versions ever created (chain pushes; first versions included).
    versions_created: AtomicU64,
    /// Row versions reclaimed by the in-place chain trim. Versions freed
    /// wholesale when a snapshot's map drops are reclaimed by `Arc` and
    /// not counted here.
    versions_gced: AtomicU64,
    /// Longest version chain observed after any single write.
    max_chain: AtomicU64,
    /// Snapshots published (memoized republications excluded).
    snapshots_published: AtomicU64,
    /// Source of table version tags: every mutation of any attached table
    /// takes a fresh value, so two table states with equal tags are
    /// guaranteed to have identical contents (clones copy the tag along
    /// with the content they share). Lets `begin_read` and
    /// [`SnapshotReader`] rebinds skip unchanged tables.
    table_ver: AtomicU64,
}

impl Default for MvccShared {
    fn default() -> Self {
        MvccShared {
            stamp: AtomicU64::new(0),
            oldest: AtomicU64::new(u64::MAX),
            live: Mutex::new(BTreeMap::new()),
            versions_created: AtomicU64::new(0),
            versions_gced: AtomicU64::new(0),
            max_chain: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            table_ver: AtomicU64::new(0),
        }
    }
}

impl MvccShared {
    /// Current commit stamp.
    pub(crate) fn stamp(&self) -> u64 {
        self.stamp.load(Ordering::Acquire)
    }

    /// Advances the commit stamp (one mutating statement completed).
    pub(crate) fn bump_stamp(&self) {
        self.stamp.fetch_add(1, Ordering::AcqRel);
    }

    /// Mints a fresh table version tag (see `MvccShared::table_ver`).
    pub(crate) fn next_table_ver(&self) -> u64 {
        self.table_ver.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Stamp of the oldest live snapshot, if any.
    pub(crate) fn oldest_live(&self) -> Option<u64> {
        match self.oldest.load(Ordering::Acquire) {
            u64::MAX => None,
            s => Some(s),
        }
    }

    /// Registers a live snapshot at `stamp` and returns the ticket whose
    /// drop deregisters it.
    pub(crate) fn register(self: &Arc<Self>, stamp: u64) -> SnapTicket {
        let mut live = self.live.lock();
        *live.entry(stamp).or_insert(0) += 1;
        let oldest = live.keys().next().copied().unwrap_or(u64::MAX);
        self.oldest.store(oldest, Ordering::Release);
        SnapTicket { mvcc: Arc::clone(self), stamp }
    }

    fn deregister(&self, stamp: u64) {
        let mut live = self.live.lock();
        if let Some(n) = live.get_mut(&stamp) {
            *n -= 1;
            if *n == 0 {
                live.remove(&stamp);
            }
        }
        let oldest = live.keys().next().copied().unwrap_or(u64::MAX);
        self.oldest.store(oldest, Ordering::Release);
    }

    /// Records a version pushed onto a chain now `chain_len` long.
    pub(crate) fn note_version(&self, chain_len: u64) {
        self.versions_created.fetch_add(1, Ordering::Relaxed);
        self.max_chain.fetch_max(chain_len, Ordering::Relaxed);
    }

    /// Records `n` versions reclaimed by the in-place trim.
    pub(crate) fn note_gced(&self, n: u64) {
        self.versions_gced.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one fresh snapshot publication.
    pub(crate) fn note_published(&self) {
        self.snapshots_published.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time counter snapshot.
    pub(crate) fn stats(&self) -> MvccStats {
        MvccStats {
            stamp: self.stamp(),
            live_snapshots: self.live.lock().values().sum(),
            oldest_live: self.oldest_live(),
            versions_created: self.versions_created.load(Ordering::Relaxed),
            versions_gced: self.versions_gced.load(Ordering::Relaxed),
            max_chain: self.max_chain.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time MVCC counters, from [`Database::mvcc_stats`].
///
/// [`Database::mvcc_stats`]: crate::Database::mvcc_stats
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvccStats {
    /// Current commit stamp (mutating statements executed).
    pub stamp: u64,
    /// Snapshots currently live (outstanding [`ReadSnapshot`] handles and
    /// the database's own memoized publication).
    pub live_snapshots: usize,
    /// Stamp of the oldest live snapshot.
    pub oldest_live: Option<u64>,
    /// Row versions ever created.
    pub versions_created: u64,
    /// Row versions reclaimed by the in-place chain trim (versions freed
    /// when a whole snapshot map drops are reclaimed by `Arc` directly
    /// and not counted).
    pub versions_gced: u64,
    /// Longest per-row version chain observed after any single write.
    pub max_chain: u64,
    /// Snapshots published (memoized reuse excluded).
    pub snapshots_published: u64,
}

/// Keeps one snapshot registered in the live set; dropping it (from any
/// thread) deregisters and lets the trim advance past its stamp.
#[derive(Debug)]
pub(crate) struct SnapTicket {
    mvcc: Arc<MvccShared>,
    stamp: u64,
}

impl Drop for SnapTicket {
    fn drop(&mut self) {
        self.mvcc.deregister(self.stamp);
    }
}

/// An immutable, shareable freeze of a whole database at one commit
/// stamp: shallow copies of every table (rowid maps and secondary
/// indexes shared by `Arc`), plus the catalog needed to plan and execute
/// read-only statements.
#[derive(Debug)]
pub(crate) struct DbSnapshot {
    pub(crate) stamp: u64,
    pub(crate) catalog_gen: u64,
    pub(crate) flatten_policy: FlattenPolicy,
    pub(crate) tables: Arc<BTreeMap<String, Arc<Table>>>,
    pub(crate) views: Arc<BTreeMap<String, Arc<ViewDef>>>,
    pub(crate) triggers: Arc<BTreeMap<String, Arc<TriggerDef>>>,
    /// Keeps the snapshot registered for GC while any handle is alive.
    _ticket: SnapTicket,
}

impl DbSnapshot {
    pub(crate) fn new(
        stamp: u64,
        catalog_gen: u64,
        flatten_policy: FlattenPolicy,
        tables: Arc<BTreeMap<String, Arc<Table>>>,
        views: Arc<BTreeMap<String, Arc<ViewDef>>>,
        triggers: Arc<BTreeMap<String, Arc<TriggerDef>>>,
        ticket: SnapTicket,
    ) -> Self {
        DbSnapshot { stamp, catalog_gen, flatten_policy, tables, views, triggers, _ticket: ticket }
    }
}

// The whole point: a snapshot can be handed to reader threads while the
// writer keeps mutating. Everything inside is either plain immutable data
// or `Arc`/atomic-shared.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DbSnapshot>();
    assert_send_sync::<ReadSnapshot>();
};

/// A cheap, clonable handle on an immutable database snapshot, returned
/// by [`Database::begin_read`]. All read-only statements executed through
/// a [`SnapshotReader`] bound to this handle see exactly the committed
/// state at [`ReadSnapshot::stamp`], no matter what the writer does
/// concurrently.
///
/// [`Database::begin_read`]: crate::Database::begin_read
#[derive(Debug, Clone)]
pub struct ReadSnapshot {
    pub(crate) snap: Arc<DbSnapshot>,
}

impl ReadSnapshot {
    /// Commit stamp this snapshot was taken at.
    pub fn stamp(&self) -> u64 {
        self.snap.stamp
    }

    /// Catalog generation this snapshot was taken at (changes only on
    /// DDL/rollback, so readers can keep cached plans across data-only
    /// retargets).
    pub fn catalog_gen(&self) -> u64 {
        self.snap.catalog_gen
    }
}

/// A reusable executor for read-only statements against
/// [`ReadSnapshot`]s.
///
/// Internally this is a thin private [`Database`] whose tables are
/// re-pointed (shallowly) at whatever snapshot is bound; its prepared-
/// statement and plan caches persist across rebinds, so steady-state
/// snapshot reads pay no re-parse or re-plan cost. Retargeting to a new
/// snapshot of the *same* database costs O(#tables) `Arc` clones; the
/// catalog (views/triggers) is only re-cloned when the snapshot's catalog
/// generation actually changed.
///
/// A reader must only ever be bound to snapshots of one logical database
/// (stamps from different databases are not comparable). One reader per
/// thread per authority is the intended shape.
#[derive(Debug, Default)]
pub struct SnapshotReader {
    db: Database,
    stamp: Option<u64>,
    catalog_gen: Option<u64>,
}

impl SnapshotReader {
    /// Creates an empty reader (binds lazily on first use).
    pub fn new() -> Self {
        SnapshotReader::default()
    }

    /// Points the reader at `snap` and returns the database view to run
    /// `query()` against. No-op when already bound to the same stamp.
    pub fn bind(&mut self, snap: &ReadSnapshot) -> &Database {
        let s = &snap.snap;
        if self.stamp != Some(s.stamp) {
            self.db.retarget(s, self.catalog_gen != Some(s.catalog_gen));
            self.stamp = Some(s.stamp);
            self.catalog_gen = Some(s.catalog_gen);
        }
        &self.db
    }

    /// The underlying read-only database view (last bound snapshot).
    pub fn db(&self) -> &Database {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn seeded() -> Database {
        let mut db = Database::new();
        db.execute_batch(
            "CREATE TABLE t (_id INTEGER PRIMARY KEY, data TEXT);
             INSERT INTO t (data) VALUES ('a'), ('b'), ('c');",
        )
        .unwrap();
        db
    }

    #[test]
    fn snapshot_is_immutable_under_writes() {
        let mut db = seeded();
        let snap = db.begin_read().unwrap();
        let mut reader = SnapshotReader::new();
        db.execute("UPDATE t SET data = 'X' WHERE _id = 1", &[]).unwrap();
        db.execute("DELETE FROM t WHERE _id = 2", &[]).unwrap();
        db.execute("INSERT INTO t (data) VALUES ('d')", &[]).unwrap();
        let rs = reader.bind(&snap).query("SELECT data FROM t ORDER BY _id", &[]).unwrap();
        let got: Vec<&Value> = rs.rows.iter().map(|r| &r[0]).collect();
        assert_eq!(
            got,
            vec![&Value::Text("a".into()), &Value::Text("b".into()), &Value::Text("c".into())]
        );
        // The live database sees the new state.
        let live = db.query("SELECT data FROM t ORDER BY _id", &[]).unwrap();
        assert_eq!(live.rows.len(), 3);
        assert_eq!(live.rows[0][0], Value::Text("X".into()));
    }

    #[test]
    fn publication_is_memoized_until_a_mutation() {
        let mut db = seeded();
        let s1 = db.begin_read().unwrap();
        let s2 = db.begin_read().unwrap();
        assert_eq!(s1.stamp(), s2.stamp());
        assert_eq!(db.mvcc_stats().snapshots_published, 1);
        db.execute("INSERT INTO t (data) VALUES ('d')", &[]).unwrap();
        let s3 = db.begin_read().unwrap();
        assert!(s3.stamp() > s1.stamp());
        assert_eq!(db.mvcc_stats().snapshots_published, 2);
    }

    #[test]
    fn begin_read_refuses_inside_a_transaction() {
        let mut db = seeded();
        db.begin().unwrap();
        assert!(db.begin_read().is_none(), "uncommitted state must not be published");
        db.rollback().unwrap();
        assert!(db.begin_read().is_some());
    }

    #[test]
    fn dropping_snapshots_lets_gc_reclaim_versions() {
        let mut db = seeded();
        let snap = db.begin_read().unwrap();
        for i in 0..10 {
            db.execute("UPDATE t SET data = ?1 WHERE _id = 1", &[Value::Text(format!("v{i}"))])
                .unwrap();
        }
        let pinned = db.mvcc_stats();
        assert!(pinned.live_snapshots >= 1);
        assert!(pinned.max_chain >= 2, "a live snapshot must pin old versions");
        drop(snap);
        assert_eq!(db.mvcc_stats().live_snapshots, 0);
        // The next write to the row splices the whole stale tail: only
        // one live version per row (3 rows) remains.
        db.execute("UPDATE t SET data = 'final' WHERE _id = 1", &[]).unwrap();
        let after = db.mvcc_stats();
        assert_eq!(after.versions_created - after.versions_gced, 3);
        assert_eq!(db.mvcc_stats().max_chain, 2, "the trim kept every chain short");
    }

    #[test]
    fn snapshot_reader_keeps_plans_across_data_retargets() {
        let mut db = seeded();
        let mut reader = SnapshotReader::new();
        let s1 = db.begin_read().unwrap();
        reader.bind(&s1).query("SELECT data FROM t WHERE _id = ?1", &[Value::Integer(1)]).unwrap();
        db.execute("INSERT INTO t (data) VALUES ('d')", &[]).unwrap();
        let s2 = db.begin_read().unwrap();
        assert_eq!(s1.catalog_gen(), s2.catalog_gen());
        reader.db().stats.reset();
        let rs = reader
            .bind(&s2)
            .query("SELECT data FROM t WHERE _id = ?1", &[Value::Integer(4)])
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Text("d".into()));
        assert_eq!(reader.db().stats.stmt_cache_hits.get(), 1, "no re-parse across retarget");
        assert_eq!(reader.db().stats.stmt_cache_misses.get(), 0);
        // DDL bumps the generation; the reader re-clones the catalog.
        db.execute_batch("CREATE VIEW v AS SELECT data FROM t WHERE _id > 2").unwrap();
        let s3 = db.begin_read().unwrap();
        assert_ne!(s3.catalog_gen(), s2.catalog_gen());
        let rs = reader.bind(&s3).query("SELECT data FROM v ORDER BY data", &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn paged_tables_suppress_snapshots() {
        use maxoid_block::MemDevice;
        let mut db = seeded();
        assert!(db.begin_read().is_some());
        let tier = crate::heap::HeapTier::new(Box::new(MemDevice::with_sector_size(64)), 2);
        db.attach_heap(tier, 0);
        assert!(db.table("t").unwrap().is_paged());
        assert!(db.begin_read().is_none(), "paged rows cannot be aliased lock-free");
    }
}
