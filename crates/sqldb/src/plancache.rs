//! Hot-path plan caching: structural fingerprints plus a generation-
//! checked cache for flatten results and value-free access plans.
//!
//! The COW proxy executes the same statement *shapes* over and over
//! (paper §5.2: every delegate read goes through a COW view). Parsing is
//! already memoized by the statement cache; this module memoizes the two
//! remaining per-execution planner walks:
//!
//! - [`try_flatten`]'s UNION ALL view rewrite, keyed by a structural
//!   fingerprint of the `SELECT` (so internally-built statements — the
//!   INSTEAD OF trigger path builds them without SQL text — hit too);
//! - the per-table-access [`AccessPlan`], keyed by `(table, binding,
//!   WHERE-clause fingerprint)`.
//!
//! Entries carry the catalog generation they were computed under; any DDL
//! (index or table churn, view/trigger churn from COW setup, rollback of a
//! catalog snapshot) bumps the generation and drops the cache, so a stale
//! plan can never be served. Fingerprint collisions are handled by storing
//! the key statement and comparing structurally on hit — a colliding
//! entry is simply replaced, never served.
//!
//! [`try_flatten`]: crate::planner::try_flatten
//! [`AccessPlan`]: crate::planner::AccessPlan

use crate::ast::{Expr, OrderTerm, ResultColumn, SelectCore, SelectStmt};
use crate::planner::{AccessPlan, FlattenPolicy};
use crate::value::Value;
use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Cache-size bound; reaching it clears the map (same policy as the
/// statement cache — workloads that legitimately need more distinct
/// shapes re-warm in one pass).
const PLAN_CACHE_CAP: usize = 512;

/// A cached flatten decision for one SELECT shape.
struct SelectEntry {
    generation: u64,
    policy: FlattenPolicy,
    /// The statement the entry was computed from, for collision checks.
    key: SelectStmt,
    /// `try_flatten`'s answer: the rewritten statement, or `None` when
    /// the rewrite does not apply (also worth caching — the walk that
    /// refuses is the same walk that succeeds).
    flattened: Option<Arc<SelectStmt>>,
}

/// A cached value-free access plan for one `(table, binding, WHERE)`.
struct AccessEntry {
    generation: u64,
    table: String,
    binding: String,
    key: Expr,
    plan: Arc<AccessPlan>,
}

/// Plan cache plus the catalog generation counter that invalidates it.
///
/// Lives inside [`Database`](crate::Database) behind interior mutability
/// so cache fills can happen on the `&self` query path.
#[derive(Default)]
pub(crate) struct PlanCache {
    /// Disabled caches make every lookup a computed miss (used by the
    /// equivalence proptests and the before/after bench cells).
    disabled: Cell<bool>,
    generation: Cell<u64>,
    selects: RefCell<HashMap<u64, SelectEntry>>,
    accesses: RefCell<HashMap<u64, AccessEntry>>,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("generation", &self.generation.get())
            .field("disabled", &self.disabled.get())
            .field("selects", &self.selects.borrow().len())
            .field("accesses", &self.accesses.borrow().len())
            .finish()
    }
}

/// Outcome of a select-cache probe.
pub(crate) enum SelectLookup {
    /// Cache hit: the memoized flatten answer.
    Hit(Option<Arc<SelectStmt>>),
    /// Miss; caller computes and [`PlanCache::insert_select`]s.
    Miss,
    /// Caching disabled; caller computes and does not insert.
    Bypass,
}

impl PlanCache {
    /// True while caching is enabled.
    pub(crate) fn enabled(&self) -> bool {
        !self.disabled.get()
    }

    /// Enables or disables caching. Disabling drops all entries so a
    /// later re-enable cannot serve pre-toggle plans.
    pub(crate) fn set_enabled(&self, on: bool) {
        self.disabled.set(!on);
        if !on {
            self.selects.borrow_mut().clear();
            self.accesses.borrow_mut().clear();
        }
    }

    /// Current catalog generation.
    pub(crate) fn generation(&self) -> u64 {
        self.generation.get()
    }

    /// Bumps the catalog generation and drops every cached plan.
    /// Returns true when live entries were actually invalidated (the
    /// caller counts those into `db.stats`).
    pub(crate) fn bump_generation(&self) -> bool {
        self.generation.set(self.generation.get().wrapping_add(1));
        let had_entries = !self.selects.borrow().is_empty() || !self.accesses.borrow().is_empty();
        if had_entries {
            self.selects.borrow_mut().clear();
            self.accesses.borrow_mut().clear();
        }
        had_entries
    }

    /// Probes the flatten cache for `stmt` under `policy`.
    pub(crate) fn lookup_select(&self, stmt: &SelectStmt, policy: FlattenPolicy) -> SelectLookup {
        if self.disabled.get() {
            return SelectLookup::Bypass;
        }
        let fp = fingerprint_select(stmt);
        if let Some(e) = self.selects.borrow().get(&fp) {
            if e.generation == self.generation.get() && e.policy == policy && e.key == *stmt {
                return SelectLookup::Hit(e.flattened.clone());
            }
        }
        SelectLookup::Miss
    }

    /// Records a flatten answer computed after a miss.
    pub(crate) fn insert_select(
        &self,
        stmt: &SelectStmt,
        policy: FlattenPolicy,
        flattened: Option<Arc<SelectStmt>>,
    ) {
        if self.disabled.get() {
            return;
        }
        let mut map = self.selects.borrow_mut();
        if map.len() >= PLAN_CACHE_CAP {
            map.clear();
        }
        map.insert(
            fingerprint_select(stmt),
            SelectEntry { generation: self.generation.get(), policy, key: stmt.clone(), flattened },
        );
    }

    /// Probes the access-plan cache for one `(table, binding, WHERE)`.
    pub(crate) fn lookup_access(
        &self,
        table: &str,
        binding: &str,
        where_clause: &Expr,
    ) -> Option<Arc<AccessPlan>> {
        if self.disabled.get() {
            return None;
        }
        let fp = fingerprint_access(table, binding, where_clause);
        let map = self.accesses.borrow();
        let e = map.get(&fp)?;
        if e.generation == self.generation.get()
            && e.table == table
            && e.binding == binding
            && e.key == *where_clause
        {
            return Some(e.plan.clone());
        }
        None
    }

    /// Records an access plan computed after a miss.
    pub(crate) fn insert_access(
        &self,
        table: &str,
        binding: &str,
        where_clause: &Expr,
        plan: Arc<AccessPlan>,
    ) {
        if self.disabled.get() {
            return;
        }
        let mut map = self.accesses.borrow_mut();
        if map.len() >= PLAN_CACHE_CAP {
            map.clear();
        }
        map.insert(
            fingerprint_access(table, binding, where_clause),
            AccessEntry {
                generation: self.generation.get(),
                table: table.to_string(),
                binding: binding.to_string(),
                key: where_clause.clone(),
                plan,
            },
        );
    }
}

fn fingerprint_access(table: &str, binding: &str, where_clause: &Expr) -> u64 {
    let mut h = DefaultHasher::new();
    table.hash(&mut h);
    binding.hash(&mut h);
    hash_expr(&mut h, where_clause);
    h.finish()
}

/// Structural fingerprint of a SELECT. Two statements that compare equal
/// hash equal; collisions are tolerated (the cache re-checks equality).
pub(crate) fn fingerprint_select(stmt: &SelectStmt) -> u64 {
    let mut h = DefaultHasher::new();
    hash_select(&mut h, stmt);
    h.finish()
}

fn hash_select(h: &mut DefaultHasher, stmt: &SelectStmt) {
    stmt.cores.len().hash(h);
    for core in &stmt.cores {
        hash_core(h, core);
    }
    stmt.order_by.len().hash(h);
    for term in &stmt.order_by {
        hash_order(h, term);
    }
    hash_opt_expr(h, stmt.limit.as_ref());
    hash_opt_expr(h, stmt.offset.as_ref());
}

fn hash_core(h: &mut DefaultHasher, core: &SelectCore) {
    core.distinct.hash(h);
    core.columns.len().hash(h);
    for rc in &core.columns {
        match rc {
            ResultColumn::Star => 0u8.hash(h),
            ResultColumn::TableStar(t) => {
                1u8.hash(h);
                t.hash(h);
            }
            ResultColumn::Expr { expr, alias } => {
                2u8.hash(h);
                hash_expr(h, expr);
                alias.hash(h);
            }
        }
    }
    core.from.len().hash(h);
    for tref in &core.from {
        tref.name.hash(h);
        tref.alias.hash(h);
    }
    hash_opt_expr(h, core.where_clause.as_ref());
    core.group_by.len().hash(h);
    for e in &core.group_by {
        hash_expr(h, e);
    }
    hash_opt_expr(h, core.having.as_ref());
}

fn hash_order(h: &mut DefaultHasher, term: &OrderTerm) {
    hash_expr(h, &term.expr);
    term.ascending.hash(h);
}

fn hash_opt_expr(h: &mut DefaultHasher, e: Option<&Expr>) {
    match e {
        Some(e) => {
            1u8.hash(h);
            hash_expr(h, e);
        }
        None => 0u8.hash(h),
    }
}

fn hash_expr(h: &mut DefaultHasher, e: &Expr) {
    match e {
        Expr::Literal(v) => {
            0u8.hash(h);
            hash_value(h, v);
        }
        Expr::Column { table, name } => {
            1u8.hash(h);
            table.hash(h);
            name.hash(h);
        }
        Expr::Param(n) => {
            2u8.hash(h);
            n.hash(h);
        }
        Expr::Unary(op, inner) => {
            3u8.hash(h);
            std::mem::discriminant(op).hash(h);
            hash_expr(h, inner);
        }
        Expr::Binary(op, l, r) => {
            4u8.hash(h);
            std::mem::discriminant(op).hash(h);
            hash_expr(h, l);
            hash_expr(h, r);
        }
        Expr::IsNull { expr, negated } => {
            5u8.hash(h);
            negated.hash(h);
            hash_expr(h, expr);
        }
        Expr::InList { expr, list, negated } => {
            6u8.hash(h);
            negated.hash(h);
            hash_expr(h, expr);
            list.len().hash(h);
            for item in list {
                hash_expr(h, item);
            }
        }
        Expr::InSelect { expr, select, negated } => {
            7u8.hash(h);
            negated.hash(h);
            hash_expr(h, expr);
            hash_select(h, select);
        }
        Expr::Like { expr, pattern, negated } => {
            8u8.hash(h);
            negated.hash(h);
            hash_expr(h, expr);
            hash_expr(h, pattern);
        }
        Expr::Between { expr, low, high, negated } => {
            9u8.hash(h);
            negated.hash(h);
            hash_expr(h, expr);
            hash_expr(h, low);
            hash_expr(h, high);
        }
        Expr::Call { name, args, star } => {
            10u8.hash(h);
            name.hash(h);
            star.hash(h);
            args.len().hash(h);
            for a in args {
                hash_expr(h, a);
            }
        }
    }
}

fn hash_value(h: &mut DefaultHasher, v: &Value) {
    match v {
        Value::Null => 0u8.hash(h),
        Value::Integer(i) => {
            1u8.hash(h);
            i.hash(h);
        }
        Value::Real(r) => {
            2u8.hash(h);
            r.to_bits().hash(h);
        }
        Value::Text(s) => {
            3u8.hash(h);
            s.hash(h);
        }
        Value::Blob(b) => {
            4u8.hash(h);
            b.hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::Stmt;

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Stmt::Select(s) => s,
            _ => unreachable!(),
        }
    }

    #[test]
    fn equal_statements_fingerprint_equal() {
        let a = select("SELECT a, b FROM t WHERE a = ?1 ORDER BY b LIMIT 3");
        let b = select("SELECT a, b FROM t WHERE a = ?1 ORDER BY b LIMIT 3");
        assert_eq!(a, b);
        assert_eq!(fingerprint_select(&a), fingerprint_select(&b));
    }

    #[test]
    fn different_statements_fingerprint_differently() {
        let base = select("SELECT a FROM t WHERE a = 1");
        for other in [
            "SELECT a FROM t WHERE a = 2",
            "SELECT a FROM t WHERE a = 1.0",
            "SELECT a FROM t WHERE a = '1'",
            "SELECT a FROM t WHERE b = 1",
            "SELECT a FROM u WHERE a = 1",
            "SELECT a FROM t WHERE a = ?1",
            "SELECT a, b FROM t WHERE a = 1",
            "SELECT a FROM t WHERE a = 1 ORDER BY a",
            "SELECT a FROM t WHERE a = 1 LIMIT 1",
            "SELECT DISTINCT a FROM t WHERE a = 1",
        ] {
            assert_ne!(
                fingerprint_select(&base),
                fingerprint_select(&select(other)),
                "collision with {other}"
            );
        }
    }

    #[test]
    fn generation_bump_invalidates() {
        let cache = PlanCache::default();
        let s = select("SELECT a FROM t");
        cache.insert_select(&s, FlattenPolicy::Sqlite386, None);
        assert!(matches!(
            cache.lookup_select(&s, FlattenPolicy::Sqlite386),
            SelectLookup::Hit(None)
        ));
        // A different policy is a miss even at the same generation.
        assert!(matches!(cache.lookup_select(&s, FlattenPolicy::Off), SelectLookup::Miss));
        assert!(cache.bump_generation());
        assert!(matches!(cache.lookup_select(&s, FlattenPolicy::Sqlite386), SelectLookup::Miss));
        // Bumping an empty cache invalidates nothing.
        assert!(!cache.bump_generation());
    }

    #[test]
    fn disabled_cache_bypasses() {
        let cache = PlanCache::default();
        let s = select("SELECT a FROM t");
        cache.set_enabled(false);
        assert!(matches!(cache.lookup_select(&s, FlattenPolicy::Sqlite386), SelectLookup::Bypass));
        cache.insert_select(&s, FlattenPolicy::Sqlite386, None);
        cache.set_enabled(true);
        // The insert while disabled must not have landed.
        assert!(matches!(cache.lookup_select(&s, FlattenPolicy::Sqlite386), SelectLookup::Miss));
    }
}
