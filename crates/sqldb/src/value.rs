//! SQL values with SQLite-style dynamic typing.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
    /// Binary blob.
    Blob(Vec<u8>),
}

impl Value {
    /// Returns true for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the value as an integer if it is numeric (or numeric text).
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            Value::Real(r) => Some(*r as i64),
            Value::Text(t) => t.trim().parse().ok(),
            _ => None,
        }
    }

    /// Returns the value as a float if it is numeric (or numeric text).
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            Value::Text(t) => t.trim().parse().ok(),
            _ => None,
        }
    }

    /// Returns the text content for text values.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// SQL truthiness: NULL is unknown, numbers are true when non-zero,
    /// text is true when it parses to a non-zero number.
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Integer(i) => Some(*i != 0),
            Value::Real(r) => Some(*r != 0.0),
            Value::Text(t) => Some(t.trim().parse::<f64>().map(|v| v != 0.0).unwrap_or(false)),
            Value::Blob(_) => Some(false),
        }
    }

    /// Storage-class rank used for cross-type ordering (SQLite rules):
    /// NULL < numeric < text < blob.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Integer(_) | Value::Real(_) => 1,
            Value::Text(_) => 2,
            Value::Blob(_) => 3,
        }
    }

    /// Total order over values, used by ORDER BY and index keys.
    ///
    /// Unlike SQL comparison operators this never returns "unknown":
    /// NULLs sort first, then numerics, text, blobs.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Integer(a), Value::Integer(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Integer(a), Value::Real(b)) => {
                (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal)
            }
            (Value::Real(a), Value::Integer(b)) => {
                a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal)
            }
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Blob(a), Value::Blob(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }

    /// SQL `=` comparison: NULL on either side yields NULL (None).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL ordering comparison: NULL on either side yields NULL (None).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Renders the value as SQL literal text (for debugging and golden
    /// tests).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Integer(i) => i.to_string(),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() {
                    format!("{r:.1}")
                } else {
                    r.to_string()
                }
            }
            Value::Text(t) => format!("'{}'", t.replace('\'', "''")),
            Value::Blob(b) => {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                format!("x'{hex}'")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(t) => f.write_str(t),
            Value::Blob(b) => write!(f, "<blob {} bytes>", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Integer(v as i64)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Blob(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn cross_type_total_order() {
        let null = Value::Null;
        let int = Value::Integer(5);
        let text = Value::Text("a".into());
        let blob = Value::Blob(vec![0]);
        assert_eq!(null.total_cmp(&int), Ordering::Less);
        assert_eq!(int.total_cmp(&text), Ordering::Less);
        assert_eq!(text.total_cmp(&blob), Ordering::Less);
    }

    #[test]
    fn numeric_affinity_in_comparison() {
        assert_eq!(Value::Integer(2).sql_cmp(&Value::Real(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Real(2.0).sql_eq(&Value::Integer(2)), Some(true));
    }

    #[test]
    fn truthiness_rules() {
        assert_eq!(Value::Null.truthiness(), None);
        assert_eq!(Value::Integer(0).truthiness(), Some(false));
        assert_eq!(Value::Integer(-1).truthiness(), Some(true));
        assert_eq!(Value::Text("1".into()).truthiness(), Some(true));
        assert_eq!(Value::Text("abc".into()).truthiness(), Some(false));
    }

    #[test]
    fn sql_literal_quoting() {
        assert_eq!(Value::Text("it's".into()).to_sql_literal(), "'it''s'");
        assert_eq!(Value::Integer(7).to_sql_literal(), "7");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Blob(vec![0xab, 0x01]).to_sql_literal(), "x'ab01'");
    }

    #[test]
    fn text_to_number_coercion() {
        assert_eq!(Value::Text(" 42 ".into()).as_integer(), Some(42));
        assert_eq!(Value::Text("4.5".into()).as_real(), Some(4.5));
        assert_eq!(Value::Text("x".into()).as_integer(), None);
    }
}
