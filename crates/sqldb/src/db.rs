//! The database: schema registry and public execution API.

use crate::ast::{SelectStmt, Stmt, TriggerEvent};
use crate::error::{SqlError, SqlResult};
use crate::expr::{SubqueryCache, TriggerCtx};
use crate::parser::{parse_statement, parse_statements};
use crate::planner::FlattenPolicy;
use crate::table::Table;
use crate::value::Value;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};

/// A stored view definition.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View name (original casing).
    pub name: String,
    /// Defining query.
    pub select: SelectStmt,
    /// Output column names, resolved at creation time.
    pub columns: Vec<String>,
}

/// A stored trigger definition.
#[derive(Debug, Clone)]
pub struct TriggerDef {
    /// Trigger name.
    pub name: String,
    /// Event (INSTEAD OF insert/update/delete).
    pub event: TriggerEvent,
    /// View the trigger is attached to (lowercased key form).
    pub on: String,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Execution counters, used by tests and the flattening ablation bench.
#[derive(Debug, Default)]
pub struct Stats {
    /// Rows visited by table scans.
    pub rows_scanned: Cell<u64>,
    /// Primary-key point lookups taken instead of scans.
    pub point_lookups: Cell<u64>,
    /// Secondary-index probes (equality or range) taken instead of scans.
    pub index_probes: Cell<u64>,
    /// Rows materialized (cloned) out of storage by scans — rows that
    /// passed the filter. Filtered-out rows are visited borrowed and never
    /// counted here.
    pub rows_cloned: Cell<u64>,
    /// Queries rewritten by UNION ALL subquery flattening.
    pub flattened_queries: Cell<u64>,
    /// Queries that materialized a view (no flattening).
    pub materialized_views: Cell<u64>,
    /// EXPLAIN-style access-path notes, one per table access, capped at
    /// [`ACCESS_PATH_LOG_CAP`] entries.
    pub access_paths: RefCell<Vec<String>>,
}

/// Maximum retained entries in [`Stats::access_paths`].
pub const ACCESS_PATH_LOG_CAP: usize = 64;

impl Stats {
    /// Resets all counters.
    pub fn reset(&self) {
        self.rows_scanned.set(0);
        self.point_lookups.set(0);
        self.index_probes.set(0);
        self.rows_cloned.set(0);
        self.flattened_queries.set(0);
        self.materialized_views.set(0);
        self.access_paths.borrow_mut().clear();
    }

    /// Records one EXPLAIN-style access-path line (dropped past the cap).
    pub fn note_access_path(&self, line: String) {
        let mut log = self.access_paths.borrow_mut();
        if log.len() < ACCESS_PATH_LOG_CAP {
            log.push(line);
        }
    }

    /// Drains and returns the recorded access-path lines.
    pub fn take_access_paths(&self) -> Vec<String> {
        std::mem::take(&mut *self.access_paths.borrow_mut())
    }
}

/// A query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows in result order.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Returns the single value of a 1×1 result, if it has that shape.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => Some(&self.rows[0][0]),
            _ => None,
        }
    }

    /// Returns the index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Result rows for SELECT statements.
    pub rows: Option<ResultSet>,
    /// Rows affected for INSERT/UPDATE/DELETE.
    pub rows_affected: usize,
    /// Rowid of the last inserted row, when the statement inserted one.
    pub last_insert_id: Option<i64>,
}

impl ExecOutcome {
    pub(crate) fn ddl() -> Self {
        ExecOutcome { rows: None, rows_affected: 0, last_insert_id: None }
    }
}

/// Maximum view-expansion depth, guarding against cyclic view definitions.
pub(crate) const MAX_DEPTH: usize = 32;

/// An embedded SQL database.
///
/// Implements the subset of SQLite that Android's system content providers
/// and Maxoid's COW proxy rely on: base tables with integer primary keys,
/// SQL views (including `UNION ALL` compound views), INSTEAD OF triggers,
/// and a planner that performs the subquery-flattening optimization the
/// paper's COW views depend on for performance (§5.2).
///
/// # Examples
///
/// ```
/// use maxoid_sqldb::{Database, Value};
///
/// let mut db = Database::new();
/// db.execute_batch(
///     "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT);
///      INSERT INTO words (word) VALUES ('hello'), ('world');",
/// )
/// .unwrap();
/// let rs = db
///     .query("SELECT word FROM words WHERE _id = ?", &[Value::Integer(2)])
///     .unwrap();
/// assert_eq!(rs.rows[0][0], Value::Text("world".into()));
/// ```
#[derive(Debug, Default)]
pub struct Database {
    pub(crate) tables: BTreeMap<String, Table>,
    pub(crate) views: BTreeMap<String, ViewDef>,
    pub(crate) triggers: BTreeMap<String, TriggerDef>,
    /// Planner policy for UNION ALL view flattening.
    pub flatten_policy: FlattenPolicy,
    /// Execution counters.
    pub stats: Stats,
    /// Prepared-statement cache: SQL text -> parsed AST. Providers issue
    /// the same statement shapes repeatedly; SQLite's compiled-statement
    /// cache plays the same role on Android.
    stmt_cache: RefCell<HashMap<String, Stmt>>,
    /// Snapshot taken at BEGIN, restored on ROLLBACK. `None` = autocommit.
    tx_snapshot: Option<TxSnapshot>,
}

/// Schema + data snapshot for transaction rollback.
#[derive(Debug)]
pub(crate) struct TxSnapshot {
    tables: BTreeMap<String, Table>,
    views: BTreeMap<String, ViewDef>,
    triggers: BTreeMap<String, TriggerDef>,
}

impl Database {
    /// Creates an empty database with the default (modern) planner policy.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a database with a specific flattening policy.
    pub fn with_policy(policy: FlattenPolicy) -> Self {
        Database { flatten_policy: policy, ..Database::default() }
    }

    /// Executes a single statement with positional parameters.
    pub fn execute(&mut self, sql: &str, params: &[Value]) -> SqlResult<ExecOutcome> {
        let stmt = self.prepare(sql)?;
        self.exec_stmt(&stmt, params, None)
    }

    /// Parses a statement through the prepared-statement cache.
    fn prepare(&self, sql: &str) -> SqlResult<Stmt> {
        if let Some(stmt) = self.stmt_cache.borrow().get(sql) {
            return Ok(stmt.clone());
        }
        let stmt = parse_statement(sql)?;
        let mut cache = self.stmt_cache.borrow_mut();
        if cache.len() >= 512 {
            cache.clear();
        }
        cache.insert(sql.to_string(), stmt.clone());
        Ok(stmt)
    }

    /// Executes multiple `;`-separated statements without parameters.
    pub fn execute_batch(&mut self, sql: &str) -> SqlResult<()> {
        for stmt in parse_statements(sql)? {
            self.exec_stmt(&stmt, &[], None)?;
        }
        Ok(())
    }

    /// Runs a query and returns its rows.
    ///
    /// Unlike [`Database::execute`] this takes `&self`: SELECT cannot
    /// mutate, so concurrent readers can share the database.
    pub fn query(&self, sql: &str, params: &[Value]) -> SqlResult<ResultSet> {
        let stmt = self.prepare(sql)?;
        match stmt {
            Stmt::Select(s) => {
                let cache: SubqueryCache = SubqueryCache::default();
                self.exec_select(&s, params, None, &cache, 0)
            }
            _ => Err(SqlError::Unsupported("query() requires a SELECT".into())),
        }
    }

    /// Executes a pre-parsed statement (used by the COW proxy and trigger
    /// bodies).
    pub fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        params: &[Value],
        trigger: Option<&TriggerCtx>,
    ) -> SqlResult<ExecOutcome> {
        crate::exec::exec_stmt(self, stmt, params, trigger)
    }

    /// Executes a pre-parsed SELECT.
    pub(crate) fn exec_select(
        &self,
        stmt: &SelectStmt,
        params: &[Value],
        trigger: Option<&TriggerCtx>,
        cache: &SubqueryCache,
        depth: usize,
    ) -> SqlResult<ResultSet> {
        crate::exec::exec_select(self, stmt, params, trigger, cache, depth)
    }

    /// Starts a transaction (snapshot isolation by full copy; the engine
    /// is in-memory, so BEGIN is O(data) instead of journalled).
    pub fn begin(&mut self) -> SqlResult<()> {
        if self.tx_snapshot.is_some() {
            return Err(SqlError::Unsupported(
                "cannot start a transaction within a transaction".into(),
            ));
        }
        self.tx_snapshot = Some(TxSnapshot {
            tables: self.tables.clone(),
            views: self.views.clone(),
            triggers: self.triggers.clone(),
        });
        Ok(())
    }

    /// Commits the open transaction.
    pub fn commit(&mut self) -> SqlResult<()> {
        self.tx_snapshot
            .take()
            .map(|_| ())
            .ok_or_else(|| SqlError::Unsupported("cannot commit - no transaction is active".into()))
    }

    /// Rolls back the open transaction, restoring the BEGIN snapshot.
    pub fn rollback(&mut self) -> SqlResult<()> {
        match self.tx_snapshot.take() {
            Some(snap) => {
                self.tables = snap.tables;
                self.views = snap.views;
                self.triggers = snap.triggers;
                Ok(())
            }
            None => Err(SqlError::Unsupported("cannot rollback - no transaction is active".into())),
        }
    }

    /// Returns true while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.tx_snapshot.is_some()
    }

    /// Returns true if a base table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&key(name))
    }

    /// Returns true if a view with this name exists.
    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(&key(name))
    }

    /// Returns true if a trigger with this name exists.
    pub fn has_trigger(&self, name: &str) -> bool {
        self.triggers.contains_key(&key(name))
    }

    /// Returns a base table by name.
    pub fn table(&self, name: &str) -> SqlResult<&Table> {
        self.tables.get(&key(name)).ok_or_else(|| SqlError::NoSuchTable(name.to_string()))
    }

    /// Returns a mutable base table by name.
    pub fn table_mut(&mut self, name: &str) -> SqlResult<&mut Table> {
        self.tables.get_mut(&key(name)).ok_or_else(|| SqlError::NoSuchTable(name.to_string()))
    }

    /// Returns a view definition by name.
    pub fn view(&self, name: &str) -> SqlResult<&ViewDef> {
        self.views.get(&key(name)).ok_or_else(|| SqlError::NoSuchTable(name.to_string()))
    }

    /// Returns the trigger attached to `view_name` for `event`, if any.
    pub fn trigger_for(&self, view_name: &str, event: TriggerEvent) -> Option<&TriggerDef> {
        self.triggers.values().find(|t| t.on == key(view_name) && t.event == event)
    }

    /// Lists base table names (lowercased keys).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Lists view names (lowercased keys).
    pub fn view_names(&self) -> Vec<String> {
        self.views.keys().cloned().collect()
    }

    /// Returns output column names for a table or view.
    pub fn relation_columns(&self, name: &str) -> SqlResult<Vec<String>> {
        if let Some(t) = self.tables.get(&key(name)) {
            return Ok(t.schema.column_names());
        }
        if let Some(v) = self.views.get(&key(name)) {
            return Ok(v.columns.clone());
        }
        Err(SqlError::NoSuchTable(name.to_string()))
    }
}

/// Normalizes an object name to its registry key.
pub(crate) fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_insert_query_roundtrip() {
        let mut db = Database::new();
        db.execute_batch(
            "CREATE TABLE t (_id INTEGER PRIMARY KEY, data TEXT);
             INSERT INTO t (data) VALUES ('a'), ('b'), ('c');",
        )
        .unwrap();
        let rs = db.query("SELECT * FROM t ORDER BY _id", &[]).unwrap();
        assert_eq!(rs.columns, vec!["_id", "data"]);
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[2], vec![Value::Integer(3), Value::Text("c".into())]);
    }

    #[test]
    fn query_rejects_non_select() {
        let db = Database::new();
        assert!(db.query("DELETE FROM t", &[]).is_err());
    }

    #[test]
    fn scalar_helper() {
        let mut db = Database::new();
        db.execute_batch(
            "CREATE TABLE t (_id INTEGER PRIMARY KEY);
             INSERT INTO t VALUES (1),(2),(3);",
        )
        .unwrap();
        let rs = db.query("SELECT count(*) FROM t", &[]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Integer(3)));
    }
}
