//! The database: schema registry and public execution API.

use crate::ast::{Expr, SelectStmt, Stmt, TriggerEvent};
use crate::error::{SqlError, SqlResult};
use crate::expr::{SubqueryCache, TriggerCtx};
use crate::mvcc::{DbSnapshot, MvccShared, MvccStats, ReadSnapshot};
use crate::parser::{parse_statement, parse_statements};
use crate::plancache::{PlanCache, SelectLookup};
use crate::planner::{plan_access, try_flatten, AccessPlan, FlattenPolicy};
use crate::table::Table;
use crate::value::Value;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Memoized `Arc`'d catalog clones keyed by catalog generation, so
/// repeated snapshot publications between DDL statements share one copy
/// of the view/trigger definitions. The maps hold `Arc`'d definitions,
/// so even the rebuild after a generation bump is refcount bumps plus
/// key clones — at fleet scale the system database carries thousands of
/// per-tenant COW views/triggers, and a deep catalog clone per fork was
/// the dominant cost of snapshot publication.
type CatalogMemo =
    (u64, Arc<BTreeMap<String, Arc<ViewDef>>>, Arc<BTreeMap<String, Arc<TriggerDef>>>);

/// Memoized `(view, event) -> trigger name` index keyed by catalog
/// generation, replacing the O(#triggers) linear scan in
/// [`Database::trigger_for`]. At fleet scale one system database holds
/// thousands of per-tenant COW triggers, and every view write performs a
/// trigger lookup.
type TriggerMemo = (u64, BTreeMap<(String, TriggerEvent), String>);

/// A stored view definition.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View name (original casing).
    pub name: String,
    /// Defining query.
    pub select: SelectStmt,
    /// Output column names, resolved at creation time.
    pub columns: Vec<String>,
}

/// A stored trigger definition.
#[derive(Debug, Clone)]
pub struct TriggerDef {
    /// Trigger name.
    pub name: String,
    /// Event (INSTEAD OF insert/update/delete).
    pub event: TriggerEvent,
    /// View the trigger is attached to (lowercased key form).
    pub on: String,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Execution counters, used by tests and the flattening ablation bench.
#[derive(Debug)]
pub struct Stats {
    /// Rows visited by table scans.
    pub rows_scanned: Cell<u64>,
    /// Primary-key point lookups taken instead of scans.
    pub point_lookups: Cell<u64>,
    /// Secondary-index probes (equality or range) taken instead of scans.
    pub index_probes: Cell<u64>,
    /// Rows materialized (cloned) out of storage by scans — rows that
    /// passed the filter. Filtered-out rows are visited borrowed and never
    /// counted here.
    pub rows_cloned: Cell<u64>,
    /// Queries rewritten by UNION ALL subquery flattening.
    pub flattened_queries: Cell<u64>,
    /// Queries that materialized a view (no flattening).
    pub materialized_views: Cell<u64>,
    /// Prepared-statement cache hits (SQL text found already parsed).
    pub stmt_cache_hits: Cell<u64>,
    /// Prepared-statement cache misses (SQL text parsed afresh).
    pub stmt_cache_misses: Cell<u64>,
    /// Plan-cache hits: a flatten decision or access plan was reused.
    pub plan_cache_hits: Cell<u64>,
    /// Plan-cache misses: a flatten decision or access plan was computed.
    pub plan_cache_misses: Cell<u64>,
    /// Catalog-generation bumps (DDL, rollback) that dropped live cached
    /// plans.
    pub plan_cache_invalidations: Cell<u64>,
    /// EXPLAIN-style access-path notes, one per table access, capped at
    /// [`Stats::access_path_cap`] entries (default
    /// [`ACCESS_PATH_LOG_CAP`]).
    pub access_paths: RefCell<Vec<String>>,
    /// Retention cap for [`Stats::access_paths`]; configurable so long
    /// journaled replays can keep their full EXPLAIN output.
    pub access_path_cap: Cell<usize>,
    /// Access-path lines dropped because the cap was reached. Non-zero
    /// means [`Stats::access_paths`] is an incomplete record.
    pub access_paths_dropped: Cell<u64>,
}

/// Default retention cap for [`Stats::access_paths`].
pub const ACCESS_PATH_LOG_CAP: usize = 64;

impl Default for Stats {
    fn default() -> Self {
        Stats {
            rows_scanned: Cell::new(0),
            point_lookups: Cell::new(0),
            index_probes: Cell::new(0),
            rows_cloned: Cell::new(0),
            flattened_queries: Cell::new(0),
            materialized_views: Cell::new(0),
            stmt_cache_hits: Cell::new(0),
            stmt_cache_misses: Cell::new(0),
            plan_cache_hits: Cell::new(0),
            plan_cache_misses: Cell::new(0),
            plan_cache_invalidations: Cell::new(0),
            access_paths: RefCell::new(Vec::new()),
            access_path_cap: Cell::new(ACCESS_PATH_LOG_CAP),
            access_paths_dropped: Cell::new(0),
        }
    }
}

impl Stats {
    /// Resets all counters. The configured cap is preserved.
    pub fn reset(&self) {
        self.rows_scanned.set(0);
        self.point_lookups.set(0);
        self.index_probes.set(0);
        self.rows_cloned.set(0);
        self.flattened_queries.set(0);
        self.materialized_views.set(0);
        self.stmt_cache_hits.set(0);
        self.stmt_cache_misses.set(0);
        self.plan_cache_hits.set(0);
        self.plan_cache_misses.set(0);
        self.plan_cache_invalidations.set(0);
        self.access_paths.borrow_mut().clear();
        self.access_paths_dropped.set(0);
    }

    /// Sets the access-path retention cap. Does not truncate lines already
    /// retained.
    pub fn set_access_path_cap(&self, cap: usize) {
        self.access_path_cap.set(cap);
    }

    /// Records one EXPLAIN-style access-path line. Past the cap the line
    /// is dropped and [`Stats::access_paths_dropped`] is incremented, so
    /// truncation is always detectable.
    pub fn note_access_path(&self, line: String) {
        self.note_access_path_with(|| line);
    }

    /// Like [`Stats::note_access_path`], but the line is only rendered
    /// when it will actually be retained — steady-state workloads past
    /// the cap skip the formatting allocation entirely.
    pub fn note_access_path_with(&self, line: impl FnOnce() -> String) {
        let mut log = self.access_paths.borrow_mut();
        if log.len() < self.access_path_cap.get() {
            log.push(line());
        } else {
            self.access_paths_dropped.set(self.access_paths_dropped.get() + 1);
        }
    }

    /// Drains and returns the recorded access-path lines.
    pub fn take_access_paths(&self) -> Vec<String> {
        std::mem::take(&mut *self.access_paths.borrow_mut())
    }
}

/// A query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows in result order.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Returns the single value of a 1×1 result, if it has that shape.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => Some(&self.rows[0][0]),
            _ => None,
        }
    }

    /// Returns the index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Result rows for SELECT statements.
    pub rows: Option<ResultSet>,
    /// Rows affected for INSERT/UPDATE/DELETE.
    pub rows_affected: usize,
    /// Rowid of the last inserted row, when the statement inserted one.
    pub last_insert_id: Option<i64>,
}

impl ExecOutcome {
    pub(crate) fn ddl() -> Self {
        ExecOutcome { rows: None, rows_affected: 0, last_insert_id: None }
    }
}

/// Maximum view-expansion depth, guarding against cyclic view definitions.
pub(crate) const MAX_DEPTH: usize = 32;

/// An embedded SQL database.
///
/// Implements the subset of SQLite that Android's system content providers
/// and Maxoid's COW proxy rely on: base tables with integer primary keys,
/// SQL views (including `UNION ALL` compound views), INSTEAD OF triggers,
/// and a planner that performs the subquery-flattening optimization the
/// paper's COW views depend on for performance (§5.2).
///
/// # Examples
///
/// ```
/// use maxoid_sqldb::{Database, Value};
///
/// let mut db = Database::new();
/// db.execute_batch(
///     "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT);
///      INSERT INTO words (word) VALUES ('hello'), ('world');",
/// )
/// .unwrap();
/// let rs = db
///     .query("SELECT word FROM words WHERE _id = ?", &[Value::Integer(2)])
///     .unwrap();
/// assert_eq!(rs.rows[0][0], Value::Text("world".into()));
/// ```
#[derive(Debug, Default)]
pub struct Database {
    pub(crate) tables: BTreeMap<String, Table>,
    pub(crate) views: BTreeMap<String, Arc<ViewDef>>,
    pub(crate) triggers: BTreeMap<String, Arc<TriggerDef>>,
    /// Planner policy for UNION ALL view flattening.
    pub flatten_policy: FlattenPolicy,
    /// Execution counters.
    pub stats: Stats,
    /// Prepared-statement cache: SQL text -> parsed AST. Providers issue
    /// the same statement shapes repeatedly; SQLite's compiled-statement
    /// cache plays the same role on Android. Entries are `Arc` so a hit
    /// is a refcount bump, not a deep clone of the statement tree.
    stmt_cache: RefCell<HashMap<String, Arc<Stmt>>>,
    /// Flatten-rewrite and access-plan cache, invalidated by the catalog
    /// generation counter (bumped on any DDL and on rollback).
    pub(crate) plan_cache: PlanCache,
    /// Snapshot taken at BEGIN, restored on ROLLBACK. `None` = autocommit.
    tx_snapshot: Option<TxSnapshot>,
    /// Optional journal sink; when attached, successful mutations are
    /// logged logically (statement text + parameters) under
    /// `journal_name`.
    journal: Option<maxoid_journal::SinkRef>,
    /// Component name used in emitted `Sql` records (e.g.
    /// `db.user_dictionary`).
    journal_name: String,
    /// Open journal transaction id mirroring `tx_snapshot`.
    journal_txn: Option<u64>,
    /// Heap tier applied to every table (existing and future) so large
    /// row payloads page to a block device instead of staying resident.
    pub(crate) heap: Option<crate::heap::HeapCfg>,
    /// Shared MVCC bookkeeping: the commit stamp, the live-snapshot
    /// registry driving version GC, and the version/GC counters. Shared
    /// (`Arc`) with every table and every published snapshot.
    pub(crate) mvcc: Arc<MvccShared>,
    /// Memoized publication: the snapshot handed out by the last
    /// [`Database::begin_read`], reused until the next mutation so
    /// reader-heavy workloads pay the freeze cost once per write, not
    /// once per read.
    published: RefCell<Option<Arc<DbSnapshot>>>,
    /// See [`CatalogMemo`].
    catalog_memo: RefCell<Option<CatalogMemo>>,
    /// See [`TriggerMemo`].
    trigger_memo: RefCell<Option<TriggerMemo>>,
    /// The frozen tables of the last publication, keyed by table name
    /// and shared (`Arc`) with the snapshots handed out. `begin_read`
    /// patches this map in place (`Arc::make_mut`, so a still-live
    /// older snapshot degrades to one O(#tables) map clone rather than
    /// corruption), re-freezing only tables whose version tag changed —
    /// publication is O(tables touched since the last publication)
    /// instead of O(all tables), the difference between µs and ms once
    /// a fleet-scale database holds thousands of per-tenant delta
    /// tables. Mutation paths evict their table's entry eagerly
    /// ([`Database::table_mut`]) so the cache never pins dead row
    /// versions against the refcount-driven chain trim.
    frozen_cache: RefCell<Arc<BTreeMap<String, Arc<Table>>>>,
    /// Names evicted from `frozen_cache` since the last publication —
    /// exactly the tables `begin_read` must re-freeze. `None` means the
    /// cache cannot be trusted incrementally (initial state, rollback,
    /// heap attach) and the next publication walks every table once,
    /// after which tracking resumes.
    frozen_dirty: RefCell<Option<std::collections::BTreeSet<String>>>,
    /// A published snapshot this (reader-private) database is bound to.
    /// When set, read-path table lookups resolve from the snapshot's
    /// frozen map instead of `self.tables`, which stays empty — so a
    /// [`crate::SnapshotReader`] rebind is O(1) regardless of how many
    /// tables the database holds. Writer databases never set this.
    bound: Option<Arc<DbSnapshot>>,
}

// Threading contract: a live `Database` is `Send` but deliberately *not*
// `Sync` — the statement/plan caches use `RefCell`/`Cell` for zero-cost
// single-threaded interior mutability, so all *mutation* goes through
// its single owner (one write lock per authority). Concurrent readers do
// NOT share this object: they call [`Database::begin_read`] (through the
// write-lock holder) and execute against the immutable `Send + Sync`
// snapshot it publishes, via their own thread-local
// [`crate::SnapshotReader`]. Cross-authority parallelism still comes
// from having many databases; intra-authority read parallelism comes
// from snapshots.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Database>();
};

/// Schema + data snapshot for transaction rollback.
#[derive(Debug)]
pub(crate) struct TxSnapshot {
    tables: BTreeMap<String, Table>,
    views: BTreeMap<String, Arc<ViewDef>>,
    triggers: BTreeMap<String, Arc<TriggerDef>>,
}

/// Point-in-time copy of the [`Stats`] counters, taken before a statement
/// runs so the per-statement delta can be mirrored into the obs registry.
/// Only constructed while tracing is enabled; `db.stats` itself stays the
/// source of truth either way (obs mirroring reads it, never writes it).
struct StatsMark {
    rows_scanned: u64,
    point_lookups: u64,
    index_probes: u64,
    rows_cloned: u64,
    flattened_queries: u64,
    materialized_views: u64,
    stmt_cache_hits: u64,
    stmt_cache_misses: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    plan_cache_invalidations: u64,
    access_paths_len: usize,
}

impl StatsMark {
    fn take(stats: &Stats) -> Option<StatsMark> {
        if !maxoid_obs::enabled() {
            return None;
        }
        Some(StatsMark {
            rows_scanned: stats.rows_scanned.get(),
            point_lookups: stats.point_lookups.get(),
            index_probes: stats.index_probes.get(),
            rows_cloned: stats.rows_cloned.get(),
            flattened_queries: stats.flattened_queries.get(),
            materialized_views: stats.materialized_views.get(),
            stmt_cache_hits: stats.stmt_cache_hits.get(),
            stmt_cache_misses: stats.stmt_cache_misses.get(),
            plan_cache_hits: stats.plan_cache_hits.get(),
            plan_cache_misses: stats.plan_cache_misses.get(),
            plan_cache_invalidations: stats.plan_cache_invalidations.get(),
            access_paths_len: stats.access_paths.borrow().len(),
        })
    }

    /// Mirrors the counter growth since the mark into the obs registry and
    /// annotates the statement span with any new access-path choices.
    fn mirror(self, stats: &Stats, sp: &mut maxoid_obs::SpanGuard) {
        maxoid_obs::counter_add("sqldb.rows_scanned", stats.rows_scanned.get() - self.rows_scanned);
        maxoid_obs::counter_add(
            "sqldb.point_lookups",
            stats.point_lookups.get() - self.point_lookups,
        );
        maxoid_obs::counter_add("sqldb.index_probes", stats.index_probes.get() - self.index_probes);
        maxoid_obs::counter_add("sqldb.rows_cloned", stats.rows_cloned.get() - self.rows_cloned);
        maxoid_obs::counter_add(
            "sqldb.flattened_queries",
            stats.flattened_queries.get() - self.flattened_queries,
        );
        maxoid_obs::counter_add(
            "sqldb.materialized_views",
            stats.materialized_views.get() - self.materialized_views,
        );
        maxoid_obs::counter_add(
            "sqldb.stmt_cache_hits",
            stats.stmt_cache_hits.get() - self.stmt_cache_hits,
        );
        maxoid_obs::counter_add(
            "sqldb.stmt_cache_misses",
            stats.stmt_cache_misses.get() - self.stmt_cache_misses,
        );
        maxoid_obs::counter_add(
            "sqldb.plan_cache_hits",
            stats.plan_cache_hits.get() - self.plan_cache_hits,
        );
        maxoid_obs::counter_add(
            "sqldb.plan_cache_misses",
            stats.plan_cache_misses.get() - self.plan_cache_misses,
        );
        maxoid_obs::counter_add(
            "sqldb.plan_cache_invalidations",
            stats.plan_cache_invalidations.get() - self.plan_cache_invalidations,
        );
        let paths = stats.access_paths.borrow();
        for line in paths.iter().skip(self.access_paths_len) {
            sp.field("access_path", line.clone());
        }
    }
}

impl Database {
    /// Creates an empty database with the default (modern) planner policy.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a database with a specific flattening policy.
    pub fn with_policy(policy: FlattenPolicy) -> Self {
        Database { flatten_policy: policy, ..Database::default() }
    }

    /// Attaches a journal sink. `name` identifies this database in `Sql`
    /// records so recovery can route them back (e.g. `db.media`).
    pub fn set_journal(&mut self, sink: maxoid_journal::SinkRef, name: &str) {
        self.journal = Some(sink);
        self.journal_name = name.to_string();
    }

    /// Detaches the journal sink, returning it if one was attached.
    pub fn take_journal(&mut self) -> Option<maxoid_journal::SinkRef> {
        self.journal.take()
    }

    /// Returns the journal component name set by [`Database::set_journal`].
    pub fn journal_name(&self) -> &str {
        &self.journal_name
    }

    /// True for statements that must be journaled: anything that can
    /// mutate state. SELECT is read-only; BEGIN/COMMIT/ROLLBACK are
    /// covered by dedicated transaction records.
    fn loggable(stmt: &Stmt) -> bool {
        !matches!(stmt, Stmt::Select(_) | Stmt::Begin | Stmt::Commit | Stmt::Rollback)
    }

    fn emit_sql(&self, sql: &str, params: &[Value]) {
        if let Some(j) = &self.journal {
            j.emit(maxoid_journal::Record::Sql {
                db: self.journal_name.clone(),
                sql: sql.to_string(),
                params: params.iter().map(value_to_param).collect(),
            });
        }
    }

    /// Executes a single statement with positional parameters.
    pub fn execute(&mut self, sql: &str, params: &[Value]) -> SqlResult<ExecOutcome> {
        let mut sp = maxoid_obs::span("sqldb.execute");
        sp.field_with("sql", || sql.to_string());
        let mark = StatsMark::take(&self.stats);
        let stmt = self.prepare(sql)?;
        let out = self.exec_stmt(&stmt, params, None)?;
        if let Some(mark) = mark {
            mark.mirror(&self.stats, &mut sp);
        }
        if self.journal.is_some() && Self::loggable(&stmt) {
            self.emit_sql(sql, params);
        }
        Ok(out)
    }

    /// Parses a statement through the prepared-statement cache. Hit and
    /// miss counts land in `db.stats` unconditionally and are mirrored
    /// into the obs registry by the caller's [`StatsMark`].
    fn prepare(&self, sql: &str) -> SqlResult<Arc<Stmt>> {
        if !self.plan_cache.enabled() {
            return Ok(Arc::new(parse_statement(sql)?));
        }
        if let Some(stmt) = self.stmt_cache.borrow().get(sql) {
            self.stats.stmt_cache_hits.set(self.stats.stmt_cache_hits.get() + 1);
            return Ok(Arc::clone(stmt));
        }
        let mut sp = maxoid_obs::span("sqldb.parse");
        sp.field_with("sql", || sql.to_string());
        self.stats.stmt_cache_misses.set(self.stats.stmt_cache_misses.get() + 1);
        let stmt = Arc::new(parse_statement(sql)?);
        let mut cache = self.stmt_cache.borrow_mut();
        if cache.len() >= 512 {
            cache.clear();
        }
        cache.insert(sql.to_string(), Arc::clone(&stmt));
        Ok(stmt)
    }

    /// Enables or disables the statement and plan caches together.
    ///
    /// With caches off, every statement is re-parsed and re-planned —
    /// the equivalence proptests and the `cache` bench's "before" cells
    /// run in this mode. Turning caches off drops all cached entries.
    pub fn set_statement_caches(&self, on: bool) {
        self.plan_cache.set_enabled(on);
        if !on {
            self.stmt_cache.borrow_mut().clear();
        }
    }

    /// True while the statement and plan caches are enabled (the default).
    pub fn statement_caches_enabled(&self) -> bool {
        self.plan_cache.enabled()
    }

    /// Current catalog generation. Bumped by every DDL statement and by
    /// rollback (which restores an older catalog); cached plans from
    /// earlier generations are never served.
    pub fn catalog_generation(&self) -> u64 {
        self.plan_cache.generation()
    }

    /// Bumps the catalog generation, dropping all cached plans. Counted
    /// in `stats.plan_cache_invalidations` when live entries were
    /// dropped.
    pub(crate) fn bump_catalog_generation(&self) {
        if self.plan_cache.bump_generation() {
            self.stats.plan_cache_invalidations.set(self.stats.plan_cache_invalidations.get() + 1);
        }
    }

    /// Runs `stmt` through the flatten cache: returns the memoized (or
    /// freshly computed) UNION ALL view rewrite, or `None` when flattening
    /// does not apply.
    pub(crate) fn cached_flatten(&self, stmt: &SelectStmt) -> Option<Arc<SelectStmt>> {
        match self.plan_cache.lookup_select(stmt, self.flatten_policy) {
            SelectLookup::Hit(flattened) => {
                self.stats.plan_cache_hits.set(self.stats.plan_cache_hits.get() + 1);
                flattened
            }
            SelectLookup::Miss => {
                self.stats.plan_cache_misses.set(self.stats.plan_cache_misses.get() + 1);
                let flattened = try_flatten(self, stmt).map(Arc::new);
                self.plan_cache.insert_select(stmt, self.flatten_policy, flattened.clone());
                flattened
            }
            SelectLookup::Bypass => try_flatten(self, stmt).map(Arc::new),
        }
    }

    /// Returns the (cached) value-free access plan for one table access.
    pub(crate) fn cached_access_plan(
        &self,
        table: &Table,
        binding: &str,
        where_clause: Option<&Expr>,
    ) -> Arc<AccessPlan> {
        let is_const = crate::exec::is_const;
        let Some(w) = where_clause else {
            // No WHERE clause always plans a full scan; not worth caching.
            return Arc::new(plan_access(table, binding, None, &is_const));
        };
        if !self.plan_cache.enabled() {
            return Arc::new(plan_access(table, binding, Some(w), &is_const));
        }
        if let Some(plan) = self.plan_cache.lookup_access(&table.schema.name, binding, w) {
            self.stats.plan_cache_hits.set(self.stats.plan_cache_hits.get() + 1);
            return plan;
        }
        self.stats.plan_cache_misses.set(self.stats.plan_cache_misses.get() + 1);
        let plan = Arc::new(plan_access(table, binding, Some(w), &is_const));
        self.plan_cache.insert_access(&table.schema.name, binding, w, plan.clone());
        plan
    }

    /// Executes multiple `;`-separated statements without parameters.
    ///
    /// When a journal is attached the whole batch text is logged as one
    /// `Sql` record after every statement succeeds (the lexer does not
    /// track source spans, so per-statement text is unavailable). A batch
    /// that fails midway is therefore not journaled — callers that need
    /// crash consistency across fallible batches bracket them in a
    /// transaction, whose rollback discards the partial work anyway.
    pub fn execute_batch(&mut self, sql: &str) -> SqlResult<()> {
        let mut sp = maxoid_obs::span("sqldb.batch");
        let mark = StatsMark::take(&self.stats);
        let stmts = parse_statements(sql)?;
        sp.field_with("statements", || stmts.len().to_string());
        for stmt in &stmts {
            self.exec_stmt(stmt, &[], None)?;
        }
        if let Some(mark) = mark {
            mark.mirror(&self.stats, &mut sp);
        }
        if self.journal.is_some() && stmts.iter().any(Self::loggable) {
            self.emit_sql(sql, &[]);
        }
        Ok(())
    }

    /// Runs a query and returns its rows.
    ///
    /// Unlike [`Database::execute`] this takes `&self`: SELECT cannot
    /// mutate, so concurrent readers can share the database.
    pub fn query(&self, sql: &str, params: &[Value]) -> SqlResult<ResultSet> {
        let mut sp = maxoid_obs::span("sqldb.query");
        sp.field_with("sql", || sql.to_string());
        let mark = StatsMark::take(&self.stats);
        let stmt = self.prepare(sql)?;
        match &*stmt {
            Stmt::Select(s) => {
                let cache: SubqueryCache = SubqueryCache::default();
                let rs = self.exec_select(&s, params, None, &cache, 0)?;
                if let Some(mark) = mark {
                    sp.field_with("rows", || rs.rows.len().to_string());
                    mark.mirror(&self.stats, &mut sp);
                }
                Ok(rs)
            }
            _ => Err(SqlError::Unsupported("query() requires a SELECT".into())),
        }
    }

    /// Executes a pre-parsed statement (used by the COW proxy and trigger
    /// bodies).
    pub fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        params: &[Value],
        trigger: Option<&TriggerCtx>,
    ) -> SqlResult<ExecOutcome> {
        let out = crate::exec::exec_stmt(self, stmt, params, trigger);
        if Self::loggable(stmt) {
            // Conservatively also on error: a failed multi-row statement
            // may have mutated before failing. Over-invalidation only
            // costs the next `begin_read` a cheap re-freeze.
            self.note_mutation();
        }
        out
    }

    /// Retracts the memoized published snapshot and advances the commit
    /// stamp. Must run after anything that can change table data, the
    /// catalog, or row storage; missing a call here is a snapshot
    /// staleness bug, an extra call is just a cheap re-freeze.
    pub(crate) fn note_mutation(&mut self) {
        self.published.borrow_mut().take();
        self.mvcc.bump_stamp();
    }

    /// Captures an immutable snapshot of the current committed state for
    /// lock-free readers, or `None` when one cannot be published — inside
    /// an open transaction (uncommitted state must stay private) or when
    /// any table has paged its rows to the heap tier.
    ///
    /// Publication is incremental: a table is shallow-frozen (the `Arc`
    /// of its version-chain map cloned, see [`crate::table`]) only when
    /// its version tag changed since the last publication; unchanged
    /// tables reuse the previous frozen copy by `Arc`. A fleet-scale
    /// database with thousands of quiescent per-tenant delta tables
    /// therefore pays per-publication cost proportional to the tables
    /// actually touched, not the catalog size. The result is memoized
    /// until the next mutation, so a read storm between two writes
    /// performs exactly one freeze. Statements run against the snapshot
    /// through a [`crate::SnapshotReader`] and see exactly this commit
    /// stamp's state, while the owner keeps executing writes
    /// concurrently.
    pub fn begin_read(&self) -> Option<ReadSnapshot> {
        let _sp = maxoid_obs::span("sqldb.begin_read");
        if self.tx_snapshot.is_some() {
            return None;
        }
        let stamp = self.mvcc.stamp();
        if let Some(snap) = self.published.borrow().as_ref() {
            if snap.stamp == stamp {
                return Some(ReadSnapshot { snap: Arc::clone(snap) });
            }
        }
        let tables = {
            let mut cache = self.frozen_cache.borrow_mut();
            let mut dirty_opt = self.frozen_dirty.borrow_mut();
            let mut incremental = false;
            if let Some(dirty) = dirty_opt.as_mut() {
                // Re-freeze exactly the tables mutated since the last
                // publication; everything else keeps its frozen copy.
                if !dirty.is_empty() {
                    let map = Arc::make_mut(&mut *cache);
                    loop {
                        let name = match dirty.iter().next() {
                            Some(n) => n.clone(),
                            None => break,
                        };
                        dirty.remove(&name);
                        match self.tables.get(&name) {
                            Some(t) => {
                                let frozen = Arc::new(t.freeze()?);
                                map.insert(name, frozen);
                            }
                            None => {
                                map.remove(&name);
                            }
                        }
                    }
                }
                // A name-count mismatch means the dirty tracking missed
                // a create/drop; fall back to the full walk.
                incremental = cache.len() == self.tables.len();
            }
            #[cfg(debug_assertions)]
            if incremental {
                for (name, t) in &self.tables {
                    let f = cache.get(name).expect("frozen cache covers every table");
                    debug_assert_eq!(
                        f.version_tag(),
                        t.version_tag(),
                        "stale frozen cache for table {name}: a mutation path \
                         bypassed table_mut/uncache_frozen"
                    );
                }
            }
            if !incremental {
                let mut map = BTreeMap::new();
                for (name, t) in &self.tables {
                    let frozen = match cache.get(name) {
                        Some(f) if f.version_tag() == t.version_tag() && !t.is_paged() => {
                            Arc::clone(f)
                        }
                        _ => Arc::new(t.freeze()?),
                    };
                    map.insert(name.clone(), frozen);
                }
                *cache = Arc::new(map);
                *dirty_opt = Some(std::collections::BTreeSet::new());
            }
            Arc::clone(&*cache)
        };
        let gen = self.catalog_generation();
        let (views, triggers) = {
            let mut memo = self.catalog_memo.borrow_mut();
            match memo.as_ref() {
                Some((g, v, t)) if *g == gen => (Arc::clone(v), Arc::clone(t)),
                _ => {
                    let v = Arc::new(self.views.clone());
                    let t = Arc::new(self.triggers.clone());
                    *memo = Some((gen, Arc::clone(&v), Arc::clone(&t)));
                    (v, t)
                }
            }
        };
        let snap = Arc::new(DbSnapshot::new(
            stamp,
            gen,
            self.flatten_policy,
            tables,
            views,
            triggers,
            self.mvcc.register(stamp),
        ));
        self.mvcc.note_published();
        maxoid_obs::counter_add("sqldb.snapshots_published", 1);
        *self.published.borrow_mut() = Some(Arc::clone(&snap));
        Some(ReadSnapshot { snap })
    }

    /// Point-in-time MVCC counters: commit stamp, live snapshots,
    /// version-chain and GC statistics.
    pub fn mvcc_stats(&self) -> MvccStats {
        self.mvcc.stats()
    }

    /// Re-points this (reader-private) database at a published snapshot.
    /// O(1) for table data — the snapshot is bound, not copied, and
    /// read-path lookups resolve through it (see `Database::bound`).
    /// Catalog re-clone plus plan-cache invalidation happen only when
    /// the snapshot's catalog generation changed.
    pub(crate) fn retarget(&mut self, snap: &Arc<DbSnapshot>, catalog_changed: bool) {
        self.bound = Some(Arc::clone(snap));
        self.flatten_policy = snap.flatten_policy;
        if catalog_changed {
            self.views = (*snap.views).clone();
            self.triggers = (*snap.triggers).clone();
            self.bump_catalog_generation();
        }
    }

    /// Read-path table lookup: the bound snapshot when this database is
    /// a snapshot reader, the live tables otherwise. `name` must already
    /// be lowercased with [`key`].
    pub(crate) fn read_table(&self, name: &str) -> Option<&Table> {
        if let Some(b) = &self.bound {
            return b.tables.get(name).map(|a| &**a);
        }
        self.tables.get(name)
    }

    /// Executes a pre-parsed SELECT.
    pub(crate) fn exec_select(
        &self,
        stmt: &SelectStmt,
        params: &[Value],
        trigger: Option<&TriggerCtx>,
        cache: &SubqueryCache,
        depth: usize,
    ) -> SqlResult<ResultSet> {
        crate::exec::exec_select(self, stmt, params, trigger, cache, depth)
    }

    /// Starts a transaction. The rollback snapshot shares row storage
    /// with the live tables (`Arc`-structural, privatized copy-on-write
    /// at the next mutation), so BEGIN is O(#tables) for resident data;
    /// only paged tables still materialize a private copy.
    pub fn begin(&mut self) -> SqlResult<()> {
        if self.tx_snapshot.is_some() {
            return Err(SqlError::Unsupported(
                "cannot start a transaction within a transaction".into(),
            ));
        }
        self.tx_snapshot = Some(TxSnapshot {
            tables: self.tables.clone(),
            views: self.views.clone(),
            triggers: self.triggers.clone(),
        });
        if let Some(j) = &self.journal {
            self.journal_txn = Some(j.begin_txn());
        }
        Ok(())
    }

    /// Commits the open transaction.
    pub fn commit(&mut self) -> SqlResult<()> {
        self.tx_snapshot.take().map(|_| ()).ok_or_else(|| {
            SqlError::Unsupported("cannot commit - no transaction is active".into())
        })?;
        if let (Some(j), Some(txn)) = (&self.journal, self.journal_txn.take()) {
            j.emit(maxoid_journal::Record::TxnCommit { txn });
        }
        Ok(())
    }

    /// Rolls back the open transaction, restoring the BEGIN snapshot.
    pub fn rollback(&mut self) -> SqlResult<()> {
        match self.tx_snapshot.take() {
            Some(snap) => {
                self.tables = snap.tables;
                self.views = snap.views;
                self.triggers = snap.triggers;
                // Restored tables may carry tags the cache also holds
                // for different (post-BEGIN) content only in the absence
                // of mutation; drop everything rather than reason about
                // it — rollback is rare and a full re-freeze is cheap.
                *self.frozen_cache.borrow_mut() = Arc::new(BTreeMap::new());
                *self.frozen_dirty.borrow_mut() = None;
                // The restored catalog may differ from the one cached
                // plans were computed against.
                self.bump_catalog_generation();
                self.note_mutation();
                if let (Some(j), Some(txn)) = (&self.journal, self.journal_txn.take()) {
                    j.emit(maxoid_journal::Record::TxnRollback { txn });
                }
                Ok(())
            }
            None => Err(SqlError::Unsupported("cannot rollback - no transaction is active".into())),
        }
    }

    /// Applies a recovered `Sql` journal record. Batch records (no
    /// parameters) replay through [`Database::execute_batch`]; everything
    /// else through [`Database::execute`]. Recovery databases have no
    /// journal attached, so replay does not re-log.
    pub fn apply_journal_sql(
        &mut self,
        sql: &str,
        params: &[maxoid_journal::ParamValue],
    ) -> SqlResult<()> {
        if params.is_empty() {
            self.execute_batch(sql)
        } else {
            let values: Vec<Value> = params.iter().map(param_to_value).collect();
            self.execute(sql, &values).map(|_| ())
        }
    }

    /// Returns true while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.tx_snapshot.is_some()
    }

    /// Returns true if a base table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.read_table(&key(name)).is_some()
    }

    /// Returns true if a view with this name exists.
    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(&key(name))
    }

    /// Returns true if a trigger with this name exists.
    pub fn has_trigger(&self, name: &str) -> bool {
        self.triggers.contains_key(&key(name))
    }

    /// Returns a base table by name.
    pub fn table(&self, name: &str) -> SqlResult<&Table> {
        self.read_table(&key(name)).ok_or_else(|| SqlError::NoSuchTable(name.to_string()))
    }

    /// Returns a mutable base table by name. Conservatively retracts the
    /// published snapshot: the caller may mutate through the handle.
    /// Also drops this table's frozen-cache entry *before* the caller
    /// mutates: a cached freeze holds `Arc`s on the table's version
    /// chains, and the refcount-driven trim (see `trim_chain`) must not
    /// see stale versions pinned by a mere cache. Unchanged tables keep
    /// their cache entry, whose pins are exactly the live head versions.
    pub fn table_mut(&mut self, name: &str) -> SqlResult<&mut Table> {
        self.note_mutation();
        self.uncache_frozen(name);
        self.tables.get_mut(&key(name)).ok_or_else(|| SqlError::NoSuchTable(name.to_string()))
    }

    /// Drops `name`'s frozen-cache entry (same rationale as
    /// [`Database::table_mut`]); for DDL paths that bypass `table_mut`.
    pub(crate) fn uncache_frozen(&self, name: &str) {
        let k = key(name);
        let mut cache = self.frozen_cache.borrow_mut();
        if cache.contains_key(&k) {
            Arc::make_mut(&mut *cache).remove(&k);
        }
        if let Some(dirty) = self.frozen_dirty.borrow_mut().as_mut() {
            dirty.insert(k);
        }
    }

    /// Attaches a device-backed heap tier: every table (existing and
    /// created later) spills its row payloads to `tier` once it outgrows
    /// `threshold` encoded bytes. Already-oversized tables migrate
    /// immediately — this is how a cold boot re-adopts a dataset that was
    /// paged in the previous run.
    pub fn attach_heap(&mut self, tier: crate::heap::HeapTier, threshold: usize) {
        self.note_mutation();
        *self.frozen_cache.borrow_mut() = Arc::new(BTreeMap::new());
        *self.frozen_dirty.borrow_mut() = None;
        let cfg = crate::heap::HeapCfg { tier, threshold };
        for t in self.tables.values_mut() {
            t.attach_heap(cfg.clone());
        }
        self.heap = Some(cfg);
    }

    /// Returns a view definition by name.
    pub fn view(&self, name: &str) -> SqlResult<&ViewDef> {
        self.views
            .get(&key(name))
            .map(|v| v.as_ref())
            .ok_or_else(|| SqlError::NoSuchTable(name.to_string()))
    }

    /// Returns the trigger attached to `view_name` for `event`, if any.
    /// Served from a `(view, event)` index memoized per catalog
    /// generation (every trigger create/drop and rollback bumps the
    /// generation), so the lookup does not scan the trigger catalog.
    pub fn trigger_for(&self, view_name: &str, event: TriggerEvent) -> Option<&TriggerDef> {
        let gen = self.catalog_generation();
        let name = {
            let mut memo = self.trigger_memo.borrow_mut();
            if !matches!(memo.as_ref(), Some((g, _)) if *g == gen) {
                let mut ix = BTreeMap::new();
                for (name, t) in &self.triggers {
                    // entry(): first trigger in name order wins, matching
                    // the previous linear scan.
                    ix.entry((t.on.clone(), t.event)).or_insert_with(|| name.clone());
                }
                *memo = Some((gen, ix));
            }
            let (_, ix) = memo.as_ref().expect("just populated");
            ix.get(&(key(view_name), event)).cloned()
        };
        self.triggers.get(&name?).map(|t| t.as_ref())
    }

    /// Lists base table names (lowercased keys).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Lists view names (lowercased keys).
    pub fn view_names(&self) -> Vec<String> {
        self.views.keys().cloned().collect()
    }

    /// Dumps every base table's rows as replayable `(sql, params)`
    /// statements for journal compaction. The caller replays catalog DDL
    /// (CREATE TABLE/INDEX/VIEW/TRIGGER, retained from the original log)
    /// first; this dump then rebuilds rows *and rowid allocation state*
    /// exactly:
    ///
    /// * explicit-pk tables store the pk value in the row, so plain
    ///   INSERTs reproduce rowids; one final `ALTER ... ROWID START`
    ///   restores the allocation floor;
    /// * hidden-rowid tables auto-assign, so each INSERT is preceded by
    ///   an `ALTER ... ROWID START` pinning the next assignment — holes
    ///   from deleted rows survive the roundtrip.
    ///
    /// Triggers cannot fire during replay: only INSTEAD OF triggers on
    /// views exist, and the dump addresses base tables directly.
    pub fn dump_sql(&self) -> Vec<(String, Vec<maxoid_journal::ParamValue>)> {
        let mut out = Vec::new();
        for name in self.table_names() {
            let table = match self.table(&name) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let cols = table.schema.column_names().join(", ");
            let placeholders: Vec<String> =
                (1..=table.schema.columns.len()).map(|i| format!("?{i}")).collect();
            let insert =
                format!("INSERT INTO {name} ({cols}) VALUES ({})", placeholders.join(", "));
            let hidden_rowid = table.schema.pk_column.is_none();
            for (rowid, row) in table.iter() {
                if hidden_rowid {
                    out.push((format!("ALTER TABLE {name} ROWID START {rowid}"), Vec::new()));
                }
                out.push((insert.clone(), row.iter().map(value_to_param).collect()));
            }
            out.push((format!("ALTER TABLE {name} ROWID START {}", table.pk_start()), Vec::new()));
        }
        out
    }

    /// Returns output column names for a table or view.
    pub fn relation_columns(&self, name: &str) -> SqlResult<Vec<String>> {
        if let Some(t) = self.read_table(&key(name)) {
            return Ok(t.schema.column_names());
        }
        if let Some(v) = self.views.get(&key(name)) {
            return Ok(v.columns.clone());
        }
        Err(SqlError::NoSuchTable(name.to_string()))
    }
}

/// Normalizes an object name to its registry key.
pub(crate) fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

/// Lowers a [`Value`] into its journal-record form.
pub fn value_to_param(v: &Value) -> maxoid_journal::ParamValue {
    use maxoid_journal::ParamValue as P;
    match v {
        Value::Null => P::Null,
        Value::Integer(i) => P::Int(*i),
        Value::Real(r) => P::Real(*r),
        Value::Text(s) => P::Text(s.clone()),
        Value::Blob(b) => P::Blob(b.clone()),
    }
}

/// Raises a journal-record parameter back into a [`Value`].
pub fn param_to_value(p: &maxoid_journal::ParamValue) -> Value {
    use maxoid_journal::ParamValue as P;
    match p {
        P::Null => Value::Null,
        P::Int(i) => Value::Integer(*i),
        P::Real(r) => Value::Real(*r),
        P::Text(s) => Value::Text(s.clone()),
        P::Blob(b) => Value::Blob(b.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_insert_query_roundtrip() {
        let mut db = Database::new();
        db.execute_batch(
            "CREATE TABLE t (_id INTEGER PRIMARY KEY, data TEXT);
             INSERT INTO t (data) VALUES ('a'), ('b'), ('c');",
        )
        .unwrap();
        let rs = db.query("SELECT * FROM t ORDER BY _id", &[]).unwrap();
        assert_eq!(rs.columns, vec!["_id", "data"]);
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[2], vec![Value::Integer(3), Value::Text("c".into())]);
    }

    #[test]
    fn query_rejects_non_select() {
        let db = Database::new();
        assert!(db.query("DELETE FROM t", &[]).is_err());
    }

    #[test]
    fn journal_replay_rebuilds_catalog_and_rows() {
        use maxoid_journal::{committed_records, read_records, JournalHandle, Record};
        let h = JournalHandle::with_batch(1);
        let mut db = Database::new();
        db.set_journal(h.sink(), "db.test");
        db.execute_batch(
            "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, freq INTEGER);
             CREATE INDEX idx_words_word ON words (word);
             CREATE VIEW frequent AS SELECT word FROM words WHERE freq > 10;",
        )
        .unwrap();
        db.execute(
            "INSERT INTO words (word, freq) VALUES (?1, ?2)",
            &[Value::Text("hello".into()), Value::Integer(40)],
        )
        .unwrap();
        // A rolled-back transaction must leave no trace in the replay.
        db.begin().unwrap();
        db.execute("INSERT INTO words (word, freq) VALUES ('ghost', 1)", &[]).unwrap();
        db.rollback().unwrap();
        db.begin().unwrap();
        db.execute("INSERT INTO words (word, freq) VALUES ('kept', 99)", &[]).unwrap();
        db.commit().unwrap();
        // SELECTs must not be journaled.
        db.query("SELECT * FROM words", &[]).unwrap();

        let mut replayed = Database::new();
        for rec in committed_records(&read_records(&h.bytes())) {
            if let Record::Sql { db: name, sql, params } = rec {
                assert_eq!(name, "db.test");
                replayed.apply_journal_sql(&sql, &params).unwrap();
            }
        }
        assert!(replayed.has_table("words"));
        assert!(replayed.has_view("frequent"));
        assert!(replayed
            .table("words")
            .unwrap()
            .indexes()
            .iter()
            .any(|ix| ix.name().eq_ignore_ascii_case("idx_words_word")));
        let orig = db.query("SELECT _id, word, freq FROM words ORDER BY _id", &[]).unwrap();
        let got = replayed.query("SELECT _id, word, freq FROM words ORDER BY _id", &[]).unwrap();
        assert_eq!(got, orig);
        assert_eq!(got.rows.len(), 2);
        assert!(!got.rows.iter().any(|r| r[1] == Value::Text("ghost".into())));
        // The index works in the replayed catalog, not just exists.
        replayed.stats.reset();
        replayed.query("SELECT freq FROM words WHERE word = 'kept'", &[]).unwrap();
        assert!(replayed.stats.index_probes.get() > 0);
    }

    #[test]
    fn access_path_cap_is_configurable_and_drops_are_counted() {
        let mut db = Database::new();
        db.execute_batch(
            "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER);
             INSERT INTO t (v) VALUES (1);",
        )
        .unwrap();
        db.stats.reset();
        db.stats.set_access_path_cap(3);
        for _ in 0..10 {
            db.query("SELECT v FROM t", &[]).unwrap();
        }
        assert_eq!(db.stats.access_paths.borrow().len(), 3);
        assert_eq!(db.stats.access_paths_dropped.get(), 7);
        // reset clears the drop counter but keeps the configured cap.
        db.stats.reset();
        assert_eq!(db.stats.access_paths_dropped.get(), 0);
        assert_eq!(db.stats.access_path_cap.get(), 3);
    }

    #[test]
    fn scalar_helper() {
        let mut db = Database::new();
        db.execute_batch(
            "CREATE TABLE t (_id INTEGER PRIMARY KEY);
             INSERT INTO t VALUES (1),(2),(3);",
        )
        .unwrap();
        let rs = db.query("SELECT count(*) FROM t", &[]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Integer(3)));
    }
}
