//! Query planner: UNION ALL view (subquery) flattening.
//!
//! The paper's COW views are defined as
//! `SELECT ... FROM primary WHERE pk NOT IN (SELECT pk FROM delta)
//!  UNION ALL SELECT ... FROM delta WHERE _whiteout = 0`
//! and footnote 5 explains that query performance hinges on SQLite's
//! *subquery flattening*: pushing the outer query's WHERE clause into both
//! arms of the UNION ALL so each arm can use the primary-key index. The
//! footnote also records a version quirk — SQLite 3.7.11 refused to flatten
//! when the outer query had an ORDER BY (unless it selected `*`), and
//! 3.8.6 required ORDER BY columns to be a subset of the selected columns,
//! which is why the paper's proxy "adds ORDER BY columns to query columns
//! when necessary".
//!
//! [`FlattenPolicy`] reproduces all of those behaviours so the ablation
//! bench can show the performance cliff the authors engineered around.

use crate::ast::{BinOp, Expr, OrderTerm, ResultColumn, SelectCore, SelectStmt};
use crate::db::{key, Database};
use crate::expr::OrdValue;
use crate::table::Table;
use crate::value::Value;
use std::fmt;
use std::ops::Bound;

/// When the planner may flatten an outer query over a UNION ALL view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlattenPolicy {
    /// Never flatten; views are always materialized. (Ablation baseline.)
    Off,
    /// SQLite 3.7.11 behaviour (Android 4.3.2's stock SQLite): refuse to
    /// flatten when the outer query has an ORDER BY, unless it selects `*`.
    Sqlite3711,
    /// SQLite 3.8.6 behaviour (the version the paper ported to Android):
    /// flatten with ORDER BY when every ORDER BY column is among the
    /// selected columns.
    #[default]
    Sqlite386,
    /// Flatten whenever structurally possible (ORDER BY resolved over the
    /// output by appending hidden sort keys is *not* implemented; terms
    /// must still be selected columns or positions).
    Always,
}

/// How the executor fetches candidate rows for one table access.
///
/// Chosen per table access from the conjunctive terms of the WHERE clause.
/// Every path yields a *superset-safe* candidate set: the full WHERE is
/// still re-evaluated per candidate, so a path only has to guarantee it
/// returns every row the predicate could accept. Because secondary indexes
/// are keyed by [`OrdValue`]'s total order — the same comparison the
/// evaluator uses — equality and range probes return exactly the rows the
/// corresponding conjunct accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Visit every row of the table.
    FullScan,
    /// Primary-key (rowid) point lookups for these keys.
    RowidPoint(Vec<i64>),
    /// Equality probes of a secondary index, one per key (`=` or `IN`).
    IndexEq {
        /// Name of the probed index.
        index: String,
        /// Probe keys.
        keys: Vec<Value>,
    },
    /// A range probe of a secondary index (`<`, `<=`, `>`, `>=`, BETWEEN).
    IndexRange {
        /// Name of the probed index.
        index: String,
        /// Lower bound on the indexed value.
        lower: Bound<Value>,
        /// Upper bound on the indexed value.
        upper: Bound<Value>,
    },
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::FullScan => write!(f, "SCAN"),
            AccessPath::RowidPoint(ids) => write!(f, "PK POINT ({} keys)", ids.len()),
            AccessPath::IndexEq { index, keys } => {
                write!(f, "INDEX {index} EQ ({} keys)", keys.len())
            }
            AccessPath::IndexRange { index, .. } => write!(f, "INDEX {index} RANGE"),
        }
    }
}

/// A value-free access plan: the structural half of access-path choice.
///
/// [`plan_access`] decides *which* index or point lookup to use from the
/// WHERE clause's shape alone (column references, operators, which
/// operands are structurally constant), without evaluating anything — so
/// a plan computed once is reusable across executions with different
/// parameter bindings. [`bind_access_plan`] evaluates the captured
/// expressions against the current parameters to produce the concrete
/// [`AccessPath`] the executor probes with.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPlan {
    /// The structural choice.
    pub choice: PlanChoice,
    /// Every structurally-constant expression the planner inspected while
    /// choosing, in inspection order. Bind evaluates all of them — even
    /// ones the chosen path does not use — so evaluation errors (a
    /// missing parameter, say) surface exactly as they would had the
    /// plan been chosen with live values.
    pub const_checks: Vec<Expr>,
}

/// The structural access choice inside an [`AccessPlan`]. Bound bounds
/// and keys are kept as expressions and evaluated at bind time.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanChoice {
    /// Visit every row.
    FullScan,
    /// Primary-key point lookup, key from one `pk = expr` conjunct.
    RowidPointEq(Expr),
    /// Primary-key point lookups from a `pk IN (exprs)` conjunct.
    RowidPointIn(Vec<Expr>),
    /// Equality probes of a secondary index.
    IndexEq {
        /// Name of the probed index.
        index: String,
        /// Probe-key expressions (`=` gives one, `IN` several).
        keys: Vec<Expr>,
    },
    /// A range probe of a secondary index. Multiple conjuncts may bound
    /// the same column; the tightest bound is picked at bind time, when
    /// the values are known.
    IndexRange {
        /// Name of the probed index.
        index: String,
        /// Candidate lower bounds as `(expr, inclusive)`.
        lowers: Vec<(Expr, bool)>,
        /// Candidate upper bounds as `(expr, inclusive)`.
        uppers: Vec<(Expr, bool)>,
    },
}

/// Builds the value-free access plan for one single-table access.
///
/// `is_const` must return true only for expressions that are constant in
/// the statement's scope (literals, parameters, NEW/OLD references).
/// Preference order matches [`choose_access_path`]: rowid point lookup,
/// then index equality, then index range, then full scan.
pub fn plan_access(
    table: &Table,
    binding: &str,
    where_clause: Option<&Expr>,
    is_const: &dyn Fn(&Expr) -> bool,
) -> AccessPlan {
    let Some(w) = where_clause else {
        return AccessPlan { choice: PlanChoice::FullScan, const_checks: Vec::new() };
    };
    let pk = table.schema.pk_column;
    let mut checks: Vec<Expr> = Vec::new();
    let mut index_eq: Option<(String, Vec<Expr>)> = None;
    // Candidate range bounds per column: (column, lowers, uppers).
    type RangeAcc = (usize, Vec<(Expr, bool)>, Vec<(Expr, bool)>);
    let mut ranges: Vec<RangeAcc> = Vec::new();
    fn range_entry(ranges: &mut Vec<RangeAcc>, col: usize) -> &mut RangeAcc {
        if let Some(i) = ranges.iter().position(|(c, _, _)| *c == col) {
            &mut ranges[i]
        } else {
            ranges.push((col, Vec::new(), Vec::new()));
            ranges.last_mut().unwrap()
        }
    }

    for conj in w.conjuncts() {
        match conj {
            Expr::Binary(
                op @ (BinOp::Eq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq),
                l,
                r,
            ) => {
                // Normalize to (column op constant), flipping the operator
                // when the constant is on the left. Inspected constants go
                // into `checks` in the same order the one-stage chooser
                // would have evaluated them.
                let l_col = own_column(l, binding, table);
                let r_const = is_const(r);
                if r_const {
                    checks.push((**r).clone());
                }
                let (col, val, op) = if let (Some(c), true) = (l_col, r_const) {
                    (c, (**r).clone(), *op)
                } else {
                    let l_const = is_const(l);
                    if l_const {
                        checks.push((**l).clone());
                    }
                    if let (Some(c), true) = (own_column(r, binding, table), l_const) {
                        let flipped = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::LtEq => BinOp::GtEq,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::GtEq => BinOp::LtEq,
                            other => *other,
                        };
                        (c, (**l).clone(), flipped)
                    } else {
                        continue;
                    }
                };
                match op {
                    BinOp::Eq => {
                        if Some(col) == pk {
                            return AccessPlan {
                                choice: PlanChoice::RowidPointEq(val),
                                const_checks: checks,
                            };
                        }
                        if index_eq.is_none() {
                            if let Some(ix) = table.index_on(col) {
                                index_eq = Some((ix.name().to_string(), vec![val]));
                            }
                        }
                    }
                    BinOp::Lt => range_entry(&mut ranges, col).2.push((val, false)),
                    BinOp::LtEq => range_entry(&mut ranges, col).2.push((val, true)),
                    BinOp::Gt => range_entry(&mut ranges, col).1.push((val, false)),
                    BinOp::GtEq => range_entry(&mut ranges, col).1.push((val, true)),
                    _ => {}
                }
            }
            Expr::InList { expr, list, negated: false } => {
                let Some(col) = own_column(expr, binding, table) else { continue };
                // Stop at the first non-constant item, mirroring the
                // one-stage chooser's short-circuiting `collect`.
                let mut items = Vec::with_capacity(list.len());
                let mut all_const = true;
                for item in list {
                    if !is_const(item) {
                        all_const = false;
                        break;
                    }
                    checks.push(item.clone());
                    items.push(item.clone());
                }
                if !all_const {
                    continue;
                }
                if Some(col) == pk {
                    return AccessPlan {
                        choice: PlanChoice::RowidPointIn(items),
                        const_checks: checks,
                    };
                }
                if index_eq.is_none() {
                    if let Some(ix) = table.index_on(col) {
                        index_eq = Some((ix.name().to_string(), items));
                    }
                }
            }
            Expr::Between { expr, low, high, negated: false } => {
                let Some(col) = own_column(expr, binding, table) else { continue };
                if is_const(low) {
                    checks.push((**low).clone());
                    range_entry(&mut ranges, col).1.push(((**low).clone(), true));
                }
                if is_const(high) {
                    checks.push((**high).clone());
                    range_entry(&mut ranges, col).2.push(((**high).clone(), true));
                }
            }
            _ => {}
        }
    }

    if let Some((index, keys)) = index_eq {
        return AccessPlan { choice: PlanChoice::IndexEq { index, keys }, const_checks: checks };
    }
    for (col, lowers, uppers) in ranges {
        if let Some(ix) = table.index_on(col) {
            return AccessPlan {
                choice: PlanChoice::IndexRange { index: ix.name().to_string(), lowers, uppers },
                const_checks: checks,
            };
        }
    }
    AccessPlan { choice: PlanChoice::FullScan, const_checks: checks }
}

/// Binds an [`AccessPlan`] against the current execution's constants,
/// producing the concrete [`AccessPath`] to probe with.
///
/// `eval_const` is the caller's constant evaluator; returning `None` for
/// an expression the plan captured means evaluation failed, which the
/// caller is expected to have recorded (the executor defers the error and
/// raises it after binding). The path produced alongside a deferred error
/// is never probed.
pub fn bind_access_plan(
    plan: &AccessPlan,
    eval_const: &dyn Fn(&Expr) -> Option<Value>,
) -> AccessPath {
    // Evaluate every inspected constant first so errors surface exactly
    // as in unplanned (one-stage) access-path choice.
    for e in &plan.const_checks {
        let _ = eval_const(e);
    }
    match &plan.choice {
        PlanChoice::FullScan => AccessPath::FullScan,
        PlanChoice::RowidPointEq(e) => {
            AccessPath::RowidPoint(match eval_const(e).and_then(|v| v.as_integer()) {
                Some(i) => vec![i],
                None => Vec::new(),
            })
        }
        PlanChoice::RowidPointIn(list) => AccessPath::RowidPoint(
            list.iter().filter_map(|e| eval_const(e).and_then(|v| v.as_integer())).collect(),
        ),
        PlanChoice::IndexEq { index, keys } => AccessPath::IndexEq {
            index: index.clone(),
            keys: keys.iter().map(|e| eval_const(e).unwrap_or(Value::Null)).collect(),
        },
        PlanChoice::IndexRange { index, lowers, uppers } => {
            let mut lower: Bound<Value> = Bound::Unbounded;
            let mut upper: Bound<Value> = Bound::Unbounded;
            for (e, inclusive) in lowers {
                if let Some(v) = eval_const(e) {
                    let b = if *inclusive { Bound::Included(v) } else { Bound::Excluded(v) };
                    if bound_tighter_lower(&lower, &b) {
                        lower = b;
                    }
                }
            }
            for (e, inclusive) in uppers {
                if let Some(v) = eval_const(e) {
                    let b = if *inclusive { Bound::Included(v) } else { Bound::Excluded(v) };
                    if bound_tighter_upper(&upper, &b) {
                        upper = b;
                    }
                }
            }
            AccessPath::IndexRange { index: index.clone(), lower, upper }
        }
    }
}

/// Picks the access path for one single-table access given its WHERE
/// clause.
///
/// `eval_const` must return `Some(value)` only for expressions that are
/// constant in this scope (literals, parameters, NEW/OLD references) and
/// evaluate cleanly. Preference order: rowid point lookup, then index
/// equality, then index range, then full scan.
///
/// This is the one-stage convenience form of [`plan_access`] +
/// [`bind_access_plan`]; the executor uses the two-stage form so plans
/// can be cached across executions.
pub fn choose_access_path(
    table: &Table,
    binding: &str,
    where_clause: Option<&Expr>,
    eval_const: &dyn Fn(&Expr) -> Option<Value>,
) -> AccessPath {
    let plan = plan_access(table, binding, where_clause, &|e| eval_const(e).is_some());
    bind_access_plan(&plan, eval_const)
}

/// Resolves `expr` as a reference to one of `table`'s own columns within
/// `binding`'s scope, returning its schema position.
fn own_column(expr: &Expr, binding: &str, table: &Table) -> Option<usize> {
    match expr {
        Expr::Column { table: qual, name } => {
            if let Some(q) = qual {
                if crate::expr::TriggerCtx::is_pseudo_table(q) || !q.eq_ignore_ascii_case(binding) {
                    return None;
                }
            }
            table.schema.column_index(name)
        }
        _ => None,
    }
}

/// True when `new` is a strictly tighter lower bound than `current`.
fn bound_tighter_lower(current: &Bound<Value>, new: &Bound<Value>) -> bool {
    match (current, new) {
        (_, Bound::Unbounded) => false,
        (Bound::Unbounded, _) => true,
        (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) => {
            match OrdValue(b.clone()).cmp(&OrdValue(a.clone())) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => {
                    matches!(new, Bound::Excluded(_)) && matches!(current, Bound::Included(_))
                }
                std::cmp::Ordering::Less => false,
            }
        }
    }
}

/// True when `new` is a strictly tighter upper bound than `current`.
fn bound_tighter_upper(current: &Bound<Value>, new: &Bound<Value>) -> bool {
    match (current, new) {
        (_, Bound::Unbounded) => false,
        (Bound::Unbounded, _) => true,
        (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) => {
            match OrdValue(b.clone()).cmp(&OrdValue(a.clone())) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => {
                    matches!(new, Bound::Excluded(_)) && matches!(current, Bound::Included(_))
                }
                std::cmp::Ordering::Greater => false,
            }
        }
    }
}

/// Attempts to flatten `stmt` (an outer query over a single UNION ALL
/// view). Returns the rewritten statement, or `None` when the rewrite does
/// not apply under the database's policy.
pub fn try_flatten(db: &Database, stmt: &SelectStmt) -> Option<SelectStmt> {
    if db.flatten_policy == FlattenPolicy::Off {
        return None;
    }
    // Outer shape: single core over exactly one FROM source that is a view.
    if stmt.cores.len() != 1 {
        return None;
    }
    let core = &stmt.cores[0];
    if core.from.len() != 1 || core.distinct || !core.group_by.is_empty() {
        return None;
    }
    let view = db.views.get(&key(&core.from[0].name))?;
    // The view must be a bare (possibly compound) select: no ORDER BY or
    // LIMIT of its own, no grouping or DISTINCT in any core.
    if !view.select.order_by.is_empty()
        || view.select.limit.is_some()
        || view
            .select
            .cores
            .iter()
            .any(|c| c.distinct || !c.group_by.is_empty() || c.having.is_some())
    {
        return None;
    }
    // Aggregates cannot be decomposed across UNION ALL arms.
    let outer_has_aggregate = core.columns.iter().any(|rc| match rc {
        ResultColumn::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    });
    if outer_has_aggregate && view.select.cores.len() > 1 {
        return None;
    }

    // Version-specific ORDER BY restrictions.
    let selects_star = core.columns.len() == 1 && matches!(core.columns[0], ResultColumn::Star);
    if !stmt.order_by.is_empty() {
        match db.flatten_policy {
            FlattenPolicy::Sqlite3711 => {
                if !selects_star {
                    return None;
                }
            }
            FlattenPolicy::Sqlite386 | FlattenPolicy::Always => {
                if !selects_star && !order_terms_in_selection(&stmt.order_by, &core.columns) {
                    return None;
                }
            }
            FlattenPolicy::Off => unreachable!("handled above"),
        }
    }

    // Build one flattened core per view core.
    let mut new_cores = Vec::with_capacity(view.select.cores.len());
    for vcore in &view.select.cores {
        // Mapping from view output name -> inner expression.
        let mapping = core_output_mapping(db, vcore, &view.columns)?;
        // Substitute the outer projection.
        let mut new_columns = Vec::new();
        for rc in &core.columns {
            match rc {
                ResultColumn::Star | ResultColumn::TableStar(_) => {
                    // Project the view's columns explicitly so output names
                    // stay the view's names.
                    for (name, inner) in view.columns.iter().zip(&mapping) {
                        new_columns.push(ResultColumn::Expr {
                            expr: inner.clone(),
                            alias: Some(name.clone()),
                        });
                    }
                }
                ResultColumn::Expr { expr, alias } => {
                    let substituted = substitute(expr, &view.columns, &mapping)?;
                    new_columns.push(ResultColumn::Expr {
                        expr: substituted,
                        alias: Some(crate::exec::output_name(expr, alias.as_deref())),
                    });
                }
            }
        }
        // Push the outer WHERE into the arm.
        let outer_where = match &core.where_clause {
            Some(w) => Some(substitute(w, &view.columns, &mapping)?),
            None => None,
        };
        let combined_where = match (vcore.where_clause.clone(), outer_where) {
            (Some(a), Some(b)) => {
                Some(Expr::Binary(crate::ast::BinOp::And, Box::new(a), Box::new(b)))
            }
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        new_cores.push(SelectCore {
            distinct: false,
            columns: new_columns,
            from: vcore.from.clone(),
            where_clause: combined_where,
            group_by: Vec::new(),
            having: None,
        });
    }

    Some(SelectStmt {
        cores: new_cores,
        order_by: stmt.order_by.clone(),
        limit: stmt.limit.clone(),
        offset: stmt.offset.clone(),
    })
}

/// Checks that every ORDER BY term is a selected column (by name or
/// position) — SQLite 3.8.6's flattening precondition.
fn order_terms_in_selection(order_by: &[OrderTerm], columns: &[ResultColumn]) -> bool {
    let names: Vec<String> = columns
        .iter()
        .filter_map(|rc| match rc {
            ResultColumn::Expr { expr, alias } => {
                Some(crate::exec::output_name(expr, alias.as_deref()))
            }
            _ => None,
        })
        .collect();
    order_by.iter().all(|t| match &t.expr {
        Expr::Literal(Value::Integer(k)) => *k >= 1 && (*k as usize) <= columns.len(),
        Expr::Column { table: None, name } => names.iter().any(|n| n.eq_ignore_ascii_case(name)),
        _ => false,
    })
}

/// For one view core, builds the list of inner expressions aligned with
/// the view's output column names. Returns `None` for shapes we cannot
/// flatten (nested stars over views, arity mismatch).
fn core_output_mapping(
    db: &Database,
    vcore: &SelectCore,
    view_columns: &[String],
) -> Option<Vec<Expr>> {
    let mut exprs = Vec::new();
    for rc in &vcore.columns {
        match rc {
            ResultColumn::Expr { expr, .. } => exprs.push(expr.clone()),
            ResultColumn::Star => {
                // Expand * against the core's FROM relations.
                for tref in &vcore.from {
                    let cols = db.relation_columns(&tref.name).ok()?;
                    for c in cols {
                        exprs.push(Expr::Column { table: None, name: c });
                    }
                }
            }
            ResultColumn::TableStar(t) => {
                let tref = vcore.from.iter().find(|r| r.binding().eq_ignore_ascii_case(t))?;
                let cols = db.relation_columns(&tref.name).ok()?;
                for c in cols {
                    exprs.push(Expr::Column { table: None, name: c });
                }
            }
        }
    }
    if exprs.len() != view_columns.len() {
        return None;
    }
    // Substituting an aggregate into a WHERE clause would be invalid.
    if exprs.iter().any(Expr::contains_aggregate) {
        return None;
    }
    Some(exprs)
}

/// Rewrites `expr`, replacing references to view output columns with the
/// corresponding inner expressions. Fails (None) on references that cannot
/// be mapped.
fn substitute(expr: &Expr, view_columns: &[String], mapping: &[Expr]) -> Option<Expr> {
    Some(match expr {
        Expr::Column { table: _, name } => {
            match view_columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                Some(i) => mapping[i].clone(),
                // NEW./OLD. references pass through untouched.
                None => match expr {
                    Expr::Column { table: Some(t), .. }
                        if crate::expr::TriggerCtx::is_pseudo_table(t) =>
                    {
                        expr.clone()
                    }
                    _ => return None,
                },
            }
        }
        Expr::Literal(_) | Expr::Param(_) => expr.clone(),
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(substitute(e, view_columns, mapping)?)),
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(substitute(l, view_columns, mapping)?),
            Box::new(substitute(r, view_columns, mapping)?),
        ),
        Expr::IsNull { expr: e, negated } => Expr::IsNull {
            expr: Box::new(substitute(e, view_columns, mapping)?),
            negated: *negated,
        },
        Expr::InList { expr: e, list, negated } => {
            let mut new_list = Vec::with_capacity(list.len());
            for item in list {
                new_list.push(substitute(item, view_columns, mapping)?);
            }
            Expr::InList {
                expr: Box::new(substitute(e, view_columns, mapping)?),
                list: new_list,
                negated: *negated,
            }
        }
        Expr::InSelect { expr: e, select, negated } => Expr::InSelect {
            expr: Box::new(substitute(e, view_columns, mapping)?),
            select: select.clone(),
            negated: *negated,
        },
        Expr::Like { expr: e, pattern, negated } => Expr::Like {
            expr: Box::new(substitute(e, view_columns, mapping)?),
            pattern: Box::new(substitute(pattern, view_columns, mapping)?),
            negated: *negated,
        },
        Expr::Between { expr: e, low, high, negated } => Expr::Between {
            expr: Box::new(substitute(e, view_columns, mapping)?),
            low: Box::new(substitute(low, view_columns, mapping)?),
            high: Box::new(substitute(high, view_columns, mapping)?),
            negated: *negated,
        },
        Expr::Call { name, args, star } => {
            let mut new_args = Vec::with_capacity(args.len());
            for a in args {
                new_args.push(substitute(a, view_columns, mapping)?);
            }
            Expr::Call { name: name.clone(), args: new_args, star: *star }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    /// Builds the paper's Figure 6 schema: primary, delta, COW view.
    fn figure6_db(policy: FlattenPolicy) -> Database {
        let mut db = Database::with_policy(policy);
        db.execute_batch(
            "CREATE TABLE tab1 (_id INTEGER PRIMARY KEY, data TEXT);
             CREATE TABLE tab1_delta_A (_id INTEGER PRIMARY KEY, data TEXT, _whiteout BOOLEAN);
             INSERT INTO tab1 VALUES (1,'a'),(2,'b'),(3,'c');
             INSERT INTO tab1_delta_A VALUES (2,'b',1),(3,'d',0),(10000001,'e',0);
             CREATE VIEW tab1_view_A AS
               SELECT _id,data FROM tab1 WHERE _id NOT IN (SELECT _id FROM tab1_delta_A)
               UNION ALL SELECT _id,data FROM tab1_delta_A WHERE _whiteout=0;",
        )
        .unwrap();
        db
    }

    #[test]
    fn figure6_view_contents() {
        let db = figure6_db(FlattenPolicy::Sqlite386);
        let rs = db.query("SELECT _id, data FROM tab1_view_A ORDER BY _id", &[]).unwrap();
        // Row 1 from primary, row 2 whited out, row 3 updated to 'd',
        // row 10000001 inserted by a delegate.
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Integer(1), Value::Text("a".into())],
                vec![Value::Integer(3), Value::Text("d".into())],
                vec![Value::Integer(10000001), Value::Text("e".into())],
            ]
        );
    }

    #[test]
    fn flattening_fires_and_uses_point_lookups() {
        let db = figure6_db(FlattenPolicy::Sqlite386);
        db.stats.reset();
        let rs =
            db.query("SELECT data FROM tab1_view_A WHERE _id = ?", &[Value::Integer(1)]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("a".into())]]);
        assert!(db.stats.flattened_queries.get() >= 1);
        assert!(db.stats.point_lookups.get() >= 1);
        // Without flattening the view arm over `tab1` would scan all rows.
        assert_eq!(db.stats.materialized_views.get(), 0);
    }

    #[test]
    fn off_policy_materializes() {
        let db = figure6_db(FlattenPolicy::Off);
        db.stats.reset();
        let rs =
            db.query("SELECT data FROM tab1_view_A WHERE _id = ?", &[Value::Integer(1)]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("a".into())]]);
        assert_eq!(db.stats.flattened_queries.get(), 0);
        assert!(db.stats.materialized_views.get() >= 1);
    }

    #[test]
    fn results_identical_across_policies() {
        for policy in [
            FlattenPolicy::Off,
            FlattenPolicy::Sqlite3711,
            FlattenPolicy::Sqlite386,
            FlattenPolicy::Always,
        ] {
            let db = figure6_db(policy);
            let rs = db.query("SELECT _id, data FROM tab1_view_A ORDER BY _id", &[]).unwrap();
            assert_eq!(rs.rows.len(), 3, "policy {policy:?}");
            let rs2 = db.query("SELECT data FROM tab1_view_A WHERE _id = 10000001", &[]).unwrap();
            assert_eq!(rs2.rows, vec![vec![Value::Text("e".into())]], "policy {policy:?}");
        }
    }

    #[test]
    fn sqlite3711_refuses_order_by_unless_star() {
        let db = figure6_db(FlattenPolicy::Sqlite3711);
        db.stats.reset();
        // Named columns + ORDER BY: 3.7.11 does not flatten.
        db.query("SELECT _id, data FROM tab1_view_A ORDER BY _id", &[]).unwrap();
        assert_eq!(db.stats.flattened_queries.get(), 0);
        // `SELECT *` + ORDER BY: flattens.
        db.stats.reset();
        db.query("SELECT * FROM tab1_view_A ORDER BY _id", &[]).unwrap();
        assert_eq!(db.stats.flattened_queries.get(), 1);
        // No ORDER BY: flattens.
        db.stats.reset();
        db.query("SELECT data FROM tab1_view_A WHERE _id = 1", &[]).unwrap();
        assert_eq!(db.stats.flattened_queries.get(), 1);
    }

    #[test]
    fn sqlite386_requires_order_cols_selected() {
        let db = figure6_db(FlattenPolicy::Sqlite386);
        // ORDER BY column not in selection: no flattening (the paper's
        // proxy works around this by adding the column to the selection).
        db.stats.reset();
        db.query("SELECT data FROM tab1_view_A ORDER BY _id", &[]).unwrap();
        assert_eq!(db.stats.flattened_queries.get(), 0);
        // The workaround: select the ORDER BY column too.
        db.stats.reset();
        db.query("SELECT data, _id FROM tab1_view_A ORDER BY _id", &[]).unwrap();
        assert_eq!(db.stats.flattened_queries.get(), 1);
    }

    #[test]
    fn aggregates_are_not_flattened_across_union() {
        let db = figure6_db(FlattenPolicy::Always);
        db.stats.reset();
        let rs = db.query("SELECT count(*) FROM tab1_view_A", &[]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Integer(3)));
        assert_eq!(db.stats.flattened_queries.get(), 0);
    }

    #[test]
    fn access_path_selection_prefers_pk_then_index() {
        use crate::parser::parse_statement;
        use crate::Stmt;
        let mut db = Database::new();
        db.execute_batch(
            "CREATE TABLE t (_id INTEGER PRIMARY KEY, word TEXT, freq INTEGER);
             CREATE INDEX ix_word ON t(word);
             CREATE INDEX ix_freq ON t(freq);",
        )
        .unwrap();
        let table = db.table("t").unwrap();
        let eval = |e: &Expr| match e {
            Expr::Literal(v) => Some(v.clone()),
            _ => None,
        };
        let path_for = |sql: &str| {
            let Stmt::Select(s) = parse_statement(sql).unwrap() else { unreachable!() };
            let w = s.cores[0].where_clause.clone();
            choose_access_path(table, "t", w.as_ref(), &eval)
        };
        // pk equality wins even with an indexed term present.
        assert_eq!(
            path_for("SELECT * FROM t WHERE word = 'a' AND _id = 3"),
            AccessPath::RowidPoint(vec![3])
        );
        // Index equality, both operand orders.
        assert_eq!(
            path_for("SELECT * FROM t WHERE word = 'a'"),
            AccessPath::IndexEq { index: "ix_word".into(), keys: vec!["a".into()] }
        );
        assert_eq!(
            path_for("SELECT * FROM t WHERE 'a' = word"),
            AccessPath::IndexEq { index: "ix_word".into(), keys: vec!["a".into()] }
        );
        // IN list becomes multi-key equality.
        assert_eq!(
            path_for("SELECT * FROM t WHERE word IN ('a','b')"),
            AccessPath::IndexEq { index: "ix_word".into(), keys: vec!["a".into(), "b".into()] }
        );
        // Ranges combine conjuncts on the same column; flipped constants
        // flip the operator.
        assert_eq!(
            path_for("SELECT * FROM t WHERE freq > 5 AND 100 >= freq"),
            AccessPath::IndexRange {
                index: "ix_freq".into(),
                lower: Bound::Excluded(5.into()),
                upper: Bound::Included(100.into()),
            }
        );
        assert_eq!(
            path_for("SELECT * FROM t WHERE freq BETWEEN 2 AND 9"),
            AccessPath::IndexRange {
                index: "ix_freq".into(),
                lower: Bound::Included(2.into()),
                upper: Bound::Included(9.into()),
            }
        );
        // Equality beats range; unindexed or non-constant terms scan.
        assert!(matches!(
            path_for("SELECT * FROM t WHERE freq > 5 AND word = 'a'"),
            AccessPath::IndexEq { .. }
        ));
        assert_eq!(path_for("SELECT * FROM t WHERE freq = word"), AccessPath::FullScan);
        assert_eq!(path_for("SELECT * FROM t"), AccessPath::FullScan);
        // Negated IN cannot use the index.
        assert_eq!(path_for("SELECT * FROM t WHERE word NOT IN ('a')"), AccessPath::FullScan);
    }

    #[test]
    fn flattened_star_projection_keeps_names() {
        let db = figure6_db(FlattenPolicy::Sqlite386);
        let rs = db.query("SELECT * FROM tab1_view_A WHERE _id = 3", &[]).unwrap();
        assert_eq!(rs.columns, vec!["_id", "data"]);
        assert_eq!(rs.rows, vec![vec![Value::Integer(3), Value::Text("d".into())]]);
    }
}
