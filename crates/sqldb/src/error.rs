//! Error type for the SQL engine.

use std::fmt;

/// Errors produced while parsing or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset of the offending character.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Syntax error with a description of what was expected.
    Parse {
        /// Human-readable description.
        message: String,
    },
    /// A referenced table or view does not exist.
    NoSuchTable(String),
    /// A referenced column does not exist (or is ambiguous).
    NoSuchColumn(String),
    /// A referenced trigger does not exist.
    NoSuchTrigger(String),
    /// A referenced secondary index does not exist.
    NoSuchIndex(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// Uniqueness violation on the primary key.
    ConstraintPrimaryKey {
        /// Table whose constraint was violated.
        table: String,
        /// The conflicting key.
        key: i64,
    },
    /// Uniqueness violation on a `UNIQUE` secondary index.
    ConstraintUnique {
        /// Name of the violated index.
        index: String,
    },
    /// Attempted to modify a view with no INSTEAD OF trigger for the event.
    ViewNotWritable(String),
    /// A positional parameter was not supplied.
    MissingParam(usize),
    /// Type error during expression evaluation.
    Type(String),
    /// An unsupported SQL feature was used.
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            SqlError::Parse { message } => write!(f, "syntax error: {message}"),
            SqlError::NoSuchTable(n) => write!(f, "no such table: {n}"),
            SqlError::NoSuchColumn(n) => write!(f, "no such column: {n}"),
            SqlError::NoSuchTrigger(n) => write!(f, "no such trigger: {n}"),
            SqlError::NoSuchIndex(n) => write!(f, "no such index: {n}"),
            SqlError::AlreadyExists(n) => write!(f, "object already exists: {n}"),
            SqlError::ConstraintPrimaryKey { table, key } => {
                write!(f, "UNIQUE constraint failed: {table} primary key {key}")
            }
            SqlError::ConstraintUnique { index } => {
                write!(f, "UNIQUE constraint failed: index {index}")
            }
            SqlError::ViewNotWritable(n) => {
                write!(f, "cannot modify view without INSTEAD OF trigger: {n}")
            }
            SqlError::MissingParam(i) => write!(f, "missing value for parameter ?{i}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Result alias for SQL operations.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(SqlError::NoSuchTable("t".into()).to_string(), "no such table: t");
        assert_eq!(
            SqlError::ConstraintPrimaryKey { table: "t".into(), key: 3 }.to_string(),
            "UNIQUE constraint failed: t primary key 3"
        );
    }
}
