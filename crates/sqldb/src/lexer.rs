//! SQL tokenizer.

use crate::error::{SqlError, SqlResult};
use crate::value::Value;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (stored uppercased for keywords at parse time;
    /// the lexer preserves the original spelling).
    Ident(String),
    /// A `"quoted"` or `` `quoted` `` identifier (never a keyword).
    QuotedIdent(String),
    /// Literal value (integer, real, string, blob).
    Literal(Value),
    /// Positional parameter `?` or `?NNN` (1-based index; 0 = next).
    Param(usize),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `;`.
    Semicolon,
    /// `.`.
    Dot,
    /// `*`.
    Star,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `||` string concatenation.
    Concat,
    /// `=` or `==`.
    Eq,
    /// `!=` or `<>`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
}

impl Token {
    /// Returns the identifier text if this token is a plain identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns true if this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string.
pub fn lex(sql: &str) -> SqlResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut next_param = 1usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment.
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(SqlError::Lex {
                            offset: start,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                tokens.push(Token::Concat);
                i += 2;
            }
            '=' => {
                i += if bytes.get(i + 1) == Some(&b'=') { 2 } else { 1 };
                tokens.push(Token::Eq);
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::LtEq);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '?' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i > start {
                    let idx: usize = sql[start..i].parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        message: "bad parameter number".into(),
                    })?;
                    tokens.push(Token::Param(idx));
                    next_param = next_param.max(idx + 1);
                } else {
                    tokens.push(Token::Param(next_param));
                    next_param += 1;
                }
            }
            '\'' => {
                let (text, len) = lex_string(sql, i)?;
                tokens.push(Token::Literal(Value::Text(text)));
                i += len;
            }
            '"' | '`' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex {
                            offset: start,
                            message: "unterminated quoted identifier".into(),
                        });
                    }
                    let ch = bytes[i] as char;
                    if ch == quote {
                        i += 1;
                        break;
                    }
                    s.push(ch);
                    i += 1;
                }
                tokens.push(Token::QuotedIdent(s));
            }
            'x' | 'X' if bytes.get(i + 1) == Some(&b'\'') => {
                let start = i;
                i += 2;
                let hex_start = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SqlError::Lex {
                        offset: start,
                        message: "unterminated blob literal".into(),
                    });
                }
                let hex = &sql[hex_start..i];
                i += 1;
                if !hex.len().is_multiple_of(2) || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(SqlError::Lex {
                        offset: start,
                        message: "malformed blob literal".into(),
                    });
                }
                let blob: Vec<u8> = (0..hex.len())
                    .step_by(2)
                    .map(|k| u8::from_str_radix(&hex[k..k + 2], 16).unwrap_or(0))
                    .collect();
                tokens.push(Token::Literal(Value::Blob(blob)));
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_real = false;
                if i < bytes.len() && bytes[i] == b'.' {
                    is_real = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_real = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                let value = if is_real {
                    Value::Real(text.parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        message: format!("bad number {text:?}"),
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Value::Integer(v),
                        Err(_) => Value::Real(text.parse().map_err(|_| SqlError::Lex {
                            offset: start,
                            message: format!("bad number {text:?}"),
                        })?),
                    }
                };
                tokens.push(Token::Literal(value));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(sql[start..i].to_string()));
            }
            _ => {
                return Err(SqlError::Lex {
                    offset: i,
                    message: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

/// Lexes a single-quoted string starting at `start`; returns the unescaped
/// text and total consumed length.
fn lex_string(sql: &str, start: usize) -> SqlResult<(String, usize)> {
    let bytes = sql.as_bytes();
    debug_assert_eq!(bytes[start], b'\'');
    let mut i = start + 1;
    let mut s = String::new();
    loop {
        if i >= bytes.len() {
            return Err(SqlError::Lex { offset: start, message: "unterminated string".into() });
        }
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                s.push('\'');
                i += 2;
                continue;
            }
            i += 1;
            break;
        }
        // Strings are UTF-8; copy char-wise to stay on boundaries.
        let ch_len = utf8_len(bytes[i]);
        s.push_str(&sql[i..i + ch_len]);
        i += ch_len;
    }
    Ok((s, i - start))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_statement() {
        let toks = lex("SELECT _id, data FROM tab1 WHERE _id = 3;").unwrap();
        assert!(toks.iter().any(|t| t.is_kw("select")));
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Literal(Value::Integer(3))));
        assert!(toks.contains(&Token::Semicolon));
    }

    #[test]
    fn string_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Literal(Value::Text("it's".into()))]);
        assert!(lex("'open").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42").unwrap(), vec![Token::Literal(Value::Integer(42))]);
        assert_eq!(lex("4.5").unwrap(), vec![Token::Literal(Value::Real(4.5))]);
        assert_eq!(lex("1e3").unwrap(), vec![Token::Literal(Value::Real(1000.0))]);
    }

    #[test]
    fn params_auto_number() {
        let toks = lex("? ?5 ?").unwrap();
        assert_eq!(toks, vec![Token::Param(1), Token::Param(5), Token::Param(6)]);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT -- comment\n 1 /* block */ ;").unwrap();
        assert_eq!(toks.len(), 3);
        assert!(lex("/* open").is_err());
    }

    #[test]
    fn operators() {
        let toks = lex("<> != <= >= == || <").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::NotEq,
                Token::NotEq,
                Token::LtEq,
                Token::GtEq,
                Token::Eq,
                Token::Concat,
                Token::Lt
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        let toks = lex("\"weird name\" `select`").unwrap();
        assert_eq!(
            toks,
            vec![Token::QuotedIdent("weird name".into()), Token::QuotedIdent("select".into())]
        );
    }

    #[test]
    fn blob_literals() {
        assert_eq!(lex("x'0aff'").unwrap(), vec![Token::Literal(Value::Blob(vec![0x0a, 0xff]))]);
        assert!(lex("x'0a0'").is_err());
    }

    #[test]
    fn unicode_strings() {
        let toks = lex("'héllo 世界'").unwrap();
        assert_eq!(toks, vec![Token::Literal(Value::Text("héllo 世界".into()))]);
    }

    #[test]
    fn rejects_stray_chars() {
        assert!(lex("SELECT @x").is_err());
    }
}
