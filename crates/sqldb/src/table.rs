//! Row storage for base tables.
//!
//! Every table is keyed by a 64-bit integer rowid held in a `BTreeMap`,
//! which doubles as the primary-key index. When a column is declared
//! `INTEGER PRIMARY KEY` it aliases the rowid, exactly like SQLite; tables
//! without one get a hidden rowid that auto-assigns on insert.
//!
//! Row payloads live in one of two places. Small tables keep their
//! `Vec<Value>` rows resident, exactly as before. Once a table's
//! (approximate) encoded size crosses the threshold of an attached
//! [`HeapCfg`], its payloads migrate to the device-backed heap tier and
//! are faulted through the block page cache on access — the rowid map and
//! all secondary indexes stay resident, mirroring the VFS split between
//! inline and spilled file data. Reads hand out `Cow` rows so the
//! resident path stays zero-copy while the paged path decodes from a
//! pinned cache frame.
//!
//! The COW proxy sets a *primary-key start* on delta tables so that rows a
//! delegate inserts get ids from a large offset `N` and never collide with
//! public rows (paper §5.2).
//!
//! # Multiversion storage
//!
//! Resident rows are multiversioned: the rowid map is an
//! `Arc<BTreeMap<i64, Arc<VerNode>>>` whose entries are short,
//! newest-first per-row version chains stamped with the commit stamp that
//! wrote them. [`Table::freeze`] shallow-copies the map `Arc` into an
//! immutable snapshot table, so `Database::begin_read` is O(#tables) and
//! snapshot readers see exactly the committed heads at freeze time
//! without ever walking a chain. Mutations privatize the map with
//! `Arc::make_mut`, push a fresh head above the old version, and run the
//! refcount-driven chain trim ([`trim_chain`]) — in the common
//! no-snapshot case the chain collapses back to length one immediately.
//!
//! Cloning a table — transaction snapshots, COW delta setup — shares
//! resident rows structurally the same way (copy-on-write at the next
//! mutation); paged rows are always materialized because snapshots must
//! not alias heap pages the live table keeps mutating.

use crate::ast::ColumnDef;
use crate::error::{SqlError, SqlResult};
use crate::heap::{encoded_len, HeapCfg, PagedRows};
use crate::index::SecondaryIndex;
use crate::mvcc::MvccShared;
use crate::value::Value;
use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Schema of a base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Index of the `INTEGER PRIMARY KEY` column, if declared.
    pub pk_column: Option<usize>,
}

impl TableSchema {
    /// Builds a schema from CREATE TABLE column definitions.
    pub fn new(name: String, columns: Vec<ColumnDef>) -> SqlResult<Self> {
        let pks: Vec<usize> =
            columns.iter().enumerate().filter(|(_, c)| c.primary_key).map(|(i, _)| i).collect();
        if pks.len() > 1 {
            return Err(SqlError::Unsupported(format!(
                "table {name} declares a composite primary key"
            )));
        }
        let mut seen: Vec<&str> = Vec::new();
        for c in &columns {
            if seen.iter().any(|s| s.eq_ignore_ascii_case(&c.name)) {
                return Err(SqlError::AlreadyExists(format!("column {} in {name}", c.name)));
            }
            seen.push(&c.name);
        }
        Ok(TableSchema { name, columns, pk_column: pks.first().copied() })
    }

    /// Returns the position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Returns the column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

/// One committed version of a row in a newest-first chain.
///
/// `begin` is the commit stamp of the mutating statement that wrote the
/// version (informational: readers resolve visibility by map membership,
/// never by stamp comparison — see the module docs of [`crate::mvcc`]).
/// `next` points at the next-older version; the chain exists so a write
/// over a snapshot-pinned row is a push, not a copy, and so the GC
/// counters can report chain shape.
#[derive(Debug)]
struct VerNode {
    begin: u64,
    row: Vec<Value>,
    /// Next-older version. Readers resolve visibility by map membership
    /// and never follow this link, so it is owned by the single writer;
    /// the (never-contended) mutex exists only to keep `VerNode: Sync`
    /// while letting the trim splice dead versions out from *under* a
    /// snapshot-pinned node it cannot otherwise mutate.
    next: Mutex<Option<Arc<VerNode>>>,
}

/// Length of the version chain starting at `node`.
fn chain_len(node: &Arc<VerNode>) -> u64 {
    let mut n = 1;
    let mut cur = Arc::clone(node);
    loop {
        let next = cur.next.lock().clone();
        match next {
            Some(nx) => {
                n += 1;
                cur = nx;
            }
            None => break,
        }
    }
    n
}

/// Refcount-driven version GC, run in place after every write installs a
/// fresh head. A published snapshot pins each version it can see with its
/// own `Arc` in the frozen rowid map, so a chain node whose refcount has
/// returned to one is provably invisible to every reader and is spliced
/// out. The walk continues *through* still-pinned nodes (their `next`
/// links are writer-owned even though the node itself is shared), so a
/// steady stream of live snapshots cannot stop versions older than the
/// oldest one from being reclaimed: after every write the chain holds
/// exactly the head plus the still-pinned survivors, bounding its length
/// by the number of live snapshots plus one.
fn trim_chain(head: &Arc<VerNode>, mvcc: &MvccShared) {
    let mut gced = 0u64;
    let mut cur = Arc::clone(head);
    loop {
        // Splice every dead version directly below `cur`, then step to
        // the first still-pinned survivor (if any).
        let pinned = {
            let mut next = cur.next.lock();
            loop {
                match next.take() {
                    None => break None,
                    Some(n) => match Arc::try_unwrap(n) {
                        Ok(dead) => {
                            *next = dead.next.into_inner();
                            gced += 1;
                        }
                        Err(p) => {
                            *next = Some(Arc::clone(&p));
                            break Some(p);
                        }
                    },
                }
            }
        };
        match pinned {
            Some(p) => cur = p,
            None => break,
        }
    }
    if gced > 0 {
        mvcc.note_gced(gced);
    }
}

/// The two payload homes: resident version chains or the device-backed
/// heap. `bytes` tracks live encoded size (head versions only) in both
/// modes so the spill decision and stats cost nothing extra.
#[derive(Debug)]
enum Rows {
    Resident { map: Arc<BTreeMap<i64, Arc<VerNode>>>, bytes: usize },
    Paged(PagedRows),
}

impl Rows {
    fn resident() -> Self {
        Rows::Resident { map: Arc::new(BTreeMap::new()), bytes: 0 }
    }

    fn len(&self) -> usize {
        match self {
            Rows::Resident { map, .. } => map.len(),
            Rows::Paged(p) => p.len(),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Rows::Resident { bytes, .. } => *bytes,
            Rows::Paged(p) => p.bytes(),
        }
    }

    fn contains_key(&self, id: i64) -> bool {
        match self {
            Rows::Resident { map, .. } => map.contains_key(&id),
            Rows::Paged(p) => p.contains_key(id),
        }
    }

    fn max_key(&self) -> Option<i64> {
        match self {
            Rows::Resident { map, .. } => map.keys().next_back().copied(),
            Rows::Paged(p) => p.max_key(),
        }
    }

    fn get(&self, id: i64) -> Option<Cow<'_, [Value]>> {
        match self {
            Rows::Resident { map, .. } => map.get(&id).map(|n| Cow::Borrowed(n.row.as_slice())),
            Rows::Paged(p) => p.get(id).map(Cow::Owned),
        }
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (i64, Cow<'_, [Value]>)> + '_> {
        match self {
            Rows::Resident { map, .. } => {
                Box::new(map.iter().map(|(&id, n)| (id, Cow::Borrowed(n.row.as_slice()))))
            }
            Rows::Paged(p) => Box::new(p.iter().map(|(id, r)| (id, Cow::Owned(r)))),
        }
    }

    fn insert(&mut self, id: i64, values: Vec<Value>, mvcc: &MvccShared) {
        match self {
            Rows::Resident { map, bytes } => {
                *bytes += encoded_len(&values);
                let begin = mvcc.stamp() + 1;
                let map = Arc::make_mut(map);
                let next = map.remove(&id);
                if let Some(prev) = &next {
                    *bytes -= encoded_len(&prev.row);
                    debug_assert!(prev.begin <= begin, "version chains are newest-first");
                }
                let head = Arc::new(VerNode { begin, row: values, next: Mutex::new(next) });
                trim_chain(&head, mvcc);
                mvcc.note_version(chain_len(&head));
                map.insert(id, head);
            }
            Rows::Paged(p) => p.insert(id, &values),
        }
    }

    fn remove(&mut self, id: i64) -> Option<Vec<Value>> {
        match self {
            Rows::Resident { map, bytes } => {
                let old = Arc::make_mut(map).remove(&id)?;
                *bytes -= encoded_len(&old.row);
                // The whole chain (head included) is reclaimed by `Arc`
                // the moment the last snapshot referencing it drops.
                Some(match Arc::try_unwrap(old) {
                    Ok(node) => node.row,
                    Err(pinned) => pinned.row.clone(),
                })
            }
            Rows::Paged(p) => p.remove(id),
        }
    }

    fn clear(&mut self) {
        match self {
            Rows::Resident { map, bytes } => {
                // Swap rather than clear in place: a snapshot may still
                // share the old map.
                *map = Arc::new(BTreeMap::new());
                *bytes = 0;
            }
            Rows::Paged(p) => p.clear(),
        }
    }

    /// A logically private copy. Resident rows share the version-chain
    /// map structurally (`Arc`) and privatize copy-on-write at the next
    /// mutation; paged rows are materialized, never aliased (snapshots
    /// must not share heap pages with the live table).
    fn clone_resident(&self) -> Rows {
        match self {
            Rows::Resident { map, bytes } => Rows::Resident { map: map.clone(), bytes: *bytes },
            Rows::Paged(p) => Rows::Resident {
                map: Arc::new(
                    p.iter()
                        .map(|(id, row)| {
                            (id, Arc::new(VerNode { begin: 0, row, next: Mutex::new(None) }))
                        })
                        .collect(),
                ),
                bytes: p.bytes(),
            },
        }
    }
}

/// A base table: schema plus rows indexed by rowid.
#[derive(Debug)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Rows,
    /// Minimum rowid for auto-assigned keys (the COW proxy's offset `N`).
    pk_start: i64,
    /// Secondary indexes, maintained incrementally by every row mutation.
    /// Living inside the table means transaction snapshots (which clone
    /// tables) and `DROP TABLE` handle indexes with no extra bookkeeping.
    /// `Arc`-shared so snapshot freezes are shallow; privatized
    /// copy-on-write at the next index mutation.
    indexes: Arc<Vec<SecondaryIndex>>,
    /// Spill target and threshold; `None` keeps the table resident
    /// forever.
    heap: Option<HeapCfg>,
    /// MVCC bookkeeping shared with the owning database (attached at
    /// CREATE TABLE); standalone tables get a private default.
    mvcc: Arc<MvccShared>,
    /// Content version tag, re-minted from the shared MVCC counter on
    /// every mutation (and on attach). Clones copy the tag along with
    /// the content they share, so within one database's lineage two
    /// tables with equal tags have identical contents — the invariant
    /// `begin_read` and snapshot-reader rebinds rely on to skip
    /// unchanged tables.
    ver: u64,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            rows: self.rows.clone_resident(),
            pk_start: self.pk_start,
            indexes: Arc::clone(&self.indexes),
            heap: self.heap.clone(),
            mvcc: Arc::clone(&self.mvcc),
            ver: self.ver,
        }
    }
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Rows::resident(),
            pk_start: 1,
            indexes: Arc::new(Vec::new()),
            heap: None,
            mvcc: Arc::default(),
            ver: 0,
        }
    }

    /// Points the table at the owning database's shared MVCC bookkeeping.
    /// Re-mints the version tag from the new counter so a freshly
    /// attached table never aliases a tag minted before attachment
    /// (e.g. a same-named table that was dropped and recreated).
    pub(crate) fn attach_mvcc(&mut self, mvcc: Arc<MvccShared>) {
        self.mvcc = mvcc;
        self.ver = self.mvcc.next_table_ver();
    }

    /// The content version tag (see the `ver` field).
    pub(crate) fn version_tag(&self) -> u64 {
        self.ver
    }

    /// Re-mints the version tag; called by every mutating entry point
    /// (conservatively at entry, so failed statements over-invalidate —
    /// the only cost is one re-freeze at the next publication).
    fn touch(&mut self) {
        self.ver = self.mvcc.next_table_ver();
    }

    /// An immutable shallow freeze for publication inside a read
    /// snapshot: the row map and secondary indexes are shared by `Arc`,
    /// and the heap config is detached (a frozen table never spills).
    /// `None` when the rows live on the heap tier — paged payloads fault
    /// through a shared page cache whose pins and evictions must not be
    /// driven lock-free from reader threads.
    pub(crate) fn freeze(&self) -> Option<Table> {
        if self.is_paged() {
            return None;
        }
        Some(Table {
            schema: self.schema.clone(),
            rows: self.rows.clone_resident(),
            pk_start: self.pk_start,
            indexes: Arc::clone(&self.indexes),
            heap: None,
            mvcc: Arc::clone(&self.mvcc),
            ver: self.ver,
        })
    }

    /// Attaches a heap tier: once the table's encoded payload exceeds
    /// `cfg.threshold` bytes its rows move to the device and are faulted
    /// through the page cache on access. Oversized tables migrate
    /// immediately.
    pub fn attach_heap(&mut self, cfg: HeapCfg) {
        self.touch();
        self.heap = Some(cfg);
        self.maybe_spill();
    }

    /// True when the rows live on the heap tier rather than in memory.
    pub fn is_paged(&self) -> bool {
        matches!(self.rows, Rows::Paged(_))
    }

    /// Approximate encoded payload size (the spill accounting).
    pub fn payload_bytes(&self) -> usize {
        self.rows.bytes()
    }

    fn maybe_spill(&mut self) {
        let Some(cfg) = &self.heap else { return };
        let Rows::Resident { map, bytes } = &mut self.rows else { return };
        if *bytes <= cfg.threshold {
            return;
        }
        let mut paged = PagedRows::new(cfg.tier.clone());
        for (id, node) in std::mem::take(Arc::make_mut(map)) {
            paged.insert(id, &node.row);
        }
        self.rows = Rows::Paged(paged);
    }

    /// Creates a secondary index named `name` over `column`, populating it
    /// from the existing rows. Fails (leaving the table unchanged) on an
    /// unknown column, a duplicate index name on this table, or — for
    /// `unique` — existing duplicate non-NULL values.
    pub fn create_index(&mut self, name: &str, column: &str, unique: bool) -> SqlResult<()> {
        self.touch();
        let Some(col) = self.schema.column_index(column) else {
            return Err(SqlError::NoSuchColumn(format!("{}.{column}", self.schema.name)));
        };
        if self.has_index(name) {
            return Err(SqlError::AlreadyExists(format!("index {name}")));
        }
        let mut ix = SecondaryIndex::new(name, col, unique);
        for (id, row) in self.rows.iter() {
            ix.check_unique(&row[col], id)?;
            ix.insert_entry(&row, id);
        }
        Arc::make_mut(&mut self.indexes).push(ix);
        Ok(())
    }

    /// Drops the index named `name`; returns true if it existed.
    pub fn drop_index(&mut self, name: &str) -> bool {
        if !self.has_index(name) {
            return false;
        }
        self.touch();
        Arc::make_mut(&mut self.indexes).retain(|ix| !ix.name().eq_ignore_ascii_case(name));
        true
    }

    /// True when this table has an index named `name`.
    pub fn has_index(&self, name: &str) -> bool {
        self.indexes.iter().any(|ix| ix.name().eq_ignore_ascii_case(name))
    }

    /// The index over the column at schema position `column`, if any.
    pub fn index_on(&self, column: usize) -> Option<&SecondaryIndex> {
        self.indexes.iter().find(|ix| ix.column() == column)
    }

    /// All secondary indexes on this table.
    pub fn indexes(&self) -> &[SecondaryIndex] {
        self.indexes.as_slice()
    }

    /// Length of the version chain currently kept for `rowid` (0 when the
    /// row does not exist or lives on the heap tier). Observability for
    /// the MVCC GC; never used to answer queries.
    pub fn version_chain_len(&self, rowid: i64) -> u64 {
        match &self.rows {
            Rows::Resident { map, .. } => map.get(&rowid).map_or(0, |n| chain_len(n)),
            Rows::Paged(_) => 0,
        }
    }

    /// Sets the first auto-assigned rowid. Used by the COW proxy to start
    /// delta-table keys at a large offset.
    pub fn set_pk_start(&mut self, start: i64) {
        self.touch();
        self.pk_start = start;
    }

    /// Returns the configured auto-assignment start.
    pub fn pk_start(&self) -> i64 {
        self.pk_start
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.len() == 0
    }

    /// Returns the next rowid that auto-assignment would produce.
    pub fn next_rowid(&self) -> i64 {
        match self.rows.max_key() {
            Some(max) => (max + 1).max(self.pk_start),
            None => self.pk_start,
        }
    }

    /// Inserts a row given values aligned with the schema columns.
    ///
    /// A NULL (or absent) primary key auto-assigns the next rowid. With
    /// `replace` set, an existing row with the same key is overwritten
    /// (INSERT OR REPLACE); otherwise a duplicate key is a constraint
    /// error. Returns the rowid of the inserted row.
    pub fn insert(&mut self, mut values: Vec<Value>, replace: bool) -> SqlResult<i64> {
        self.touch();
        debug_assert_eq!(values.len(), self.schema.columns.len());
        // Apply column affinities.
        for (i, v) in values.iter_mut().enumerate() {
            let owned = std::mem::replace(v, Value::Null);
            *v = self.schema.columns[i].affinity.apply(owned);
        }
        let rowid = match self.schema.pk_column {
            Some(pk) => match &values[pk] {
                Value::Null => {
                    let id = self.next_rowid();
                    values[pk] = Value::Integer(id);
                    id
                }
                Value::Integer(i) => *i,
                other => {
                    return Err(SqlError::Type(format!(
                        "primary key of {} must be an integer, got {other:?}",
                        self.schema.name
                    )))
                }
            },
            None => self.next_rowid(),
        };
        for (i, c) in self.schema.columns.iter().enumerate() {
            if c.not_null && values[i].is_null() {
                return Err(SqlError::Type(format!(
                    "NOT NULL constraint failed: {}.{}",
                    self.schema.name, c.name
                )));
            }
        }
        if !replace && self.rows.contains_key(rowid) {
            return Err(SqlError::ConstraintPrimaryKey {
                table: self.schema.name.clone(),
                key: rowid,
            });
        }
        // Unique-index checks before any mutation. A row displaced by OR
        // REPLACE shares this rowid, so check_unique's self-exemption
        // already discounts its entries.
        for ix in self.indexes.iter() {
            ix.check_unique(&values[ix.column()], rowid)?;
        }
        if !self.indexes.is_empty() {
            if let Some(old) = self.rows.get(rowid) {
                let old = old.into_owned();
                for ix in Arc::make_mut(&mut self.indexes) {
                    ix.remove_entry(&old, rowid);
                }
            }
        }
        if !self.indexes.is_empty() {
            for ix in Arc::make_mut(&mut self.indexes) {
                ix.insert_entry(&values, rowid);
            }
        }
        self.rows.insert(rowid, values, &self.mvcc);
        self.maybe_spill();
        Ok(rowid)
    }

    /// Point lookup by rowid. Resident tables borrow the row; paged
    /// tables decode it from a pinned cache page.
    pub fn get(&self, rowid: i64) -> Option<Cow<'_, [Value]>> {
        self.rows.get(rowid)
    }

    /// True when a row with this rowid exists — no payload is touched, so
    /// paged tables answer from the resident rowid map.
    pub fn contains_rowid(&self, rowid: i64) -> bool {
        self.rows.contains_key(rowid)
    }

    /// Iterates rows in rowid order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (i64, Cow<'_, [Value]>)> + '_> {
        self.rows.iter()
    }

    /// Replaces the row at `rowid` (which must exist). If the new values
    /// change the primary key the row is re-keyed.
    pub fn update_row(&mut self, rowid: i64, mut values: Vec<Value>) -> SqlResult<()> {
        self.touch();
        for (i, v) in values.iter_mut().enumerate() {
            let owned = std::mem::replace(v, Value::Null);
            *v = self.schema.columns[i].affinity.apply(owned);
        }
        let new_rowid = match self.schema.pk_column {
            Some(pk) => match &values[pk] {
                Value::Integer(i) => *i,
                Value::Null => {
                    return Err(SqlError::Type(format!(
                        "cannot set primary key of {} to NULL",
                        self.schema.name
                    )))
                }
                other => {
                    return Err(SqlError::Type(format!(
                        "primary key of {} must be an integer, got {other:?}",
                        self.schema.name
                    )))
                }
            },
            None => rowid,
        };
        if new_rowid != rowid && self.rows.contains_key(new_rowid) {
            return Err(SqlError::ConstraintPrimaryKey {
                table: self.schema.name.clone(),
                key: new_rowid,
            });
        }
        // Drop the old row's index entries, then check uniqueness of the
        // new values; restore on failure so a rejected UPDATE leaves the
        // indexes untouched.
        let old = if self.indexes.is_empty() {
            None
        } else {
            self.rows.get(rowid).map(|r| r.into_owned())
        };
        if let Some(old) = &old {
            for ix in Arc::make_mut(&mut self.indexes) {
                ix.remove_entry(old, rowid);
            }
        }
        let conflict =
            self.indexes.iter().find_map(|ix| ix.check_unique(&values[ix.column()], new_rowid).err());
        if let Some(e) = conflict {
            if let Some(old) = &old {
                for ix in Arc::make_mut(&mut self.indexes) {
                    ix.insert_entry(old, rowid);
                }
            }
            return Err(e);
        }
        if !self.indexes.is_empty() {
            for ix in Arc::make_mut(&mut self.indexes) {
                ix.insert_entry(&values, new_rowid);
            }
        }
        if new_rowid != rowid {
            self.rows.remove(rowid);
        }
        self.rows.insert(new_rowid, values, &self.mvcc);
        self.maybe_spill();
        Ok(())
    }

    /// Deletes a row by rowid; returns true if it existed.
    pub fn delete_row(&mut self, rowid: i64) -> bool {
        self.touch();
        match self.rows.remove(rowid) {
            Some(old) => {
                if !self.indexes.is_empty() {
                    for ix in Arc::make_mut(&mut self.indexes) {
                        ix.remove_entry(&old, rowid);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Removes all rows.
    pub fn clear(&mut self) {
        self.touch();
        self.rows.clear();
        if !self.indexes.is_empty() {
            for ix in Arc::make_mut(&mut self.indexes) {
                ix.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Affinity;
    use crate::heap::HeapTier;
    use maxoid_block::MemDevice;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t".into(),
            vec![
                ColumnDef {
                    name: "_id".into(),
                    affinity: Affinity::Integer,
                    primary_key: true,
                    not_null: false,
                },
                ColumnDef {
                    name: "data".into(),
                    affinity: Affinity::Text,
                    primary_key: false,
                    not_null: false,
                },
            ],
        )
        .unwrap()
    }

    fn tiny_heap() -> HeapCfg {
        // 64-byte pages, 2 resident frames, spill after ~128 bytes: a few
        // rows are enough to both migrate and evict.
        let tier = HeapTier::new(Box::new(MemDevice::with_sector_size(64)), 2);
        HeapCfg { tier, threshold: 128 }
    }

    #[test]
    fn auto_assigns_pk() {
        let mut t = Table::new(schema());
        let id1 = t.insert(vec![Value::Null, "a".into()], false).unwrap();
        let id2 = t.insert(vec![Value::Null, "b".into()], false).unwrap();
        assert_eq!((id1, id2), (1, 2));
        assert_eq!(t.get(1).unwrap()[0], Value::Integer(1));
    }

    #[test]
    fn pk_start_offsets_new_rows() {
        let mut t = Table::new(schema());
        t.set_pk_start(10_000_001);
        let id = t.insert(vec![Value::Null, "e".into()], false).unwrap();
        assert_eq!(id, 10_000_001);
        // Explicit low keys are still allowed (copy-on-write of row 2).
        let id2 = t.insert(vec![Value::Integer(2), "b".into()], false).unwrap();
        assert_eq!(id2, 2);
        // But the next auto key continues above the offset.
        assert_eq!(t.insert(vec![Value::Null, "f".into()], false).unwrap(), 10_000_002);
    }

    #[test]
    fn duplicate_pk_is_constraint_error() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        let err = t.insert(vec![Value::Integer(1), "b".into()], false).unwrap_err();
        assert!(matches!(err, SqlError::ConstraintPrimaryKey { key: 1, .. }));
        // OR REPLACE overwrites.
        t.insert(vec![Value::Integer(1), "b".into()], true).unwrap();
        assert_eq!(t.get(1).unwrap()[1], Value::Text("b".into()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn affinity_applied_on_insert() {
        let mut t = Table::new(schema());
        let id = t.insert(vec![Value::Text("7".into()), Value::Integer(42)], false).unwrap();
        assert_eq!(id, 7);
        assert_eq!(t.get(7).unwrap()[1], Value::Text("42".into()));
    }

    #[test]
    fn update_rekeys_on_pk_change() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.update_row(1, vec![Value::Integer(5), "a".into()]).unwrap();
        assert!(t.get(1).is_none());
        assert_eq!(t.get(5).unwrap()[1], Value::Text("a".into()));
    }

    #[test]
    fn not_null_enforced() {
        let s = TableSchema::new(
            "t".into(),
            vec![
                ColumnDef {
                    name: "_id".into(),
                    affinity: Affinity::Integer,
                    primary_key: true,
                    not_null: false,
                },
                ColumnDef {
                    name: "w".into(),
                    affinity: Affinity::Text,
                    primary_key: false,
                    not_null: true,
                },
            ],
        )
        .unwrap();
        let mut t = Table::new(s);
        assert!(t.insert(vec![Value::Null, Value::Null], false).is_err());
    }

    #[test]
    fn composite_pk_rejected() {
        let err = TableSchema::new(
            "t".into(),
            vec![
                ColumnDef {
                    name: "a".into(),
                    affinity: Affinity::Integer,
                    primary_key: true,
                    not_null: false,
                },
                ColumnDef {
                    name: "b".into(),
                    affinity: Affinity::Integer,
                    primary_key: true,
                    not_null: false,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = TableSchema::new(
            "t".into(),
            vec![
                ColumnDef {
                    name: "a".into(),
                    affinity: Affinity::Integer,
                    primary_key: false,
                    not_null: false,
                },
                ColumnDef {
                    name: "A".into(),
                    affinity: Affinity::Integer,
                    primary_key: false,
                    not_null: false,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::AlreadyExists(_)));
    }

    #[test]
    fn index_follows_update_of_indexed_column() {
        let mut t = Table::new(schema());
        t.create_index("ix_data", "data", false).unwrap();
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.insert(vec![Value::Integer(2), "b".into()], false).unwrap();
        t.update_row(1, vec![Value::Integer(1), "b".into()]).unwrap();
        let ix = t.index_on(1).unwrap();
        assert_eq!(ix.probe_eq(&"a".into()), Vec::<i64>::new());
        assert_eq!(ix.probe_eq(&"b".into()), vec![1, 2]);
        // Re-keying the pk moves the index entry to the new rowid.
        t.update_row(1, vec![Value::Integer(9), "b".into()]).unwrap();
        assert_eq!(t.index_on(1).unwrap().probe_eq(&"b".into()), vec![2, 9]);
    }

    #[test]
    fn index_follows_insert_or_replace() {
        let mut t = Table::new(schema());
        t.create_index("ix_data", "data", false).unwrap();
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.insert(vec![Value::Integer(1), "z".into()], true).unwrap();
        let ix = t.index_on(1).unwrap();
        assert_eq!(ix.probe_eq(&"a".into()), Vec::<i64>::new());
        assert_eq!(ix.probe_eq(&"z".into()), vec![1]);
    }

    #[test]
    fn index_follows_delete_and_clear() {
        let mut t = Table::new(schema());
        t.create_index("ix_data", "data", false).unwrap();
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.insert(vec![Value::Integer(2), "a".into()], false).unwrap();
        t.delete_row(1);
        assert_eq!(t.index_on(1).unwrap().probe_eq(&"a".into()), vec![2]);
        t.clear();
        assert_eq!(t.index_on(1).unwrap().key_count(), 0);
    }

    #[test]
    fn unique_index_rejects_duplicates_but_not_replace_or_nulls() {
        let mut t = Table::new(schema());
        t.create_index("u_data", "data", true).unwrap();
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        let err = t.insert(vec![Value::Integer(2), "a".into()], false).unwrap_err();
        assert!(matches!(err, SqlError::ConstraintUnique { .. }));
        // Same pk via OR REPLACE displaces the old row: no conflict.
        t.insert(vec![Value::Integer(1), "a".into()], true).unwrap();
        // NULLs never conflict.
        t.insert(vec![Value::Integer(3), Value::Null], false).unwrap();
        t.insert(vec![Value::Integer(4), Value::Null], false).unwrap();
        // A rejected UPDATE leaves the index untouched.
        t.insert(vec![Value::Integer(5), "b".into()], false).unwrap();
        assert!(t.update_row(5, vec![Value::Integer(5), "a".into()]).is_err());
        assert_eq!(t.index_on(1).unwrap().probe_eq(&"b".into()), vec![5]);
    }

    #[test]
    fn create_unique_index_rejects_existing_duplicates() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.insert(vec![Value::Integer(2), "a".into()], false).unwrap();
        assert!(t.create_index("u_data", "data", true).is_err());
        // Failed creation leaves no partial index behind.
        assert!(t.index_on(1).is_none());
        assert!(t.create_index("ix", "data", false).is_ok());
    }

    #[test]
    fn hidden_rowid_without_pk() {
        let s = TableSchema::new(
            "t".into(),
            vec![ColumnDef {
                name: "x".into(),
                affinity: Affinity::Text,
                primary_key: false,
                not_null: false,
            }],
        )
        .unwrap();
        let mut t = Table::new(s);
        assert_eq!(t.insert(vec!["a".into()], false).unwrap(), 1);
        assert_eq!(t.insert(vec!["b".into()], false).unwrap(), 2);
    }

    #[test]
    fn table_spills_past_the_threshold_and_stays_queryable() {
        let mut t = Table::new(schema());
        t.attach_heap(tiny_heap());
        assert!(!t.is_paged(), "empty table stays resident");
        for i in 0..50 {
            t.insert(vec![Value::Integer(i), format!("row-{i}").into()], false).unwrap();
        }
        assert!(t.is_paged(), "50 rows must cross a 128-byte threshold");
        assert_eq!(t.len(), 50);
        assert_eq!(t.get(7).unwrap()[1], Value::Text("row-7".into()));
        assert!(t.contains_rowid(49) && !t.contains_rowid(50));
        assert_eq!(t.iter().count(), 50);
        assert_eq!(t.next_rowid(), 50);
        // Mutations keep working against the paged storage.
        t.update_row(7, vec![Value::Integer(7), "edited".into()]).unwrap();
        assert_eq!(t.get(7).unwrap()[1], Value::Text("edited".into()));
        assert!(t.delete_row(8));
        assert!(t.get(8).is_none());
        assert_eq!(t.len(), 49);
    }

    #[test]
    fn paged_table_maintains_indexes_like_resident() {
        let mut resident = Table::new(schema());
        let mut paged = Table::new(schema());
        paged.attach_heap(HeapCfg { tier: tiny_heap().tier, threshold: 0 });
        for t in [&mut resident, &mut paged] {
            t.create_index("ix_data", "data", false).unwrap();
            for i in 0..30 {
                t.insert(vec![Value::Integer(i), format!("d{}", i % 3).into()], false).unwrap();
            }
            t.update_row(4, vec![Value::Integer(4), "d0".into()]).unwrap();
            t.delete_row(9);
        }
        assert!(paged.is_paged() && !resident.is_paged());
        assert_eq!(
            resident.index_on(1).unwrap().probe_eq(&"d0".into()),
            paged.index_on(1).unwrap().probe_eq(&"d0".into()),
        );
        let a: Vec<_> = resident.iter().map(|(id, r)| (id, r.into_owned())).collect();
        let b: Vec<_> = paged.iter().map(|(id, r)| (id, r.into_owned())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn cloning_a_paged_table_materializes_a_private_copy() {
        let mut t = Table::new(schema());
        t.attach_heap(HeapCfg { tier: tiny_heap().tier, threshold: 0 });
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        assert!(t.is_paged());
        let snap = t.clone();
        assert!(!snap.is_paged(), "snapshots are resident copies");
        // Mutating the original never leaks into the snapshot.
        t.update_row(1, vec![Value::Integer(1), "z".into()]).unwrap();
        assert_eq!(snap.get(1).unwrap()[1], Value::Text("a".into()));
        assert_eq!(t.get(1).unwrap()[1], Value::Text("z".into()));
    }

    #[test]
    fn clear_returns_heap_space() {
        let cfg = tiny_heap();
        let tier = cfg.tier.clone();
        let mut t = Table::new(schema());
        t.attach_heap(HeapCfg { tier: tier.clone(), threshold: 0 });
        for i in 0..20 {
            t.insert(vec![Value::Integer(i), "payload".into()], false).unwrap();
        }
        let high = tier.with(|h| h.alloc.next_sector());
        assert!(high > 0);
        t.clear();
        assert_eq!(tier.with(|h| h.alloc.free_runs()), vec![(0, high)]);
        assert!(t.is_empty());
    }
}
