//! Row storage for base tables.
//!
//! Every table is keyed by a 64-bit integer rowid held in a `BTreeMap`,
//! which doubles as the primary-key index. When a column is declared
//! `INTEGER PRIMARY KEY` it aliases the rowid, exactly like SQLite; tables
//! without one get a hidden rowid that auto-assigns on insert.
//!
//! The COW proxy sets a *primary-key start* on delta tables so that rows a
//! delegate inserts get ids from a large offset `N` and never collide with
//! public rows (paper §5.2).

use crate::ast::ColumnDef;
use crate::error::{SqlError, SqlResult};
use crate::index::SecondaryIndex;
use crate::value::Value;
use std::collections::BTreeMap;

/// Schema of a base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Index of the `INTEGER PRIMARY KEY` column, if declared.
    pub pk_column: Option<usize>,
}

impl TableSchema {
    /// Builds a schema from CREATE TABLE column definitions.
    pub fn new(name: String, columns: Vec<ColumnDef>) -> SqlResult<Self> {
        let pks: Vec<usize> =
            columns.iter().enumerate().filter(|(_, c)| c.primary_key).map(|(i, _)| i).collect();
        if pks.len() > 1 {
            return Err(SqlError::Unsupported(format!(
                "table {name} declares a composite primary key"
            )));
        }
        let mut seen: Vec<&str> = Vec::new();
        for c in &columns {
            if seen.iter().any(|s| s.eq_ignore_ascii_case(&c.name)) {
                return Err(SqlError::AlreadyExists(format!("column {} in {name}", c.name)));
            }
            seen.push(&c.name);
        }
        Ok(TableSchema { name, columns, pk_column: pks.first().copied() })
    }

    /// Returns the position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Returns the column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

/// A base table: schema plus rows indexed by rowid.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: BTreeMap<i64, Vec<Value>>,
    /// Minimum rowid for auto-assigned keys (the COW proxy's offset `N`).
    pk_start: i64,
    /// Secondary indexes, maintained incrementally by every row mutation.
    /// Living inside the table means transaction snapshots (which clone
    /// tables) and `DROP TABLE` handle indexes with no extra bookkeeping.
    indexes: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table { schema, rows: BTreeMap::new(), pk_start: 1, indexes: Vec::new() }
    }

    /// Creates a secondary index named `name` over `column`, populating it
    /// from the existing rows. Fails (leaving the table unchanged) on an
    /// unknown column, a duplicate index name on this table, or — for
    /// `unique` — existing duplicate non-NULL values.
    pub fn create_index(&mut self, name: &str, column: &str, unique: bool) -> SqlResult<()> {
        let Some(col) = self.schema.column_index(column) else {
            return Err(SqlError::NoSuchColumn(format!("{}.{column}", self.schema.name)));
        };
        if self.has_index(name) {
            return Err(SqlError::AlreadyExists(format!("index {name}")));
        }
        let mut ix = SecondaryIndex::new(name, col, unique);
        for (&id, row) in &self.rows {
            ix.check_unique(&row[col], id)?;
            ix.insert_entry(row, id);
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Drops the index named `name`; returns true if it existed.
    pub fn drop_index(&mut self, name: &str) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|ix| !ix.name().eq_ignore_ascii_case(name));
        self.indexes.len() != before
    }

    /// True when this table has an index named `name`.
    pub fn has_index(&self, name: &str) -> bool {
        self.indexes.iter().any(|ix| ix.name().eq_ignore_ascii_case(name))
    }

    /// The index over the column at schema position `column`, if any.
    pub fn index_on(&self, column: usize) -> Option<&SecondaryIndex> {
        self.indexes.iter().find(|ix| ix.column() == column)
    }

    /// All secondary indexes on this table.
    pub fn indexes(&self) -> &[SecondaryIndex] {
        &self.indexes
    }

    /// Sets the first auto-assigned rowid. Used by the COW proxy to start
    /// delta-table keys at a large offset.
    pub fn set_pk_start(&mut self, start: i64) {
        self.pk_start = start;
    }

    /// Returns the configured auto-assignment start.
    pub fn pk_start(&self) -> i64 {
        self.pk_start
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the next rowid that auto-assignment would produce.
    pub fn next_rowid(&self) -> i64 {
        match self.rows.keys().next_back() {
            Some(max) => (*max + 1).max(self.pk_start),
            None => self.pk_start,
        }
    }

    /// Inserts a row given values aligned with the schema columns.
    ///
    /// A NULL (or absent) primary key auto-assigns the next rowid. With
    /// `replace` set, an existing row with the same key is overwritten
    /// (INSERT OR REPLACE); otherwise a duplicate key is a constraint
    /// error. Returns the rowid of the inserted row.
    pub fn insert(&mut self, mut values: Vec<Value>, replace: bool) -> SqlResult<i64> {
        debug_assert_eq!(values.len(), self.schema.columns.len());
        // Apply column affinities.
        for (i, v) in values.iter_mut().enumerate() {
            let owned = std::mem::replace(v, Value::Null);
            *v = self.schema.columns[i].affinity.apply(owned);
        }
        let rowid = match self.schema.pk_column {
            Some(pk) => match &values[pk] {
                Value::Null => {
                    let id = self.next_rowid();
                    values[pk] = Value::Integer(id);
                    id
                }
                Value::Integer(i) => *i,
                other => {
                    return Err(SqlError::Type(format!(
                        "primary key of {} must be an integer, got {other:?}",
                        self.schema.name
                    )))
                }
            },
            None => self.next_rowid(),
        };
        for (i, c) in self.schema.columns.iter().enumerate() {
            if c.not_null && values[i].is_null() {
                return Err(SqlError::Type(format!(
                    "NOT NULL constraint failed: {}.{}",
                    self.schema.name, c.name
                )));
            }
        }
        if !replace && self.rows.contains_key(&rowid) {
            return Err(SqlError::ConstraintPrimaryKey {
                table: self.schema.name.clone(),
                key: rowid,
            });
        }
        // Unique-index checks before any mutation. A row displaced by OR
        // REPLACE shares this rowid, so check_unique's self-exemption
        // already discounts its entries.
        for ix in &self.indexes {
            ix.check_unique(&values[ix.column()], rowid)?;
        }
        if let Some(old) = self.rows.get(&rowid) {
            let old = old.clone();
            for ix in &mut self.indexes {
                ix.remove_entry(&old, rowid);
            }
        }
        for ix in &mut self.indexes {
            ix.insert_entry(&values, rowid);
        }
        self.rows.insert(rowid, values);
        Ok(rowid)
    }

    /// Point lookup by rowid.
    pub fn get(&self, rowid: i64) -> Option<&Vec<Value>> {
        self.rows.get(&rowid)
    }

    /// Iterates rows in rowid order.
    pub fn iter(&self) -> impl Iterator<Item = (&i64, &Vec<Value>)> {
        self.rows.iter()
    }

    /// Replaces the row at `rowid` (which must exist). If the new values
    /// change the primary key the row is re-keyed.
    pub fn update_row(&mut self, rowid: i64, mut values: Vec<Value>) -> SqlResult<()> {
        for (i, v) in values.iter_mut().enumerate() {
            let owned = std::mem::replace(v, Value::Null);
            *v = self.schema.columns[i].affinity.apply(owned);
        }
        let new_rowid = match self.schema.pk_column {
            Some(pk) => match &values[pk] {
                Value::Integer(i) => *i,
                Value::Null => {
                    return Err(SqlError::Type(format!(
                        "cannot set primary key of {} to NULL",
                        self.schema.name
                    )))
                }
                other => {
                    return Err(SqlError::Type(format!(
                        "primary key of {} must be an integer, got {other:?}",
                        self.schema.name
                    )))
                }
            },
            None => rowid,
        };
        if new_rowid != rowid && self.rows.contains_key(&new_rowid) {
            return Err(SqlError::ConstraintPrimaryKey {
                table: self.schema.name.clone(),
                key: new_rowid,
            });
        }
        // Drop the old row's index entries, then check uniqueness of the
        // new values; restore on failure so a rejected UPDATE leaves the
        // indexes untouched.
        let old = self.rows.get(&rowid).cloned();
        if let Some(old) = &old {
            for ix in &mut self.indexes {
                ix.remove_entry(old, rowid);
            }
        }
        for ix in &self.indexes {
            if let Err(e) = ix.check_unique(&values[ix.column()], new_rowid) {
                if let Some(old) = &old {
                    for ix in &mut self.indexes {
                        ix.insert_entry(old, rowid);
                    }
                }
                return Err(e);
            }
        }
        for ix in &mut self.indexes {
            ix.insert_entry(&values, new_rowid);
        }
        if new_rowid != rowid {
            self.rows.remove(&rowid);
        }
        self.rows.insert(new_rowid, values);
        Ok(())
    }

    /// Deletes a row by rowid; returns true if it existed.
    pub fn delete_row(&mut self, rowid: i64) -> bool {
        match self.rows.remove(&rowid) {
            Some(old) => {
                for ix in &mut self.indexes {
                    ix.remove_entry(&old, rowid);
                }
                true
            }
            None => false,
        }
    }

    /// Removes all rows.
    pub fn clear(&mut self) {
        self.rows.clear();
        for ix in &mut self.indexes {
            ix.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Affinity;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t".into(),
            vec![
                ColumnDef {
                    name: "_id".into(),
                    affinity: Affinity::Integer,
                    primary_key: true,
                    not_null: false,
                },
                ColumnDef {
                    name: "data".into(),
                    affinity: Affinity::Text,
                    primary_key: false,
                    not_null: false,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn auto_assigns_pk() {
        let mut t = Table::new(schema());
        let id1 = t.insert(vec![Value::Null, "a".into()], false).unwrap();
        let id2 = t.insert(vec![Value::Null, "b".into()], false).unwrap();
        assert_eq!((id1, id2), (1, 2));
        assert_eq!(t.get(1).unwrap()[0], Value::Integer(1));
    }

    #[test]
    fn pk_start_offsets_new_rows() {
        let mut t = Table::new(schema());
        t.set_pk_start(10_000_001);
        let id = t.insert(vec![Value::Null, "e".into()], false).unwrap();
        assert_eq!(id, 10_000_001);
        // Explicit low keys are still allowed (copy-on-write of row 2).
        let id2 = t.insert(vec![Value::Integer(2), "b".into()], false).unwrap();
        assert_eq!(id2, 2);
        // But the next auto key continues above the offset.
        assert_eq!(t.insert(vec![Value::Null, "f".into()], false).unwrap(), 10_000_002);
    }

    #[test]
    fn duplicate_pk_is_constraint_error() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        let err = t.insert(vec![Value::Integer(1), "b".into()], false).unwrap_err();
        assert!(matches!(err, SqlError::ConstraintPrimaryKey { key: 1, .. }));
        // OR REPLACE overwrites.
        t.insert(vec![Value::Integer(1), "b".into()], true).unwrap();
        assert_eq!(t.get(1).unwrap()[1], Value::Text("b".into()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn affinity_applied_on_insert() {
        let mut t = Table::new(schema());
        let id = t.insert(vec![Value::Text("7".into()), Value::Integer(42)], false).unwrap();
        assert_eq!(id, 7);
        assert_eq!(t.get(7).unwrap()[1], Value::Text("42".into()));
    }

    #[test]
    fn update_rekeys_on_pk_change() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.update_row(1, vec![Value::Integer(5), "a".into()]).unwrap();
        assert!(t.get(1).is_none());
        assert_eq!(t.get(5).unwrap()[1], Value::Text("a".into()));
    }

    #[test]
    fn not_null_enforced() {
        let s = TableSchema::new(
            "t".into(),
            vec![
                ColumnDef {
                    name: "_id".into(),
                    affinity: Affinity::Integer,
                    primary_key: true,
                    not_null: false,
                },
                ColumnDef {
                    name: "w".into(),
                    affinity: Affinity::Text,
                    primary_key: false,
                    not_null: true,
                },
            ],
        )
        .unwrap();
        let mut t = Table::new(s);
        assert!(t.insert(vec![Value::Null, Value::Null], false).is_err());
    }

    #[test]
    fn composite_pk_rejected() {
        let err = TableSchema::new(
            "t".into(),
            vec![
                ColumnDef {
                    name: "a".into(),
                    affinity: Affinity::Integer,
                    primary_key: true,
                    not_null: false,
                },
                ColumnDef {
                    name: "b".into(),
                    affinity: Affinity::Integer,
                    primary_key: true,
                    not_null: false,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = TableSchema::new(
            "t".into(),
            vec![
                ColumnDef {
                    name: "a".into(),
                    affinity: Affinity::Integer,
                    primary_key: false,
                    not_null: false,
                },
                ColumnDef {
                    name: "A".into(),
                    affinity: Affinity::Integer,
                    primary_key: false,
                    not_null: false,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::AlreadyExists(_)));
    }

    #[test]
    fn index_follows_update_of_indexed_column() {
        let mut t = Table::new(schema());
        t.create_index("ix_data", "data", false).unwrap();
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.insert(vec![Value::Integer(2), "b".into()], false).unwrap();
        t.update_row(1, vec![Value::Integer(1), "b".into()]).unwrap();
        let ix = t.index_on(1).unwrap();
        assert_eq!(ix.probe_eq(&"a".into()), Vec::<i64>::new());
        assert_eq!(ix.probe_eq(&"b".into()), vec![1, 2]);
        // Re-keying the pk moves the index entry to the new rowid.
        t.update_row(1, vec![Value::Integer(9), "b".into()]).unwrap();
        assert_eq!(t.index_on(1).unwrap().probe_eq(&"b".into()), vec![2, 9]);
    }

    #[test]
    fn index_follows_insert_or_replace() {
        let mut t = Table::new(schema());
        t.create_index("ix_data", "data", false).unwrap();
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.insert(vec![Value::Integer(1), "z".into()], true).unwrap();
        let ix = t.index_on(1).unwrap();
        assert_eq!(ix.probe_eq(&"a".into()), Vec::<i64>::new());
        assert_eq!(ix.probe_eq(&"z".into()), vec![1]);
    }

    #[test]
    fn index_follows_delete_and_clear() {
        let mut t = Table::new(schema());
        t.create_index("ix_data", "data", false).unwrap();
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.insert(vec![Value::Integer(2), "a".into()], false).unwrap();
        t.delete_row(1);
        assert_eq!(t.index_on(1).unwrap().probe_eq(&"a".into()), vec![2]);
        t.clear();
        assert_eq!(t.index_on(1).unwrap().key_count(), 0);
    }

    #[test]
    fn unique_index_rejects_duplicates_but_not_replace_or_nulls() {
        let mut t = Table::new(schema());
        t.create_index("u_data", "data", true).unwrap();
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        let err = t.insert(vec![Value::Integer(2), "a".into()], false).unwrap_err();
        assert!(matches!(err, SqlError::ConstraintUnique { .. }));
        // Same pk via OR REPLACE displaces the old row: no conflict.
        t.insert(vec![Value::Integer(1), "a".into()], true).unwrap();
        // NULLs never conflict.
        t.insert(vec![Value::Integer(3), Value::Null], false).unwrap();
        t.insert(vec![Value::Integer(4), Value::Null], false).unwrap();
        // A rejected UPDATE leaves the index untouched.
        t.insert(vec![Value::Integer(5), "b".into()], false).unwrap();
        assert!(t.update_row(5, vec![Value::Integer(5), "a".into()]).is_err());
        assert_eq!(t.index_on(1).unwrap().probe_eq(&"b".into()), vec![5]);
    }

    #[test]
    fn create_unique_index_rejects_existing_duplicates() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Integer(1), "a".into()], false).unwrap();
        t.insert(vec![Value::Integer(2), "a".into()], false).unwrap();
        assert!(t.create_index("u_data", "data", true).is_err());
        // Failed creation leaves no partial index behind.
        assert!(t.index_on(1).is_none());
        assert!(t.create_index("ix", "data", false).is_ok());
    }

    #[test]
    fn hidden_rowid_without_pk() {
        let s = TableSchema::new(
            "t".into(),
            vec![ColumnDef {
                name: "x".into(),
                affinity: Affinity::Text,
                primary_key: false,
                not_null: false,
            }],
        )
        .unwrap();
        let mut t = Table::new(s);
        assert_eq!(t.insert(vec!["a".into()], false).unwrap(), 1);
        assert_eq!(t.insert(vec!["b".into()], false).unwrap(), 2);
    }
}
