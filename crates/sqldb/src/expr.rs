//! Expression evaluation with SQL three-valued logic.

use crate::ast::{BinOp, Expr, SelectStmt, UnOp};
use crate::db::Database;
use crate::error::{SqlError, SqlResult};
use crate::value::Value;
use std::borrow::Cow;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;

/// Wrapper giving [`Value`] a total order so it can live in a `BTreeSet`
/// (used for IN-subquery membership sets).
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A materialized membership set for an IN-subquery.
#[derive(Debug, Clone, Default)]
pub struct MemberSet {
    /// Non-NULL members.
    pub values: BTreeSet<OrdValue>,
    /// True when the subquery produced at least one NULL.
    pub has_null: bool,
}

/// Cache of IN-subquery results, keyed by the subquery's AST address.
///
/// The COW view's `NOT IN (SELECT _id FROM delta)` predicate is evaluated
/// once per statement instead of once per candidate row, which matters for
/// the paper's query-1k-words benchmark. Entries are `Arc` so the
/// per-candidate-row lookup shares the set instead of cloning it.
pub type SubqueryCache = RefCell<HashMap<usize, std::sync::Arc<MemberSet>>>;

/// NEW/OLD row context inside an INSTEAD OF trigger body.
#[derive(Debug, Clone)]
pub struct TriggerCtx {
    /// Column names shared by NEW and OLD.
    pub columns: Vec<String>,
    /// NEW row (INSERT and UPDATE).
    pub new: Option<Vec<Value>>,
    /// OLD row (UPDATE and DELETE).
    pub old: Option<Vec<Value>>,
}

impl TriggerCtx {
    fn lookup(&self, which: &str, name: &str) -> Option<Value> {
        let row = match which {
            _ if which.eq_ignore_ascii_case("new") => self.new.as_ref()?,
            _ if which.eq_ignore_ascii_case("old") => self.old.as_ref()?,
            _ => return None,
        };
        let idx = self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))?;
        Some(row[idx].clone())
    }

    /// Returns true when `which` names NEW or OLD.
    pub fn is_pseudo_table(which: &str) -> bool {
        which.eq_ignore_ascii_case("new") || which.eq_ignore_ascii_case("old")
    }
}

/// The row scope an expression is evaluated against: one or more bound
/// sources, each contributing named columns.
///
/// Column names and row values are held as [`Cow`] slices so scan loops can
/// bind rows straight out of table storage without cloning them first; only
/// rows that survive the WHERE filter are ever materialized.
#[derive(Debug, Clone, Default)]
pub struct RowScope<'a> {
    bindings: Vec<(String, Cow<'a, [String]>)>,
    values: Vec<Cow<'a, [Value]>>,
}

impl<'a> RowScope<'a> {
    /// Creates an empty scope (for constant expressions).
    pub fn empty() -> Self {
        RowScope::default()
    }

    /// Creates a scope with a single owned source.
    pub fn single(binding: &str, columns: Vec<String>, row: Vec<Value>) -> Self {
        RowScope {
            bindings: vec![(binding.to_string(), Cow::Owned(columns))],
            values: vec![Cow::Owned(row)],
        }
    }

    /// Creates a scope with a single borrowed source (zero-copy scan path).
    pub fn single_ref(binding: &str, columns: &'a [String], row: &'a [Value]) -> RowScope<'a> {
        RowScope {
            bindings: vec![(binding.to_string(), Cow::Borrowed(columns))],
            values: vec![Cow::Borrowed(row)],
        }
    }

    /// Adds an owned source to the scope.
    pub fn push(&mut self, binding: &str, columns: Vec<String>, row: Vec<Value>) {
        self.bindings.push((binding.to_string(), Cow::Owned(columns)));
        self.values.push(Cow::Owned(row));
    }

    /// Adds a borrowed source to the scope (zero-copy scan path).
    pub fn push_ref(&mut self, binding: &str, columns: &'a [String], row: &'a [Value]) {
        self.bindings.push((binding.to_string(), Cow::Borrowed(columns)));
        self.values.push(Cow::Borrowed(row));
    }

    /// Resolves a (possibly qualified) column reference.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> SqlResult<Value> {
        match table {
            Some(t) => {
                for (i, (binding, cols)) in self.bindings.iter().enumerate() {
                    if binding.eq_ignore_ascii_case(t) {
                        if let Some(ci) = cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                            return Ok(self.values[i][ci].clone());
                        }
                        return Err(SqlError::NoSuchColumn(format!("{t}.{name}")));
                    }
                }
                Err(SqlError::NoSuchColumn(format!("{t}.{name}")))
            }
            None => {
                let mut found: Option<Value> = None;
                for (i, (_, cols)) in self.bindings.iter().enumerate() {
                    if let Some(ci) = cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                        if found.is_some() {
                            return Err(SqlError::NoSuchColumn(format!(
                                "ambiguous column name: {name}"
                            )));
                        }
                        found = Some(self.values[i][ci].clone());
                    }
                }
                found.ok_or_else(|| SqlError::NoSuchColumn(name.to_string()))
            }
        }
    }

    /// Returns all column values in binding order (for `*` expansion).
    pub fn all_values(&self) -> Vec<Value> {
        self.values.iter().flat_map(|v| v.iter().cloned()).collect()
    }

    /// Returns all column names in binding order.
    pub fn all_columns(&self) -> Vec<String> {
        self.bindings.iter().flat_map(|(_, c)| c.iter().cloned()).collect()
    }

    /// Returns column names for one binding.
    pub fn binding_columns(&self, binding: &str) -> SqlResult<Vec<String>> {
        self.bindings
            .iter()
            .find(|(b, _)| b.eq_ignore_ascii_case(binding))
            .map(|(_, c)| c.to_vec())
            .ok_or_else(|| SqlError::NoSuchTable(binding.to_string()))
    }

    /// Returns column values for one binding.
    pub fn binding_values(&self, binding: &str) -> SqlResult<Vec<Value>> {
        self.bindings
            .iter()
            .position(|(b, _)| b.eq_ignore_ascii_case(binding))
            .map(|i| self.values[i].to_vec())
            .ok_or_else(|| SqlError::NoSuchTable(binding.to_string()))
    }
}

/// Everything an expression evaluation needs besides the row itself.
pub struct EvalEnv<'a> {
    /// The database, for IN-subqueries.
    pub db: &'a Database,
    /// Positional parameters (1-based).
    pub params: &'a [Value],
    /// Trigger NEW/OLD context, when inside a trigger body.
    pub trigger: Option<&'a TriggerCtx>,
    /// Per-statement subquery cache.
    pub cache: &'a SubqueryCache,
    /// View-expansion recursion depth.
    pub depth: usize,
}

/// Evaluates an expression against a row scope.
pub fn eval(expr: &Expr, scope: &RowScope, env: &EvalEnv<'_>) -> SqlResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => env
            .params
            .get(i.checked_sub(1).ok_or(SqlError::MissingParam(0))?)
            .cloned()
            .ok_or(SqlError::MissingParam(*i)),
        Expr::Column { table, name } => {
            if let (Some(t), Some(trig)) = (table.as_deref(), env.trigger) {
                if TriggerCtx::is_pseudo_table(t) {
                    return trig
                        .lookup(t, name)
                        .ok_or_else(|| SqlError::NoSuchColumn(format!("{t}.{name}")));
                }
            }
            scope.resolve(table.as_deref(), name)
        }
        Expr::Unary(op, inner) => {
            let v = eval(inner, scope, env)?;
            match op {
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Integer(i) => Ok(Value::Integer(-i)),
                    Value::Real(r) => Ok(Value::Real(-r)),
                    other => other
                        .as_real()
                        .map(|r| Value::Real(-r))
                        .ok_or_else(|| SqlError::Type("cannot negate non-number".into())),
                },
                UnOp::Not => match v.truthiness() {
                    None => Ok(Value::Null),
                    Some(b) => Ok(Value::Integer(!b as i64)),
                },
            }
        }
        Expr::Binary(op, l, r) => eval_binary(*op, l, r, scope, env),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, scope, env)?;
            Ok(Value::Integer((v.is_null() != *negated) as i64))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, scope, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, scope, env)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Value::Integer(!*negated as i64)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Integer(*negated as i64))
            }
        }
        Expr::InSelect { expr, select, negated } => {
            let v = eval(expr, scope, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            if let Some(contains) = probe_in_select(select, &v, env) {
                return Ok(Value::Integer((contains != *negated) as i64));
            }
            let set = member_set(select, env)?;
            if set.values.contains(&OrdValue(v)) {
                Ok(Value::Integer(!*negated as i64))
            } else if set.has_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Integer(*negated as i64))
            }
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, scope, env)?;
            let p = eval(pattern, scope, env)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let text = v.to_string();
            let pat = p.to_string();
            let matched = like_match(&pat, &text);
            Ok(Value::Integer((matched != *negated) as i64))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, scope, env)?;
            let lo = eval(low, scope, env)?;
            let hi = eval(high, scope, env)?;
            let ge = v.sql_cmp(&lo).map(|o| o != Ordering::Less);
            let le = v.sql_cmp(&hi).map(|o| o != Ordering::Greater);
            match (ge, le) {
                (Some(a), Some(b)) => Ok(Value::Integer(((a && b) != *negated) as i64)),
                _ => Ok(Value::Null),
            }
        }
        Expr::Call { name, args, star } => eval_scalar_fn(name, args, *star, scope, env),
    }
}

/// Answers `v IN (SELECT pk FROM t)` with a rowid point probe instead of
/// materializing the membership set. The COW views' correlated predicate
/// `_id NOT IN (SELECT _id FROM <delta>)` has exactly this shape, and the
/// naive evaluation re-scans the whole delta on every statement — O(delta)
/// per operation, which is what made delegate point queries and updates
/// grow with the number of copied-up rows. The probe applies only when the
/// subquery is a bare single-column projection of one table's INTEGER
/// PRIMARY KEY (no WHERE/GROUP/HAVING/ORDER/LIMIT): such a set can contain
/// neither NULLs nor duplicates, so membership reduces to one BTreeMap
/// lookup. Non-integer candidates fall back to the set path so SQL
/// affinity comparisons keep their ordinary semantics. Gated on the
/// statement caches: the cache-disabled mode keeps the naive evaluation,
/// which is what the cached-vs-uncached equivalence proptests compare
/// against.
fn probe_in_select(select: &SelectStmt, v: &Value, env: &EvalEnv<'_>) -> Option<bool> {
    if !env.db.statement_caches_enabled() {
        return None;
    }
    if select.cores.len() != 1
        || !select.order_by.is_empty()
        || select.limit.is_some()
        || select.offset.is_some()
    {
        return None;
    }
    let core = &select.cores[0];
    if core.where_clause.is_some() || !core.group_by.is_empty() || core.having.is_some() {
        return None;
    }
    if core.from.len() != 1 {
        return None;
    }
    let tref = &core.from[0];
    if env.trigger.is_some() && TriggerCtx::is_pseudo_table(&tref.name) {
        return None;
    }
    let [crate::ast::ResultColumn::Expr { expr: Expr::Column { table: qual, name }, .. }] =
        core.columns.as_slice()
    else {
        return None;
    };
    if let Some(q) = qual {
        let binding = tref.alias.as_deref().unwrap_or(&tref.name);
        if !q.eq_ignore_ascii_case(binding) {
            return None;
        }
    }
    let table = env.db.table(&tref.name).ok()?;
    let pk = table.schema.pk_column?;
    if !table.schema.columns[pk].name.eq_ignore_ascii_case(name) {
        return None;
    }
    let Value::Integer(rowid) = v else {
        return None;
    };
    env.db.stats.point_lookups.set(env.db.stats.point_lookups.get() + 1);
    // Existence only: the resident rowid map answers without faulting the
    // row payload in from a paged table.
    Some(table.contains_rowid(*rowid))
}

/// Computes (with caching) the membership set of an IN-subquery. The
/// returned `Arc` is shared with the cache: a hit is a refcount bump,
/// never a set clone.
fn member_set(select: &SelectStmt, env: &EvalEnv<'_>) -> SqlResult<std::sync::Arc<MemberSet>> {
    let key = select as *const SelectStmt as usize;
    if let Some(cached) = env.cache.borrow().get(&key) {
        return Ok(std::sync::Arc::clone(cached));
    }
    let rs = env.db.exec_select(select, env.params, env.trigger, env.cache, env.depth + 1)?;
    let mut set = MemberSet::default();
    for row in rs.rows {
        let v = row.into_iter().next().unwrap_or(Value::Null);
        if v.is_null() {
            set.has_null = true;
        } else {
            set.values.insert(OrdValue(v));
        }
    }
    let set = std::sync::Arc::new(set);
    env.cache.borrow_mut().insert(key, std::sync::Arc::clone(&set));
    Ok(set)
}

fn eval_binary(
    op: BinOp,
    l: &Expr,
    r: &Expr,
    scope: &RowScope,
    env: &EvalEnv<'_>,
) -> SqlResult<Value> {
    // Short-circuiting logical operators with three-valued logic.
    match op {
        BinOp::And => {
            let lv = eval(l, scope, env)?.truthiness();
            if lv == Some(false) {
                return Ok(Value::Integer(0));
            }
            let rv = eval(r, scope, env)?.truthiness();
            return Ok(match (lv, rv) {
                (_, Some(false)) => Value::Integer(0),
                (Some(true), Some(true)) => Value::Integer(1),
                _ => Value::Null,
            });
        }
        BinOp::Or => {
            let lv = eval(l, scope, env)?.truthiness();
            if lv == Some(true) {
                return Ok(Value::Integer(1));
            }
            let rv = eval(r, scope, env)?.truthiness();
            return Ok(match (lv, rv) {
                (_, Some(true)) => Value::Integer(1),
                (Some(false), Some(false)) => Value::Integer(0),
                _ => Value::Null,
            });
        }
        _ => {}
    }
    let lv = eval(l, scope, env)?;
    let rv = eval(r, scope, env)?;
    match op {
        BinOp::Eq => Ok(bool3(lv.sql_eq(&rv))),
        BinOp::NotEq => Ok(bool3(lv.sql_eq(&rv).map(|b| !b))),
        BinOp::Lt => Ok(bool3(lv.sql_cmp(&rv).map(|o| o == Ordering::Less))),
        BinOp::LtEq => Ok(bool3(lv.sql_cmp(&rv).map(|o| o != Ordering::Greater))),
        BinOp::Gt => Ok(bool3(lv.sql_cmp(&rv).map(|o| o == Ordering::Greater))),
        BinOp::GtEq => Ok(bool3(lv.sql_cmp(&rv).map(|o| o != Ordering::Less))),
        BinOp::Concat => {
            if lv.is_null() || rv.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Text(format!("{lv}{rv}")))
            }
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => arith(op, &lv, &rv),
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn bool3(b: Option<bool>) -> Value {
    match b {
        None => Value::Null,
        Some(v) => Value::Integer(v as i64),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic when both sides are integers (except division by
    // zero, which yields NULL like SQLite).
    if let (Value::Integer(a), Value::Integer(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Integer(a.wrapping_add(*b)),
            BinOp::Sub => Value::Integer(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Integer(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Integer(a.wrapping_div(*b))
                }
            }
            BinOp::Rem => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Integer(a.wrapping_rem(*b))
                }
            }
            _ => unreachable!("arith called with non-arithmetic op"),
        });
    }
    let (a, b) = match (l.as_real(), r.as_real()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(Value::Null),
    };
    Ok(match op {
        BinOp::Add => Value::Real(a + b),
        BinOp::Sub => Value::Real(a - b),
        BinOp::Mul => Value::Real(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Real(a / b)
            }
        }
        BinOp::Rem => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Real(a % b)
            }
        }
        _ => unreachable!("arith called with non-arithmetic op"),
    })
}

/// Evaluates a scalar (non-aggregate) function.
fn eval_scalar_fn(
    name: &str,
    args: &[Expr],
    star: bool,
    scope: &RowScope,
    env: &EvalEnv<'_>,
) -> SqlResult<Value> {
    if star
        || matches!(name, "count" | "max" | "min" | "sum" | "avg" | "total")
            && is_aggregate_position(name, args)
    {
        // Aggregates outside aggregate context: max/min with 2+ args are
        // the scalar forms; count/sum/avg never are.
        if (name == "max" || name == "min") && args.len() >= 2 {
            // Fall through to scalar max/min below.
        } else {
            return Err(SqlError::Type(format!(
                "aggregate function {name}() used outside aggregate query"
            )));
        }
    }
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval(a, scope, env)?);
    }
    match name {
        "length" => Ok(match vals.first() {
            Some(Value::Null) | None => Value::Null,
            Some(Value::Text(t)) => Value::Integer(t.chars().count() as i64),
            Some(Value::Blob(b)) => Value::Integer(b.len() as i64),
            Some(other) => Value::Integer(other.to_string().chars().count() as i64),
        }),
        "lower" => Ok(str_fn(vals.first(), |s| s.to_lowercase())),
        "upper" => Ok(str_fn(vals.first(), |s| s.to_uppercase())),
        "trim" => Ok(str_fn(vals.first(), |s| s.trim().to_string())),
        "abs" => Ok(match vals.first() {
            Some(Value::Integer(i)) => Value::Integer(i.wrapping_abs()),
            Some(Value::Real(r)) => Value::Real(r.abs()),
            _ => Value::Null,
        }),
        "coalesce" | "ifnull" => Ok(vals.into_iter().find(|v| !v.is_null()).unwrap_or(Value::Null)),
        "nullif" => {
            if vals.len() == 2 && vals[0].sql_eq(&vals[1]) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(vals.into_iter().next().unwrap_or(Value::Null))
            }
        }
        "max" => Ok(vals
            .into_iter()
            .filter(|v| !v.is_null())
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        "min" => Ok(vals
            .into_iter()
            .filter(|v| !v.is_null())
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        "typeof" => Ok(Value::Text(
            match vals.first() {
                Some(Value::Null) | None => "null",
                Some(Value::Integer(_)) => "integer",
                Some(Value::Real(_)) => "real",
                Some(Value::Text(_)) => "text",
                Some(Value::Blob(_)) => "blob",
            }
            .to_string(),
        )),
        "substr" | "substring" => {
            let text = match vals.first() {
                Some(Value::Null) | None => return Ok(Value::Null),
                Some(v) => v.to_string(),
            };
            let start = vals.get(1).and_then(|v| v.as_integer()).unwrap_or(1);
            let chars: Vec<char> = text.chars().collect();
            let len = vals.get(2).and_then(|v| v.as_integer()).unwrap_or(chars.len() as i64);
            let begin = if start > 0 {
                (start - 1) as usize
            } else {
                chars.len().saturating_sub(start.unsigned_abs() as usize)
            };
            let out: String = chars.iter().skip(begin).take(len.max(0) as usize).collect();
            Ok(Value::Text(out))
        }
        other => Err(SqlError::Unsupported(format!("function {other}()"))),
    }
}

/// True when this call must be treated as an aggregate (single-argument
/// max/min, or count/sum/avg/total in any form).
fn is_aggregate_position(name: &str, args: &[Expr]) -> bool {
    match name {
        "max" | "min" => args.len() == 1,
        "count" | "sum" | "avg" | "total" => true,
        _ => false,
    }
}

fn str_fn(v: Option<&Value>, f: impl Fn(&str) -> String) -> Value {
    match v {
        Some(Value::Null) | None => Value::Null,
        Some(other) => Value::Text(f(&other.to_string())),
    }
}

/// SQL LIKE matching: `%` matches any run, `_` matches one character;
/// matching is case-insensitive for ASCII, like SQLite's default.
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => (0..=t.len()).any(|k| rec(&p[1..], &t[k..])),
            Some('_') => !t.is_empty() && rec(&p[1..], &t[1..]),
            Some(c) => !t.is_empty() && t[0].eq_ignore_ascii_case(c) && rec(&p[1..], &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    rec(&p, &t)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => f.write_str(&v.to_sql_literal()),
            Expr::Column { table: Some(t), name } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => f.write_str(name),
            Expr::Param(i) => write!(f, "?{i}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-{e}"),
            Expr::Unary(UnOp::Not, e) => write!(f, "NOT {e}"),
            Expr::Binary(op, l, r) => {
                let sym = match op {
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                    BinOp::Eq => "=",
                    BinOp::NotEq => "!=",
                    BinOp::Lt => "<",
                    BinOp::LtEq => "<=",
                    BinOp::Gt => ">",
                    BinOp::GtEq => ">=",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Concat => "||",
                };
                write!(f, "{l} {sym} {r}")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(f, "{expr} {}IN ({})", if *negated { "NOT " } else { "" }, items.join(","))
            }
            Expr::InSelect { expr, negated, .. } => {
                write!(f, "{expr} {}IN (SELECT ...)", if *negated { "NOT " } else { "" })
            }
            Expr::Like { expr, pattern, negated } => {
                write!(f, "{expr} {}LIKE {pattern}", if *negated { "NOT " } else { "" })
            }
            Expr::Between { expr, low, high, negated } => {
                write!(f, "{expr} {}BETWEEN {low} AND {high}", if *negated { "NOT " } else { "" })
            }
            Expr::Call { name, args, star } => {
                if *star {
                    write!(f, "{name}(*)")
                } else {
                    let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                    write!(f, "{name}({})", items.join(","))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_wildcards() {
        assert!(like_match("a%", "abc"));
        assert!(like_match("%c", "abc"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abxc"));
        assert!(like_match("%b%", "abc"));
        assert!(like_match("ABC", "abc"));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
        assert!(like_match("%", ""));
    }

    #[test]
    fn scope_resolution() {
        let mut scope = RowScope::single(
            "t",
            vec!["a".into(), "b".into()],
            vec![Value::Integer(1), Value::Integer(2)],
        );
        scope.push("u", vec!["b".into()], vec![Value::Integer(3)]);
        assert_eq!(scope.resolve(None, "a").unwrap(), Value::Integer(1));
        assert_eq!(scope.resolve(Some("u"), "b").unwrap(), Value::Integer(3));
        // Unqualified `b` is ambiguous.
        assert!(scope.resolve(None, "b").is_err());
        assert!(scope.resolve(None, "zzz").is_err());
        assert_eq!(scope.all_columns(), vec!["a", "b", "b"]);
    }

    #[test]
    fn trigger_ctx_lookup() {
        let ctx = TriggerCtx {
            columns: vec!["_id".into(), "data".into()],
            new: Some(vec![Value::Integer(2), "b".into()]),
            old: None,
        };
        assert_eq!(ctx.lookup("NEW", "data"), Some(Value::Text("b".into())));
        assert_eq!(ctx.lookup("OLD", "data"), None);
        assert_eq!(ctx.lookup("new", "_ID"), Some(Value::Integer(2)));
    }

    #[test]
    fn expr_display_roundtrippable() {
        use crate::parser::parse_statement;
        let stmt = parse_statement("SELECT a + 1 * 2 FROM t WHERE b NOT IN (1,2)").unwrap();
        if let crate::ast::Stmt::Select(s) = stmt {
            let w = s.cores[0].where_clause.as_ref().unwrap();
            assert_eq!(w.to_string(), "b NOT IN (1,2)");
        } else {
            panic!("expected select");
        }
    }

    #[test]
    fn ord_value_total_order() {
        let mut set = BTreeSet::new();
        set.insert(OrdValue(Value::Integer(2)));
        set.insert(OrdValue(Value::Text("a".into())));
        set.insert(OrdValue(Value::Null));
        assert!(set.contains(&OrdValue(Value::Integer(2))));
        assert!(!set.contains(&OrdValue(Value::Integer(3))));
        assert_eq!(set.len(), 3);
    }
}
