//! Statement execution: SELECT pipeline, mutations, DDL and triggers.

use crate::ast::{
    Expr, InsertSource, OrderTerm, ResultColumn, SelectCore, SelectStmt, Stmt, TriggerEvent,
};
use crate::db::{key, Database, ExecOutcome, ResultSet, TriggerDef, ViewDef, MAX_DEPTH};
use crate::error::{SqlError, SqlResult};
use crate::expr::{eval, EvalEnv, RowScope, SubqueryCache, TriggerCtx};
use crate::planner::{bind_access_plan, AccessPath};
use crate::table::{Table, TableSchema};
use crate::value::Value;
use std::borrow::Cow;
use std::sync::Arc;

/// Output rows paired with optional pre-computed sort keys.
type KeyedRows = Vec<(Vec<Value>, Option<Vec<Value>>)>;

/// Executes one statement against the database.
pub fn exec_stmt(
    db: &mut Database,
    stmt: &Stmt,
    params: &[Value],
    trigger: Option<&TriggerCtx>,
) -> SqlResult<ExecOutcome> {
    match stmt {
        Stmt::CreateTable { name, if_not_exists, columns } => {
            if db.tables.contains_key(&key(name)) || db.views.contains_key(&key(name)) {
                if *if_not_exists {
                    return Ok(ExecOutcome::ddl());
                }
                return Err(SqlError::AlreadyExists(name.clone()));
            }
            let schema = TableSchema::new(name.clone(), columns.clone())?;
            let mut table = Table::new(schema);
            table.attach_mvcc(db.mvcc.clone());
            if let Some(cfg) = &db.heap {
                table.attach_heap(cfg.clone());
            }
            db.uncache_frozen(name);
            db.tables.insert(key(name), table);
            db.bump_catalog_generation();
            Ok(ExecOutcome::ddl())
        }
        Stmt::CreateView { name, if_not_exists, select } => {
            if db.tables.contains_key(&key(name)) || db.views.contains_key(&key(name)) {
                if *if_not_exists {
                    return Ok(ExecOutcome::ddl());
                }
                return Err(SqlError::AlreadyExists(name.clone()));
            }
            let columns = view_output_columns(db, select)?;
            db.views.insert(
                key(name),
                Arc::new(ViewDef { name: name.clone(), select: select.clone(), columns }),
            );
            db.bump_catalog_generation();
            Ok(ExecOutcome::ddl())
        }
        Stmt::CreateTrigger { name, if_not_exists, event, on, body } => {
            if db.triggers.contains_key(&key(name)) {
                if *if_not_exists {
                    return Ok(ExecOutcome::ddl());
                }
                return Err(SqlError::AlreadyExists(name.clone()));
            }
            if !db.views.contains_key(&key(on)) {
                return Err(SqlError::Unsupported(format!(
                    "INSTEAD OF trigger requires a view, {on} is not one"
                )));
            }
            db.triggers.insert(
                key(name),
                Arc::new(TriggerDef {
                    name: name.clone(),
                    event: *event,
                    on: key(on),
                    body: body.clone(),
                }),
            );
            db.bump_catalog_generation();
            Ok(ExecOutcome::ddl())
        }
        Stmt::CreateIndex { name, if_not_exists, unique, table, column } => {
            // Index names share one namespace across all tables, like SQLite.
            if db.tables.values().any(|t| t.has_index(name)) {
                if *if_not_exists {
                    return Ok(ExecOutcome::ddl());
                }
                return Err(SqlError::AlreadyExists(format!("index {name}")));
            }
            if !db.tables.contains_key(&key(table)) {
                return Err(SqlError::NoSuchTable(table.clone()));
            }
            db.table_mut(table)?.create_index(name, column, *unique)?;
            db.bump_catalog_generation();
            Ok(ExecOutcome::ddl())
        }
        Stmt::DropIndex { name, if_exists } => {
            // Resolve the owning table first so the drop goes through
            // `table_mut` (snapshot retraction + frozen-cache eviction).
            let owner =
                db.tables.iter().find(|(_, t)| t.has_index(name)).map(|(n, _)| n.clone());
            if let Some(owner) = owner {
                db.table_mut(&owner)?.drop_index(name);
                db.bump_catalog_generation();
                return Ok(ExecOutcome::ddl());
            }
            if *if_exists {
                return Ok(ExecOutcome::ddl());
            }
            Err(SqlError::NoSuchIndex(name.clone()))
        }
        Stmt::DropTable { name, if_exists } => {
            if db.tables.remove(&key(name)).is_none() {
                if !*if_exists {
                    return Err(SqlError::NoSuchTable(name.clone()));
                }
            } else {
                db.uncache_frozen(name);
                db.bump_catalog_generation();
            }
            Ok(ExecOutcome::ddl())
        }
        Stmt::DropView { name, if_exists } => {
            if db.views.remove(&key(name)).is_none() {
                if !*if_exists {
                    return Err(SqlError::NoSuchTable(name.clone()));
                }
            } else {
                db.bump_catalog_generation();
            }
            // Triggers on the view are dropped with it, like SQLite.
            db.triggers.retain(|_, t| t.on != key(name));
            Ok(ExecOutcome::ddl())
        }
        Stmt::DropTrigger { name, if_exists } => {
            if db.triggers.remove(&key(name)).is_none() {
                if !*if_exists {
                    return Err(SqlError::NoSuchTrigger(name.clone()));
                }
            } else {
                db.bump_catalog_generation();
            }
            Ok(ExecOutcome::ddl())
        }
        Stmt::Insert { table, columns, source, or_replace } => {
            exec_insert(db, table, columns, source, *or_replace, params, trigger)
        }
        Stmt::Update { table, sets, where_clause } => {
            exec_update(db, table, sets, where_clause.as_ref(), params, trigger)
        }
        Stmt::Delete { table, where_clause } => {
            exec_delete(db, table, where_clause.as_ref(), params, trigger)
        }
        Stmt::Select(select) => {
            let cache = SubqueryCache::default();
            let rs = exec_select(db, select, params, trigger, &cache, 0)?;
            Ok(ExecOutcome { rows: Some(rs), rows_affected: 0, last_insert_id: None })
        }
        Stmt::Begin => {
            db.begin()?;
            Ok(ExecOutcome::ddl())
        }
        Stmt::Commit => {
            db.commit()?;
            Ok(ExecOutcome::ddl())
        }
        Stmt::Rollback => {
            db.rollback()?;
            Ok(ExecOutcome::ddl())
        }
        Stmt::AlterRowidStart { table, start } => {
            db.table_mut(table)?.set_pk_start(*start);
            db.bump_catalog_generation();
            Ok(ExecOutcome::ddl())
        }
    }
}

/// Resolves a view's output column names at creation time.
fn view_output_columns(db: &Database, select: &SelectStmt) -> SqlResult<Vec<String>> {
    let core = &select.cores[0];
    let mut names = Vec::new();
    for rc in &core.columns {
        match rc {
            ResultColumn::Star => {
                for tref in &core.from {
                    names.extend(db.relation_columns(&tref.name)?);
                }
            }
            ResultColumn::TableStar(t) => {
                let tref = core
                    .from
                    .iter()
                    .find(|r| r.binding().eq_ignore_ascii_case(t))
                    .ok_or_else(|| SqlError::NoSuchTable(t.clone()))?;
                names.extend(db.relation_columns(&tref.name)?);
            }
            ResultColumn::Expr { expr, alias } => names.push(output_name(expr, alias.as_deref())),
        }
    }
    Ok(names)
}

/// Chooses the output column name for a projected expression.
pub(crate) fn output_name(expr: &Expr, alias: Option<&str>) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        other => other.to_string(),
    }
}

/// Executes a SELECT, returning its result set.
pub fn exec_select(
    db: &Database,
    stmt: &SelectStmt,
    params: &[Value],
    trigger: Option<&TriggerCtx>,
    cache: &SubqueryCache,
    depth: usize,
) -> SqlResult<ResultSet> {
    if depth > MAX_DEPTH {
        return Err(SqlError::Unsupported(
            "view nesting too deep (cyclic view definition?)".into(),
        ));
    }
    // Planner: try UNION ALL view flattening first. The rewrite (or the
    // decision not to rewrite) is memoized per statement shape and
    // catalog generation.
    if let Some(flat) = db.cached_flatten(stmt) {
        db.stats.flattened_queries.set(db.stats.flattened_queries.get() + 1);
        return exec_select_plain(db, &flat, params, trigger, cache, depth);
    }
    exec_select_plain(db, stmt, params, trigger, cache, depth)
}

fn exec_select_plain(
    db: &Database,
    stmt: &SelectStmt,
    params: &[Value],
    trigger: Option<&TriggerCtx>,
    cache: &SubqueryCache,
    depth: usize,
) -> SqlResult<ResultSet> {
    let env = EvalEnv { db, params, trigger, cache, depth };
    let compound = stmt.cores.len() > 1;
    let mut columns: Vec<String> = Vec::new();
    // Each entry: (output row, optional pre-computed sort keys).
    let mut rows: Vec<(Vec<Value>, Option<Vec<Value>>)> = Vec::new();
    for (i, core) in stmt.cores.iter().enumerate() {
        // For single-core queries, sort keys are computed against the
        // source scope so ORDER BY can reference unprojected columns. For
        // compounds, keys come from the output row (SQL rule).
        let order = if compound { &[][..] } else { &stmt.order_by[..] };
        let (cols, mut core_rows) = exec_core(db, core, order, &env)?;
        if i == 0 {
            columns = cols;
        } else if cols.len() != columns.len() {
            return Err(SqlError::Parse {
                message: "SELECTs to the left and right of UNION ALL do not have the same number of result columns".into(),
            });
        }
        rows.append(&mut core_rows);
    }
    // Sorting.
    if !stmt.order_by.is_empty() {
        if compound {
            // Resolve terms against output columns (name or position).
            let mut key_idx = Vec::new();
            let mut dirs = Vec::new();
            for term in &stmt.order_by {
                let idx = resolve_output_order_term(&term.expr, &columns, &env)?;
                key_idx.push(idx);
                dirs.push(term.ascending);
            }
            rows.sort_by(|a, b| {
                for (k, asc) in key_idx.iter().zip(&dirs) {
                    let ord = a.0[*k].total_cmp(&b.0[*k]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        } else {
            let dirs: Vec<bool> = stmt.order_by.iter().map(|t| t.ascending).collect();
            rows.sort_by(|a, b| {
                let (ka, kb) = (
                    a.1.as_ref().expect("single-core rows carry sort keys"),
                    b.1.as_ref().expect("single-core rows carry sort keys"),
                );
                for ((x, y), asc) in ka.iter().zip(kb.iter()).zip(&dirs) {
                    let ord = x.total_cmp(y);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
    }
    // OFFSET, then LIMIT.
    if let Some(offset) = &stmt.offset {
        let n = eval(offset, &RowScope::empty(), &env)?
            .as_integer()
            .ok_or_else(|| SqlError::Type("OFFSET must be an integer".into()))?;
        let n = (n.max(0) as usize).min(rows.len());
        rows.drain(..n);
    }
    if let Some(limit) = &stmt.limit {
        let n = eval(limit, &RowScope::empty(), &env)?
            .as_integer()
            .ok_or_else(|| SqlError::Type("LIMIT must be an integer".into()))?;
        rows.truncate(n.max(0) as usize);
    }
    Ok(ResultSet { columns, rows: rows.into_iter().map(|(r, _)| r).collect() })
}

/// Resolves a compound-query ORDER BY term to an output column index.
fn resolve_output_order_term(
    expr: &Expr,
    columns: &[String],
    env: &EvalEnv<'_>,
) -> SqlResult<usize> {
    match expr {
        Expr::Literal(Value::Integer(k)) if *k >= 1 && (*k as usize) <= columns.len() => {
            Ok(*k as usize - 1)
        }
        Expr::Column { table: None, name } => columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::NoSuchColumn(name.clone())),
        Expr::Param(_) => {
            let v = eval(expr, &RowScope::empty(), env)?;
            let k = v
                .as_integer()
                .ok_or_else(|| SqlError::Type("ORDER BY position must be integer".into()))?;
            if k >= 1 && (k as usize) <= columns.len() {
                Ok(k as usize - 1)
            } else {
                Err(SqlError::Type(format!("ORDER BY position {k} out of range")))
            }
        }
        other => Err(SqlError::Unsupported(format!(
            "ORDER BY term {other} on a compound SELECT (use a column name or position)"
        ))),
    }
}

/// A FROM source bound for the nested-loop join. Base-table rows are
/// borrowed straight out of storage; only view results are owned.
struct Source<'a> {
    binding: String,
    columns: Vec<String>,
    rows: Vec<Cow<'a, [Value]>>,
}

/// Executes one SELECT core, returning output columns and rows (with sort
/// keys computed from `order_by` against the source scope).
fn exec_core(
    db: &Database,
    core: &SelectCore,
    order_by: &[OrderTerm],
    env: &EvalEnv<'_>,
) -> SqlResult<(Vec<String>, KeyedRows)> {
    let aggregate = !core.group_by.is_empty()
        || core.columns.iter().any(|rc| match rc {
            ResultColumn::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });

    // FROM-less SELECT (e.g. `SELECT 1`).
    if core.from.is_empty() {
        let scope = RowScope::empty();
        if let Some(w) = &core.where_clause {
            if eval(w, &scope, env)?.truthiness() != Some(true) {
                return Ok((project_names(core, &scope)?, Vec::new()));
            }
        }
        let (names, row) = project(core, &scope, env)?;
        let keys = sort_keys(order_by, &scope, &row, &names, env)?;
        return Ok((names, vec![(row, keys)]));
    }

    // Fast path: single base table, no aggregate — stream rows without
    // materializing the whole table, using pk point lookups when possible.
    if core.from.len() == 1 && db.read_table(&key(&core.from[0].name)).is_some() {
        return exec_core_single_table(db, core, order_by, aggregate, env);
    }

    // General path: materialize every source (tables and views), then
    // nested-loop join.
    let mut sources = Vec::new();
    for tref in &core.from {
        let k = key(&tref.name);
        if let Some(t) = db.read_table(&k) {
            // Resident rows are borrowed from storage; paged tables
            // decode into owned rows — the Cow absorbs both.
            let rows: Vec<Cow<'_, [Value]>> = t.iter().map(|(_, r)| r).collect();
            db.stats.rows_scanned.set(db.stats.rows_scanned.get() + rows.len() as u64);
            sources.push(Source {
                binding: tref.binding().to_string(),
                columns: t.schema.column_names(),
                rows,
            });
        } else if let Some(v) = db.views.get(&k) {
            db.stats.materialized_views.set(db.stats.materialized_views.get() + 1);
            let rs = exec_select(db, &v.select, env.params, env.trigger, env.cache, env.depth + 1)?;
            sources.push(Source {
                binding: tref.binding().to_string(),
                columns: v.columns.clone(),
                rows: rs.rows.into_iter().map(Cow::Owned).collect(),
            });
        } else {
            return Err(SqlError::NoSuchTable(tref.name.clone()));
        }
    }

    let mut out: Vec<(Vec<Value>, Option<Vec<Value>>)> = Vec::new();
    let mut matched_scopes: Vec<RowScope> = Vec::new();
    let mut names: Option<Vec<String>> = None;
    let mut index = vec![0usize; sources.len()];
    // Odometer-style nested loop over the cartesian product.
    'outer: loop {
        if sources.iter().any(|s| s.rows.is_empty()) {
            break;
        }
        let mut scope = RowScope::empty();
        for (si, s) in sources.iter().enumerate() {
            scope.push_ref(&s.binding, &s.columns, &s.rows[index[si]]);
        }
        let pass = match &core.where_clause {
            Some(w) => eval(w, &scope, env)?.truthiness() == Some(true),
            None => true,
        };
        if pass {
            db.stats.rows_cloned.set(db.stats.rows_cloned.get() + 1);
            if aggregate {
                matched_scopes.push(scope);
            } else {
                let (n, row) = project(core, &scope, env)?;
                let keys = sort_keys(order_by, &scope, &row, &n, env)?;
                if names.is_none() {
                    names = Some(n);
                }
                out.push((row, keys));
            }
        }
        // Advance odometer.
        let mut pos = sources.len();
        loop {
            if pos == 0 {
                break 'outer;
            }
            pos -= 1;
            index[pos] += 1;
            if index[pos] < sources[pos].rows.len() {
                break;
            }
            index[pos] = 0;
        }
    }

    if aggregate {
        let template = {
            let mut scope = RowScope::empty();
            for s in &sources {
                scope.push(&s.binding, s.columns.clone(), vec![Value::Null; s.columns.len()]);
            }
            scope
        };
        return grouped_rows(core, order_by, matched_scopes, &template, env);
    }

    let names = match names {
        Some(n) => n,
        None => {
            // No rows matched; compute names from an all-NULL scope.
            let mut scope = RowScope::empty();
            for s in &sources {
                scope.push(&s.binding, s.columns.clone(), vec![Value::Null; s.columns.len()]);
            }
            project_names(core, &scope)?
        }
    };
    if core.distinct {
        dedupe_rows(&mut out);
    }
    Ok((names, out))
}

/// Single-table core execution with access-path selection: rowid point
/// probes, secondary-index probes, or a full scan as a last resort. Rows
/// are bound by reference; only rows surviving the WHERE filter are
/// materialized (counted by `db.stats.rows_cloned`).
fn exec_core_single_table(
    db: &Database,
    core: &SelectCore,
    order_by: &[OrderTerm],
    aggregate: bool,
    env: &EvalEnv<'_>,
) -> SqlResult<(Vec<String>, KeyedRows)> {
    let tref = &core.from[0];
    let table = db.read_table(&key(&tref.name)).expect("checked by caller");
    let binding = tref.binding().to_string();
    let columns = table.schema.column_names();

    let probed = probe_access_path(db, table, &binding, core.where_clause.as_ref(), env)?;
    let candidate_rows: Vec<Cow<'_, [Value]>> = match &probed {
        Some(ids) => ids.iter().filter_map(|id| table.get(*id)).collect(),
        None => table.iter().map(|(_, r)| r).collect(),
    };

    let mut out = Vec::new();
    let mut matched_scopes = Vec::new();
    let mut names: Option<Vec<String>> = None;
    for row in &candidate_rows {
        let scope = RowScope::single_ref(&binding, &columns, row);
        let pass = match &core.where_clause {
            Some(w) => eval(w, &scope, env)?.truthiness() == Some(true),
            None => true,
        };
        if !pass {
            continue;
        }
        db.stats.rows_cloned.set(db.stats.rows_cloned.get() + 1);
        if aggregate {
            matched_scopes.push(scope);
        } else {
            let (n, out_row) = project(core, &scope, env)?;
            let keys = sort_keys(order_by, &scope, &out_row, &n, env)?;
            if names.is_none() {
                names = Some(n);
            }
            out.push((out_row, keys));
        }
    }

    if aggregate {
        let template =
            RowScope::single(&binding, columns.clone(), vec![Value::Null; columns.len()]);
        return grouped_rows(core, order_by, matched_scopes, &template, env);
    }
    let names = match names {
        Some(n) => n,
        None => {
            let scope =
                RowScope::single(&binding, columns.clone(), vec![Value::Null; columns.len()]);
            project_names(core, &scope)?
        }
    };
    if core.distinct {
        dedupe_rows(&mut out);
    }
    Ok((names, out))
}

/// Chooses and executes an access path for one table scan: returns
/// `Some(rowids)` for point/index probes (stats and the EXPLAIN log are
/// updated), or `None` to signal a full scan (`rows_scanned` is charged
/// here so callers just iterate).
fn probe_access_path(
    db: &Database,
    t: &Table,
    binding: &str,
    where_clause: Option<&Expr>,
    env: &EvalEnv<'_>,
) -> SqlResult<Option<Vec<i64>>> {
    // The value-free plan comes from the plan cache (or a fresh planner
    // walk); binding probes its captured constants through this closure.
    // An evaluation error (e.g. a missing parameter) is deferred so it
    // still surfaces instead of silently degrading to a full scan.
    let plan = db.cached_access_plan(t, binding, where_clause);
    let deferred: std::cell::RefCell<Option<SqlError>> = std::cell::RefCell::new(None);
    let eval_const = |e: &Expr| -> Option<Value> {
        if !is_const(e) {
            return None;
        }
        match eval(e, &RowScope::empty(), env) {
            Ok(v) => Some(v),
            Err(err) => {
                deferred.borrow_mut().get_or_insert(err);
                None
            }
        }
    };
    let path = bind_access_plan(&plan, &eval_const);
    if let Some(err) = deferred.into_inner() {
        return Err(err);
    }
    db.stats.note_access_path_with(|| format!("{binding}: {path}"));
    match path {
        AccessPath::FullScan => {
            db.stats.rows_scanned.set(db.stats.rows_scanned.get() + t.len() as u64);
            Ok(None)
        }
        AccessPath::RowidPoint(ids) => {
            db.stats.point_lookups.set(db.stats.point_lookups.get() + 1);
            Ok(Some(ids))
        }
        AccessPath::IndexEq { index, keys } => {
            db.stats.index_probes.set(db.stats.index_probes.get() + keys.len() as u64);
            let ix = t
                .indexes()
                .iter()
                .find(|ix| ix.name().eq_ignore_ascii_case(&index))
                .ok_or_else(|| SqlError::NoSuchIndex(index.clone()))?;
            let mut ids: Vec<i64> = Vec::new();
            for k in &keys {
                ids.extend(ix.probe_eq(k));
            }
            // Keep rowid order and drop duplicates from repeated IN keys.
            ids.sort_unstable();
            ids.dedup();
            Ok(Some(ids))
        }
        AccessPath::IndexRange { index, lower, upper } => {
            db.stats.index_probes.set(db.stats.index_probes.get() + 1);
            let ix = t
                .indexes()
                .iter()
                .find(|ix| ix.name().eq_ignore_ascii_case(&index))
                .ok_or_else(|| SqlError::NoSuchIndex(index.clone()))?;
            Ok(Some(ix.probe_range(lower.as_ref(), upper.as_ref())))
        }
    }
}

/// True when an expression references no columns of the current scope
/// (parameters and NEW/OLD are constant within one row's evaluation).
pub(crate) fn is_const(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Column { table: Some(t), .. } => TriggerCtx::is_pseudo_table(t),
        Expr::Column { .. } => false,
        Expr::Unary(_, e) => is_const(e),
        Expr::Binary(_, l, r) => is_const(l) && is_const(r),
        _ => false,
    }
}

/// Projects one row through the result columns.
fn project(
    core: &SelectCore,
    scope: &RowScope,
    env: &EvalEnv<'_>,
) -> SqlResult<(Vec<String>, Vec<Value>)> {
    let mut names = Vec::new();
    let mut row = Vec::new();
    for rc in &core.columns {
        match rc {
            ResultColumn::Star => {
                names.extend(scope.all_columns());
                row.extend(scope.all_values());
            }
            ResultColumn::TableStar(t) => {
                names.extend(scope.binding_columns(t)?);
                row.extend(scope.binding_values(t)?);
            }
            ResultColumn::Expr { expr, alias } => {
                names.push(output_name(expr, alias.as_deref()));
                row.push(eval(expr, scope, env)?);
            }
        }
    }
    Ok((names, row))
}

/// Computes just the output column names (for empty results).
fn project_names(core: &SelectCore, scope: &RowScope) -> SqlResult<Vec<String>> {
    let mut names = Vec::new();
    for rc in &core.columns {
        match rc {
            ResultColumn::Star => names.extend(scope.all_columns()),
            ResultColumn::TableStar(t) => names.extend(scope.binding_columns(t)?),
            ResultColumn::Expr { expr, alias } => names.push(output_name(expr, alias.as_deref())),
        }
    }
    Ok(names)
}

/// Computes ORDER BY sort keys for one row against its source scope,
/// falling back to output columns for alias references.
fn sort_keys(
    order_by: &[OrderTerm],
    scope: &RowScope,
    out_row: &[Value],
    out_names: &[String],
    env: &EvalEnv<'_>,
) -> SqlResult<Option<Vec<Value>>> {
    if order_by.is_empty() {
        return Ok(None);
    }
    let mut keys = Vec::with_capacity(order_by.len());
    for term in order_by {
        // Positional reference?
        if let Expr::Literal(Value::Integer(k)) = &term.expr {
            if *k >= 1 && (*k as usize) <= out_row.len() {
                keys.push(out_row[*k as usize - 1].clone());
                continue;
            }
        }
        match eval(&term.expr, scope, env) {
            Ok(v) => keys.push(v),
            Err(SqlError::NoSuchColumn(_)) => {
                // Try output aliases.
                if let Expr::Column { table: None, name } = &term.expr {
                    if let Some(i) = out_names.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                        keys.push(out_row[i].clone());
                        continue;
                    }
                }
                return Err(SqlError::NoSuchColumn(term.expr.to_string()));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(keys))
}

/// Deduplicates output rows (SELECT DISTINCT), keeping first occurrences.
fn dedupe_rows(rows: &mut KeyedRows) {
    let mut seen: std::collections::BTreeSet<Vec<crate::expr::OrdValue>> =
        std::collections::BTreeSet::new();
    rows.retain(|(row, _)| seen.insert(row.iter().cloned().map(crate::expr::OrdValue).collect()));
}

/// Produces the output rows of an aggregate / GROUP BY core: one row per
/// group, HAVING-filtered, with ORDER BY keys resolved against the output
/// columns (the SQL rule for grouped queries).
fn grouped_rows(
    core: &SelectCore,
    order_by: &[OrderTerm],
    matched: Vec<RowScope>,
    template: &RowScope,
    env: &EvalEnv<'_>,
) -> SqlResult<(Vec<String>, KeyedRows)> {
    use crate::expr::OrdValue;
    // Partition into groups by the GROUP BY key (one group when absent).
    let groups: Vec<Vec<RowScope>> = if core.group_by.is_empty() {
        vec![matched]
    } else {
        let mut map: std::collections::BTreeMap<Vec<OrdValue>, Vec<RowScope>> =
            std::collections::BTreeMap::new();
        for scope in matched {
            let mut key = Vec::with_capacity(core.group_by.len());
            for e in &core.group_by {
                key.push(OrdValue(eval(e, &scope, env)?));
            }
            map.entry(key).or_default().push(scope);
        }
        map.into_values().collect()
    };
    let mut names: Option<Vec<String>> = None;
    let mut rows: KeyedRows = Vec::new();
    for group in &groups {
        if let Some(h) = &core.having {
            let verdict = eval_aggregate(h, group, template, env)?;
            if verdict.truthiness() != Some(true) {
                continue;
            }
        }
        let (n, row) = project_aggregate(core, group, template, env)?;
        let keys = if order_by.is_empty() {
            None
        } else {
            let mut ks = Vec::with_capacity(order_by.len());
            for term in order_by {
                let idx = resolve_output_order_term(&term.expr, &n, env)?;
                ks.push(row[idx].clone());
            }
            Some(ks)
        };
        if names.is_none() {
            names = Some(n);
        }
        rows.push((row, keys));
    }
    // A grouped query over zero groups still needs names; a plain
    // aggregate over zero rows yields one all-over-nothing row.
    let names = match names {
        Some(n) => n,
        // HAVING filtered everything (or there were no groups): emit no
        // rows but keep the column names.
        None => project_names_for_aggregate(core)?,
    };
    if core.distinct {
        dedupe_rows(&mut rows);
    }
    Ok((names, rows))
}

/// Output names for an aggregate core with no groups.
fn project_names_for_aggregate(core: &SelectCore) -> SqlResult<Vec<String>> {
    core.columns
        .iter()
        .map(|rc| match rc {
            ResultColumn::Expr { expr, alias } => Ok(output_name(expr, alias.as_deref())),
            _ => Err(SqlError::Unsupported("* projection mixed with aggregates".into())),
        })
        .collect()
}

/// Projects the single aggregate output row.
fn project_aggregate(
    core: &SelectCore,
    matched: &[RowScope],
    template: &RowScope,
    env: &EvalEnv<'_>,
) -> SqlResult<(Vec<String>, Vec<Value>)> {
    let mut names = Vec::new();
    let mut row = Vec::new();
    for rc in &core.columns {
        match rc {
            ResultColumn::Expr { expr, alias } => {
                names.push(output_name(expr, alias.as_deref()));
                row.push(eval_aggregate(expr, matched, template, env)?);
            }
            _ => return Err(SqlError::Unsupported("* projection mixed with aggregates".into())),
        }
    }
    Ok((names, row))
}

/// Evaluates an expression in aggregate context: aggregate calls compute
/// over all matched rows, everything else evaluates against the first
/// matched row (SQLite's bare-column rule) or NULL when no rows matched.
fn eval_aggregate(
    expr: &Expr,
    matched: &[RowScope],
    template: &RowScope,
    env: &EvalEnv<'_>,
) -> SqlResult<Value> {
    match expr {
        Expr::Call { name, args, star } if *star || is_agg_name(name, args.len()) => {
            match name.as_str() {
                "count" => {
                    if *star || args.is_empty() {
                        Ok(Value::Integer(matched.len() as i64))
                    } else {
                        let mut n = 0i64;
                        for scope in matched {
                            if !eval(&args[0], scope, env)?.is_null() {
                                n += 1;
                            }
                        }
                        Ok(Value::Integer(n))
                    }
                }
                "max" | "min" => {
                    let mut best: Option<Value> = None;
                    for scope in matched {
                        let v = eval(&args[0], scope, env)?;
                        if v.is_null() {
                            continue;
                        }
                        best = Some(match best {
                            None => v,
                            Some(b) => {
                                let take = if name == "max" {
                                    v.total_cmp(&b) == std::cmp::Ordering::Greater
                                } else {
                                    v.total_cmp(&b) == std::cmp::Ordering::Less
                                };
                                if take {
                                    v
                                } else {
                                    b
                                }
                            }
                        });
                    }
                    Ok(best.unwrap_or(Value::Null))
                }
                "sum" | "total" | "avg" => {
                    let mut acc = 0.0f64;
                    let mut all_int = true;
                    let mut count = 0i64;
                    for scope in matched {
                        let v = eval(&args[0], scope, env)?;
                        if v.is_null() {
                            continue;
                        }
                        if !matches!(v, Value::Integer(_)) {
                            all_int = false;
                        }
                        acc += v.as_real().unwrap_or(0.0);
                        count += 1;
                    }
                    match name.as_str() {
                        "sum" if count == 0 => Ok(Value::Null),
                        "sum" if all_int => Ok(Value::Integer(acc as i64)),
                        "sum" | "total" => Ok(Value::Real(acc)),
                        "avg" if count == 0 => Ok(Value::Null),
                        _ => Ok(Value::Real(acc / count as f64)),
                    }
                }
                other => Err(SqlError::Unsupported(format!("aggregate {other}()"))),
            }
        }
        Expr::Binary(op, l, r) => {
            let lv = eval_aggregate(l, matched, template, env)?;
            let rv = eval_aggregate(r, matched, template, env)?;
            // Re-evaluate as a constant binary over computed values.
            let synth = Expr::Binary(*op, Box::new(Expr::Literal(lv)), Box::new(Expr::Literal(rv)));
            eval(&synth, template, env)
        }
        Expr::Unary(op, e) => {
            let v = eval_aggregate(e, matched, template, env)?;
            eval(&Expr::Unary(*op, Box::new(Expr::Literal(v))), template, env)
        }
        other => {
            // Bare expression: evaluate on the first matched row.
            match matched.first() {
                Some(scope) => eval(other, scope, env),
                None => Ok(Value::Null),
            }
        }
    }
}

fn is_agg_name(name: &str, nargs: usize) -> bool {
    match name {
        "count" | "sum" | "avg" | "total" => true,
        "max" | "min" => nargs == 1,
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Mutations.
// ---------------------------------------------------------------------

fn exec_insert(
    db: &mut Database,
    table: &str,
    columns: &[String],
    source: &InsertSource,
    or_replace: bool,
    params: &[Value],
    trigger: Option<&TriggerCtx>,
) -> SqlResult<ExecOutcome> {
    // Compute the rows to insert first (immutable phase).
    let value_rows: Vec<Vec<Value>> = {
        let cache = SubqueryCache::default();
        let env = EvalEnv { db, params, trigger, cache: &cache, depth: 0 };
        match source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        vals.push(eval(e, &RowScope::empty(), &env)?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Select(sel) => exec_select(db, sel, params, trigger, &cache, 0)?.rows,
        }
    };

    let tkey = key(table);
    if db.tables.contains_key(&tkey) {
        // Map provided columns to schema positions.
        let (schema_len, col_map): (usize, Vec<usize>) = {
            let t = db.table(table)?;
            let map: SqlResult<Vec<usize>> = if columns.is_empty() {
                Ok((0..t.schema.columns.len()).collect())
            } else {
                columns
                    .iter()
                    .map(|c| {
                        t.schema.column_index(c).ok_or_else(|| SqlError::NoSuchColumn(c.clone()))
                    })
                    .collect()
            };
            (t.schema.columns.len(), map?)
        };
        let mut last_id = None;
        let mut affected = 0;
        for vals in value_rows {
            if vals.len() != col_map.len() {
                return Err(SqlError::Parse {
                    message: format!(
                        "table {table} has {} target columns but {} values were supplied",
                        col_map.len(),
                        vals.len()
                    ),
                });
            }
            let mut full = vec![Value::Null; schema_len];
            for (v, idx) in vals.into_iter().zip(&col_map) {
                full[*idx] = v;
            }
            let id = db.table_mut(table)?.insert(full, or_replace)?;
            last_id = Some(id);
            affected += 1;
        }
        return Ok(ExecOutcome { rows: None, rows_affected: affected, last_insert_id: last_id });
    }

    // INSERT into a view: fire its INSTEAD OF INSERT trigger per row.
    if db.views.contains_key(&tkey) {
        let (view_cols, body) = {
            let v = db.view(table)?;
            let trig = db
                .trigger_for(table, TriggerEvent::Insert)
                .ok_or_else(|| SqlError::ViewNotWritable(table.to_string()))?;
            (v.columns.clone(), trig.body.clone())
        };
        let mut affected = 0;
        for vals in value_rows {
            let mut new_row = vec![Value::Null; view_cols.len()];
            if columns.is_empty() {
                if vals.len() != view_cols.len() {
                    return Err(SqlError::Parse {
                        message: format!(
                            "view {table} has {} columns but {} values were supplied",
                            view_cols.len(),
                            vals.len()
                        ),
                    });
                }
                new_row = vals;
            } else {
                for (c, v) in columns.iter().zip(vals) {
                    let idx = view_cols
                        .iter()
                        .position(|vc| vc.eq_ignore_ascii_case(c))
                        .ok_or_else(|| SqlError::NoSuchColumn(c.clone()))?;
                    new_row[idx] = v;
                }
            }
            let ctx = TriggerCtx { columns: view_cols.clone(), new: Some(new_row), old: None };
            for stmt in &body {
                exec_stmt(db, stmt, &[], Some(&ctx))?;
            }
            affected += 1;
        }
        return Ok(ExecOutcome { rows: None, rows_affected: affected, last_insert_id: None });
    }

    Err(SqlError::NoSuchTable(table.to_string()))
}

/// Returns the rows UPDATE/DELETE must consider: a rowid point probe or
/// secondary-index probe when the WHERE clause allows it, otherwise a
/// full scan. Rows are borrowed, not cloned.
fn candidate_rows<'a>(
    db: &Database,
    t: &'a crate::table::Table,
    binding: &str,
    where_clause: Option<&Expr>,
    env: &EvalEnv<'_>,
) -> SqlResult<Vec<(i64, Cow<'a, [Value]>)>> {
    if let Some(ids) = probe_access_path(db, t, binding, where_clause, env)? {
        return Ok(ids.into_iter().filter_map(|id| t.get(id).map(|r| (id, r))).collect());
    }
    Ok(t.iter().collect())
}

/// Materializes the view rows matching `where_clause` by running a
/// filtered `SELECT * FROM view WHERE ...` — this lets the planner flatten
/// UNION ALL views and use pk probes, exactly like SQLite's INSTEAD OF
/// trigger path. Returns the matching rows in view-column order.
fn view_rows_matching(
    db: &Database,
    view_name: &str,
    where_clause: Option<&Expr>,
    params: &[Value],
    trigger: Option<&TriggerCtx>,
) -> SqlResult<Vec<Vec<Value>>> {
    let filtered = SelectStmt {
        cores: vec![SelectCore {
            distinct: false,
            columns: vec![ResultColumn::Star],
            from: vec![crate::ast::TableRef { name: view_name.to_string(), alias: None }],
            where_clause: where_clause.cloned(),
            group_by: Vec::new(),
            having: None,
        }],
        order_by: Vec::new(),
        limit: None,
        offset: None,
    };
    let cache = SubqueryCache::default();
    Ok(exec_select(db, &filtered, params, trigger, &cache, 0)?.rows)
}

fn exec_update(
    db: &mut Database,
    table: &str,
    sets: &[(String, Expr)],
    where_clause: Option<&Expr>,
    params: &[Value],
    trigger: Option<&TriggerCtx>,
) -> SqlResult<ExecOutcome> {
    let tkey = key(table);
    if db.tables.contains_key(&tkey) {
        // Phase 1 (immutable): find matching rows and compute new values.
        let updates: Vec<(i64, Vec<Value>)> = {
            let cache = SubqueryCache::default();
            let env = EvalEnv { db, params, trigger, cache: &cache, depth: 0 };
            let t = db.table(table)?;
            let cols = t.schema.column_names();
            let set_idx: SqlResult<Vec<usize>> = sets
                .iter()
                .map(|(c, _)| {
                    t.schema.column_index(c).ok_or_else(|| SqlError::NoSuchColumn(c.clone()))
                })
                .collect();
            let set_idx = set_idx?;
            let mut ups = Vec::new();
            let candidates = candidate_rows(db, t, table, where_clause, &env)?;
            for (rowid, row) in candidates {
                let scope = RowScope::single_ref(table, &cols, &row);
                let pass = match where_clause {
                    Some(w) => eval(w, &scope, &env)?.truthiness() == Some(true),
                    None => true,
                };
                if !pass {
                    continue;
                }
                let mut new_row = row.to_vec();
                for ((_, e), idx) in sets.iter().zip(&set_idx) {
                    new_row[*idx] = eval(e, &scope, &env)?;
                }
                ups.push((rowid, new_row));
            }
            ups
        };
        let affected = updates.len();
        let t = db.table_mut(table)?;
        for (rowid, new_row) in updates {
            t.update_row(rowid, new_row)?;
        }
        return Ok(ExecOutcome { rows: None, rows_affected: affected, last_insert_id: None });
    }

    if db.views.contains_key(&tkey) {
        // INSTEAD OF UPDATE: materialize matching view rows, fire trigger
        // with OLD = row, NEW = row + sets.
        let (view_cols, body, matches) = {
            let v = db.view(table)?;
            let trig = db
                .trigger_for(table, TriggerEvent::Update)
                .ok_or_else(|| SqlError::ViewNotWritable(table.to_string()))?;
            let rows = view_rows_matching(db, table, where_clause, params, trigger)?;
            let cache = SubqueryCache::default();
            let env = EvalEnv { db, params, trigger, cache: &cache, depth: 0 };
            let mut matched = Vec::new();
            for row in rows {
                let scope = RowScope::single_ref(table, &v.columns, &row);
                let mut new_row = row.clone();
                for (c, e) in sets {
                    let idx = v
                        .columns
                        .iter()
                        .position(|vc| vc.eq_ignore_ascii_case(c))
                        .ok_or_else(|| SqlError::NoSuchColumn(c.clone()))?;
                    new_row[idx] = eval(e, &scope, &env)?;
                }
                matched.push((row, new_row));
            }
            (v.columns.clone(), trig.body.clone(), matched)
        };
        let affected = matches.len();
        for (old, new) in matches {
            let ctx = TriggerCtx { columns: view_cols.clone(), new: Some(new), old: Some(old) };
            for stmt in &body {
                exec_stmt(db, stmt, &[], Some(&ctx))?;
            }
        }
        return Ok(ExecOutcome { rows: None, rows_affected: affected, last_insert_id: None });
    }

    Err(SqlError::NoSuchTable(table.to_string()))
}

fn exec_delete(
    db: &mut Database,
    table: &str,
    where_clause: Option<&Expr>,
    params: &[Value],
    trigger: Option<&TriggerCtx>,
) -> SqlResult<ExecOutcome> {
    let tkey = key(table);
    if db.tables.contains_key(&tkey) {
        let doomed: Vec<i64> = {
            let cache = SubqueryCache::default();
            let env = EvalEnv { db, params, trigger, cache: &cache, depth: 0 };
            let t = db.table(table)?;
            let cols = t.schema.column_names();
            let mut ids = Vec::new();
            let candidates = candidate_rows(db, t, table, where_clause, &env)?;
            for (rowid, row) in candidates {
                let scope = RowScope::single_ref(table, &cols, &row);
                let pass = match where_clause {
                    Some(w) => eval(w, &scope, &env)?.truthiness() == Some(true),
                    None => true,
                };
                if pass {
                    ids.push(rowid);
                }
            }
            ids
        };
        let affected = doomed.len();
        let t = db.table_mut(table)?;
        for id in doomed {
            t.delete_row(id);
        }
        return Ok(ExecOutcome { rows: None, rows_affected: affected, last_insert_id: None });
    }

    if db.views.contains_key(&tkey) {
        let (view_cols, body, matches) = {
            let v = db.view(table)?;
            let trig = db
                .trigger_for(table, TriggerEvent::Delete)
                .ok_or_else(|| SqlError::ViewNotWritable(table.to_string()))?;
            let matched = view_rows_matching(db, table, where_clause, params, trigger)?;
            (v.columns.clone(), trig.body.clone(), matched)
        };
        let affected = matches.len();
        for old in matches {
            let ctx = TriggerCtx { columns: view_cols.clone(), new: None, old: Some(old) };
            for stmt in &body {
                exec_stmt(db, stmt, &[], Some(&ctx))?;
            }
        }
        return Ok(ExecOutcome { rows: None, rows_affected: affected, last_insert_id: None });
    }

    Err(SqlError::NoSuchTable(table.to_string()))
}
