//! Abstract syntax tree for the supported SQL subset.
//!
//! The subset is exactly what Android's system content providers and
//! Maxoid's COW proxy need (Figure 6 of the paper): tables, views over
//! `UNION ALL` compound selects with `IN (SELECT ...)` subqueries, INSTEAD
//! OF triggers, and the four data operations with WHERE / ORDER BY / LIMIT.

use crate::value::Value;

/// A complete SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Skip if the table exists.
        if_not_exists: bool,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE VIEW name AS select`.
    CreateView {
        /// View name.
        name: String,
        /// Skip if the view exists.
        if_not_exists: bool,
        /// Defining query.
        select: SelectStmt,
    },
    /// `CREATE TRIGGER name INSTEAD OF event ON view BEGIN body END`.
    CreateTrigger {
        /// Trigger name.
        name: String,
        /// Skip if the trigger exists.
        if_not_exists: bool,
        /// Triggering event.
        event: TriggerEvent,
        /// View the trigger is attached to.
        on: String,
        /// Statements executed per affected row.
        body: Vec<Stmt>,
    },
    /// `CREATE [UNIQUE] INDEX name ON table (column)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Skip if the index exists.
        if_not_exists: bool,
        /// True for `CREATE UNIQUE INDEX`.
        unique: bool,
        /// Table the index is on.
        table: String,
        /// The single indexed column.
        column: String,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Table name.
        name: String,
        /// Ignore a missing table.
        if_exists: bool,
    },
    /// `DROP VIEW`.
    DropView {
        /// View name.
        name: String,
        /// Ignore a missing view.
        if_exists: bool,
    },
    /// `DROP TRIGGER`.
    DropTrigger {
        /// Trigger name.
        name: String,
        /// Ignore a missing trigger.
        if_exists: bool,
    },
    /// `DROP INDEX`.
    DropIndex {
        /// Index name.
        name: String,
        /// Ignore a missing index.
        if_exists: bool,
    },
    /// `INSERT [OR REPLACE] INTO table (cols) VALUES ... | select`.
    Insert {
        /// Target table or view.
        table: String,
        /// Named columns (empty = all, in schema order).
        columns: Vec<String>,
        /// Row source.
        source: InsertSource,
        /// True for `INSERT OR REPLACE`.
        or_replace: bool,
    },
    /// `UPDATE table SET col = expr, ... [WHERE ...]`.
    Update {
        /// Target table or view.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE ...]`.
    Delete {
        /// Target table or view.
        table: String,
        /// Row filter.
        where_clause: Option<Expr>,
    },
    /// A `SELECT` query.
    Select(SelectStmt),
    /// `BEGIN [TRANSACTION]`.
    Begin,
    /// `COMMIT` (or `END`).
    Commit,
    /// `ROLLBACK`.
    Rollback,
    /// `ALTER TABLE table ROWID START n` — engine extension setting the
    /// floor for auto-assigned rowids. The COW proxy keys delta tables
    /// from an offset with it; expressing the mutation as SQL keeps it in
    /// the journal's logical log, so replay reproduces delta row ids.
    AlterRowidStart {
        /// Table whose rowid floor is set.
        table: String,
        /// First rowid to auto-assign.
        start: i64,
    },
}

/// Source of rows for an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// Explicit `VALUES (..), (..)` tuples.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t SELECT ...`.
    Select(Box<SelectStmt>),
}

/// Trigger events; only INSTEAD OF triggers on views are supported, which
/// is all the COW proxy requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TriggerEvent {
    /// `INSTEAD OF INSERT`.
    Insert,
    /// `INSTEAD OF UPDATE`.
    Update,
    /// `INSTEAD OF DELETE`.
    Delete,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type affinity.
    pub affinity: Affinity,
    /// True when declared `PRIMARY KEY` (must be INTEGER).
    pub primary_key: bool,
    /// True when declared `NOT NULL` (advisory; enforced on insert).
    pub not_null: bool,
}

/// SQLite-style type affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Affinity {
    /// INTEGER / BOOLEAN.
    Integer,
    /// REAL / FLOAT / DOUBLE.
    Real,
    /// TEXT / VARCHAR / CHAR.
    Text,
    /// BLOB or untyped.
    Blob,
    /// NUMERIC.
    Numeric,
}

impl Affinity {
    /// Maps a declared type name to an affinity, per SQLite's rules
    /// (substring matching on the type name).
    pub fn from_type_name(name: &str) -> Affinity {
        let up = name.to_ascii_uppercase();
        if up.contains("INT") || up.contains("BOOL") {
            Affinity::Integer
        } else if up.contains("CHAR") || up.contains("CLOB") || up.contains("TEXT") {
            Affinity::Text
        } else if up.contains("BLOB") || up.is_empty() {
            Affinity::Blob
        } else if up.contains("REAL") || up.contains("FLOA") || up.contains("DOUB") {
            Affinity::Real
        } else {
            Affinity::Numeric
        }
    }

    /// Applies this affinity to a value on storage.
    pub fn apply(self, v: Value) -> Value {
        match (self, &v) {
            (Affinity::Integer | Affinity::Numeric, Value::Text(t)) => {
                if let Ok(i) = t.trim().parse::<i64>() {
                    Value::Integer(i)
                } else if let Ok(r) = t.trim().parse::<f64>() {
                    Value::Real(r)
                } else {
                    v
                }
            }
            (Affinity::Integer, Value::Real(r)) if r.fract() == 0.0 => Value::Integer(*r as i64),
            (Affinity::Real, Value::Integer(i)) => Value::Real(*i as f64),
            (Affinity::Text, Value::Integer(i)) => Value::Text(i.to_string()),
            (Affinity::Text, Value::Real(r)) => Value::Text(r.to_string()),
            _ => v,
        }
    }
}

/// A full SELECT statement: one or more cores combined with UNION ALL,
/// with trailing ORDER BY / LIMIT applying to the combined result.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Cores combined with `UNION ALL` (in order).
    pub cores: Vec<SelectCore>,
    /// ORDER BY terms.
    pub order_by: Vec<OrderTerm>,
    /// LIMIT expression.
    pub limit: Option<Expr>,
    /// OFFSET expression (rows skipped before LIMIT applies).
    pub offset: Option<Expr>,
}

/// One `SELECT ... FROM ... WHERE ...` core.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCore {
    /// True for `SELECT DISTINCT`.
    pub distinct: bool,
    /// Result columns.
    pub columns: Vec<ResultColumn>,
    /// FROM sources (implicit cross join with WHERE as join filter).
    pub from: Vec<TableRef>,
    /// WHERE filter.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING filter over groups.
    pub having: Option<Expr>,
}

/// A result column in a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultColumn {
    /// `*`.
    Star,
    /// `table.*`.
    TableStar(String),
    /// An expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table or view reference in FROM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table or view name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this source binds in the row scope.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One ORDER BY term.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderTerm {
    /// Sort key expression.
    pub expr: Expr,
    /// True for ascending (default).
    pub ascending: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// `=`.
    Eq,
    /// `!=` / `<>`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `||`.
    Concat,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified (`t.col`, `NEW.col`).
    Column {
        /// Qualifier (table alias, `NEW`, or `OLD`).
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Positional parameter (1-based).
    Param(usize),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSelect {
        /// Tested expression.
        expr: Box<Expr>,
        /// Subquery (uncorrelated; evaluated once per statement).
        select: Box<SelectStmt>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// Function call; `star` marks `count(*)`.
    Call {
        /// Lowercased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// True for `f(*)`.
        star: bool,
    },
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, name: name.to_string() }
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Integer(v))
    }

    /// Splits a conjunction into its AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary(BinOp::And, l, r) => {
                let mut v = l.conjuncts();
                v.extend(r.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Returns true if the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Call { name, args, star } => {
                *star
                    || matches!(name.as_str(), "count" | "max" | "min" | "sum" | "avg" | "total")
                    || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary(_, e) => e.contains_aggregate(),
            Expr::Binary(_, l, r) => l.contains_aggregate() || r.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSelect { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_mapping() {
        assert_eq!(Affinity::from_type_name("INTEGER"), Affinity::Integer);
        assert_eq!(Affinity::from_type_name("BOOLEAN"), Affinity::Integer);
        assert_eq!(Affinity::from_type_name("VARCHAR(40)"), Affinity::Text);
        assert_eq!(Affinity::from_type_name("DOUBLE"), Affinity::Real);
        assert_eq!(Affinity::from_type_name("BLOB"), Affinity::Blob);
        assert_eq!(Affinity::from_type_name("DECIMAL"), Affinity::Numeric);
    }

    #[test]
    fn affinity_coercion() {
        assert_eq!(Affinity::Integer.apply(Value::Text("7".into())), Value::Integer(7));
        assert_eq!(Affinity::Integer.apply(Value::Real(3.0)), Value::Integer(3));
        assert_eq!(Affinity::Text.apply(Value::Integer(7)), Value::Text("7".into()));
        assert_eq!(Affinity::Integer.apply(Value::Text("abc".into())), Value::Text("abc".into()));
    }

    #[test]
    fn conjunct_splitting() {
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Binary(BinOp::And, Box::new(Expr::col("a")), Box::new(Expr::col("b")))),
            Box::new(Expr::col("c")),
        );
        assert_eq!(e.conjuncts().len(), 3);
        assert_eq!(Expr::col("x").conjuncts().len(), 1);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Call { name: "max".into(), args: vec![Expr::col("x")], star: false };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary(BinOp::Add, Box::new(agg), Box::new(Expr::int(1)));
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let scalar = Expr::Call { name: "length".into(), args: vec![Expr::col("x")], star: false };
        assert!(!scalar.contains_aggregate());
    }
}
