//! Secondary indexes over single table columns.
//!
//! SQLite backs every Android content provider with secondary indexes
//! (user dictionary words, download status/URI, media buckets), and the
//! point queries Maxoid's COW proxy rewrites only stay fast if both the
//! primary table *and* the per-initiator delta table can probe an index
//! instead of scanning. A [`SecondaryIndex`] maps the indexed column's
//! value — ordered by [`OrdValue`]'s total order, i.e. exactly the
//! comparison semantics the expression evaluator uses — to the set of
//! rowids holding it. Indexes live inside [`crate::table::Table`] and are
//! maintained incrementally by every row mutation, so transaction
//! snapshots and `DROP TABLE` handle them for free.

use crate::error::{SqlError, SqlResult};
use crate::expr::OrdValue;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A small set of rowids, inline for the common unique-ish case.
///
/// Most indexed columns are near-unique (words, URIs), so the entry for a
/// key usually holds one or two rowids; keeping those inline avoids a heap
/// allocation per key, in the spirit of `SmallVec<[i64; 2]>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowIdSet {
    /// Up to two rowids stored inline (`len` is 0, 1 or 2).
    Inline {
        /// The inline slots; only the first `len` are meaningful.
        ids: [i64; 2],
        /// Number of occupied slots.
        len: u8,
    },
    /// Spilled to the heap once a key maps to three or more rows.
    Heap(Vec<i64>),
}

impl Default for RowIdSet {
    fn default() -> Self {
        RowIdSet::Inline { ids: [0; 2], len: 0 }
    }
}

impl RowIdSet {
    /// Number of rowids in the set.
    pub fn len(&self) -> usize {
        match self {
            RowIdSet::Inline { len, .. } => *len as usize,
            RowIdSet::Heap(v) => v.len(),
        }
    }

    /// True when no rowid is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds a rowid (idempotent).
    pub fn insert(&mut self, id: i64) {
        if self.contains(id) {
            return;
        }
        match self {
            RowIdSet::Inline { ids, len } => {
                if (*len as usize) < ids.len() {
                    ids[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = ids.to_vec();
                    v.push(id);
                    *self = RowIdSet::Heap(v);
                }
            }
            RowIdSet::Heap(v) => v.push(id),
        }
    }

    /// Removes a rowid; returns true when it was present.
    pub fn remove(&mut self, id: i64) -> bool {
        match self {
            RowIdSet::Inline { ids, len } => {
                let n = *len as usize;
                for i in 0..n {
                    if ids[i] == id {
                        ids[i] = ids[n - 1];
                        *len -= 1;
                        return true;
                    }
                }
                false
            }
            RowIdSet::Heap(v) => {
                if let Some(i) = v.iter().position(|&x| x == id) {
                    v.swap_remove(i);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// True when the set holds `id`.
    pub fn contains(&self, id: i64) -> bool {
        self.iter().any(|x| x == id)
    }

    /// Iterates the stored rowids (unordered).
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        match self {
            RowIdSet::Inline { ids, len } => ids[..*len as usize].iter().copied(),
            RowIdSet::Heap(v) => v[..].iter().copied(),
        }
    }
}

/// A single-column secondary index: indexed value → rowids.
///
/// Keys are compared with [`OrdValue`]'s total order, which matches the
/// evaluator's `=`/`<`/... semantics exactly (no affinity conversion), so
/// a probe returns precisely the rows a full scan's predicate would keep —
/// modulo NULL keys, which are stored (they must survive round trips
/// through UPDATE) but never returned by probes, mirroring SQL's
/// `NULL = NULL` being unknown.
#[derive(Debug, Clone, PartialEq)]
pub struct SecondaryIndex {
    name: String,
    column: usize,
    unique: bool,
    map: BTreeMap<OrdValue, RowIdSet>,
}

impl SecondaryIndex {
    /// Creates an empty index over the column at position `column`.
    pub fn new(name: &str, column: usize, unique: bool) -> SecondaryIndex {
        SecondaryIndex { name: name.to_string(), column, unique, map: BTreeMap::new() }
    }

    /// Index name (as created, case preserved).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Position of the indexed column in the table schema.
    pub fn column(&self) -> usize {
        self.column
    }

    /// True for `CREATE UNIQUE INDEX`.
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Number of distinct keys currently indexed (including NULL).
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Checks whether adding `value` for `rowid` would violate uniqueness.
    /// NULL keys are exempt, as in SQLite; an existing entry for the same
    /// rowid (an in-place update) does not conflict.
    pub fn check_unique(&self, value: &Value, rowid: i64) -> SqlResult<()> {
        if !self.unique || matches!(value, Value::Null) {
            return Ok(());
        }
        if let Some(set) = self.map.get(&OrdValue(value.clone())) {
            if set.iter().any(|id| id != rowid) {
                return Err(SqlError::ConstraintUnique { index: self.name.clone() });
            }
        }
        Ok(())
    }

    /// Removes all entries (table truncation).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Records `rowid` under the row's indexed value.
    pub fn insert_entry(&mut self, row: &[Value], rowid: i64) {
        let key = OrdValue(row[self.column].clone());
        self.map.entry(key).or_default().insert(rowid);
    }

    /// Forgets `rowid` under the row's indexed value.
    pub fn remove_entry(&mut self, row: &[Value], rowid: i64) {
        let key = OrdValue(row[self.column].clone());
        if let Some(set) = self.map.get_mut(&key) {
            set.remove(rowid);
            if set.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// Rowids whose indexed value equals `value` (by the evaluator's
    /// `total_cmp` semantics). A NULL probe matches nothing.
    pub fn probe_eq(&self, value: &Value) -> Vec<i64> {
        if matches!(value, Value::Null) {
            return Vec::new();
        }
        match self.map.get(&OrdValue(value.clone())) {
            Some(set) => {
                let mut ids: Vec<i64> = set.iter().collect();
                ids.sort_unstable();
                ids
            }
            None => Vec::new(),
        }
    }

    /// Rowids whose indexed value lies within the given bounds. NULL keys
    /// are never returned (SQL comparisons with NULL are unknown), which
    /// is enforced here by clamping the open lower end above NULL.
    pub fn probe_range(&self, lower: Bound<&Value>, upper: Bound<&Value>) -> Vec<i64> {
        let lo = match lower {
            Bound::Unbounded => Bound::Excluded(OrdValue(Value::Null)),
            Bound::Included(v) => Bound::Included(OrdValue(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(OrdValue(v.clone())),
        };
        let hi = match upper {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(v) => Bound::Included(OrdValue(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(OrdValue(v.clone())),
        };
        // A degenerate range (lo > hi) would panic in BTreeMap::range.
        if range_is_empty(&lo, &hi) {
            return Vec::new();
        }
        let mut ids: Vec<i64> = self
            .map
            .range((lo, hi))
            .filter(|(k, _)| !matches!(k.0, Value::Null))
            .flat_map(|(_, set)| set.iter())
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// True when `(lo, hi)` describes an empty interval that `BTreeMap::range`
/// would panic on.
fn range_is_empty(lo: &Bound<OrdValue>, hi: &Bound<OrdValue>) -> bool {
    use Bound::*;
    match (lo, hi) {
        (Included(a), Included(b)) => a > b,
        (Included(a), Excluded(b)) | (Excluded(a), Included(b)) => a >= b,
        (Excluded(a), Excluded(b)) => a >= b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: Value) -> Vec<Value> {
        vec![Value::Integer(0), v]
    }

    #[test]
    fn rowid_set_spills_to_heap() {
        let mut s = RowIdSet::default();
        assert!(s.is_empty());
        s.insert(1);
        s.insert(2);
        assert!(matches!(s, RowIdSet::Inline { .. }));
        s.insert(3);
        assert!(matches!(s, RowIdSet::Heap(_)));
        assert_eq!(s.len(), 3);
        s.insert(3); // idempotent
        assert_eq!(s.len(), 3);
        assert!(s.remove(2));
        assert!(!s.remove(2));
        let mut ids: Vec<i64> = s.iter().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn eq_probe_and_maintenance() {
        let mut ix = SecondaryIndex::new("ix", 1, false);
        ix.insert_entry(&row("a".into()), 1);
        ix.insert_entry(&row("a".into()), 2);
        ix.insert_entry(&row("b".into()), 3);
        assert_eq!(ix.probe_eq(&"a".into()), vec![1, 2]);
        ix.remove_entry(&row("a".into()), 1);
        assert_eq!(ix.probe_eq(&"a".into()), vec![2]);
        assert_eq!(ix.probe_eq(&"zzz".into()), Vec::<i64>::new());
        assert_eq!(ix.probe_eq(&Value::Null), Vec::<i64>::new());
    }

    #[test]
    fn range_probe_skips_null_keys() {
        let mut ix = SecondaryIndex::new("ix", 1, false);
        ix.insert_entry(&row(Value::Null), 1);
        ix.insert_entry(&row(5.into()), 2);
        ix.insert_entry(&row(9.into()), 3);
        // Open lower bound must not sweep in the NULL key.
        let ids = ix.probe_range(Bound::Unbounded, Bound::Included(&9.into()));
        assert_eq!(ids, vec![2, 3]);
        let ids = ix.probe_range(Bound::Excluded(&5.into()), Bound::Unbounded);
        assert_eq!(ids, vec![3]);
        // Degenerate range does not panic.
        let ids = ix.probe_range(Bound::Excluded(&9.into()), Bound::Excluded(&5.into()));
        assert!(ids.is_empty());
    }

    #[test]
    fn unique_checks_exempt_nulls_and_self() {
        let mut ix = SecondaryIndex::new("u", 1, true);
        ix.insert_entry(&row("a".into()), 1);
        ix.insert_entry(&row(Value::Null), 2);
        assert!(ix.check_unique(&"a".into(), 5).is_err());
        assert!(ix.check_unique(&"a".into(), 1).is_ok()); // same row
        assert!(ix.check_unique(&Value::Null, 5).is_ok()); // NULLs exempt
        assert!(ix.check_unique(&"b".into(), 5).is_ok());
    }

    #[test]
    fn numeric_keys_compare_across_int_and_real() {
        // total_cmp equates 5 and 5.0, so a probe with either form hits.
        let mut ix = SecondaryIndex::new("n", 1, false);
        ix.insert_entry(&row(Value::Integer(5)), 1);
        assert_eq!(ix.probe_eq(&Value::Real(5.0)), vec![1]);
    }
}
