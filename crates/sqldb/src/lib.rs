//! An embedded SQL engine modelling the SQLite subset Maxoid depends on.
//!
//! The Maxoid paper (EuroSys 2015) builds its copy-on-write proxy for
//! Android system content providers out of plain SQLite machinery: base
//! tables, SQL views defined as `UNION ALL` compounds with `NOT IN
//! (SELECT ...)` subqueries, `INSTEAD OF` triggers, and the query planner's
//! *subquery flattening* optimization. This crate implements exactly that
//! machinery so the proxy's generated SQL (the paper's Figure 6) runs
//! unchanged.
//!
//! Highlights:
//!
//! - Tables keyed by an integer primary key (a `BTreeMap` doubling as the
//!   pk index), with configurable auto-assignment offsets for the proxy's
//!   delta tables.
//! - Three-valued logic, `LIKE`, `BETWEEN`, `IN` (lists and cached
//!   uncorrelated subqueries), scalar and aggregate functions.
//! - Views over views, INSTEAD OF insert/update/delete triggers with
//!   `NEW`/`OLD` row contexts.
//! - A [`FlattenPolicy`] switch reproducing the SQLite 3.7.11 / 3.8.6
//!   flattening behaviours described in the paper's footnote 5, plus
//!   execution counters to observe the plan actually taken.
//!
//! # Examples
//!
//! ```
//! use maxoid_sqldb::{Database, Value};
//!
//! let mut db = Database::new();
//! db.execute_batch(
//!     "CREATE TABLE t (_id INTEGER PRIMARY KEY, data TEXT);
//!      INSERT INTO t VALUES (1,'a'),(2,'b');
//!      CREATE VIEW v AS SELECT _id, data FROM t WHERE _id > 1;",
//! )
//! .unwrap();
//! let rs = db.query("SELECT data FROM v", &[]).unwrap();
//! assert_eq!(rs.rows, vec![vec![Value::Text("b".into())]]);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod heap;
pub mod index;
pub mod lexer;
pub mod mvcc;
pub mod parser;
pub(crate) mod plancache;
pub mod planner;
pub mod table;
pub mod value;

pub use ast::{Affinity, ColumnDef, Expr, SelectStmt, Stmt, TriggerEvent};
pub use db::{
    param_to_value, value_to_param, Database, ExecOutcome, ResultSet, Stats, TriggerDef, ViewDef,
    ACCESS_PATH_LOG_CAP,
};
pub use error::{SqlError, SqlResult};
pub use expr::{like_match, MemberSet, OrdValue, RowScope, TriggerCtx};
pub use heap::{HeapCfg, HeapTier};
pub use mvcc::{MvccStats, ReadSnapshot, SnapshotReader};
pub use index::{RowIdSet, SecondaryIndex};
pub use planner::{AccessPath, AccessPlan, FlattenPolicy, PlanChoice};
pub use table::{Table, TableSchema};
pub use value::Value;
