//! Device-backed row heap: paged table storage behind the block tier.
//!
//! Large tables spill their row payloads out of process memory onto a
//! [`PageCache`] over any [`BlockDevice`] — the same machinery the VFS
//! uses for file data. Rows are encoded with a tiny tagged codec and
//! bump-allocated into page-sized arenas; a page is reclaimed (cache
//! frame discarded, sector returned to the [`ExtentAllocator`]) as soon
//! as its last live row is deleted. Rows bigger than one page get a
//! contiguous multi-sector extent of their own.
//!
//! Decoding happens under the tier's mutex while the page frame is
//! pinned by a `PageRef`, so bytes are never copied out of the cache
//! before they are parsed — the `RowScope` zero-copy discipline extended
//! down one tier.
//!
//! Secondary indexes and the rowid map stay resident: they are derived
//! metadata, small next to the payloads, and every access path depends
//! on their latency.

use crate::value::Value;
use maxoid_block::{BlockDevice, BlockResult, CacheStats, ExtentAllocator, PageCache};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared heap tier: one page cache + extent allocator that any number
/// of paged tables (across databases) carve their row pages from.
///
/// Cloning is a handle copy. The mutex is a leaf lock: nothing is called
/// back out of the closure while it is held.
#[derive(Clone)]
pub struct HeapTier {
    inner: Arc<Mutex<HeapInner>>,
    page_size: usize,
}

pub(crate) struct HeapInner {
    pub(crate) cache: PageCache,
    pub(crate) alloc: ExtentAllocator,
}

impl std::fmt::Debug for HeapTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapTier").field("page_size", &self.page_size).finish_non_exhaustive()
    }
}

impl HeapTier {
    /// Builds a tier over `dev`, keeping at most `capacity_pages` pages
    /// resident.
    pub fn new(dev: Box<dyn BlockDevice>, capacity_pages: usize) -> Self {
        let cache = PageCache::new(dev, capacity_pages);
        let page_size = cache.page_size();
        HeapTier {
            inner: Arc::new(Mutex::new(HeapInner { cache, alloc: ExtentAllocator::new() })),
            page_size,
        }
    }

    /// The page (= device sector) size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Cache counters (hits, misses, evictions, promotions, ...).
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().cache.stats()
    }

    /// Writes dirty pages back and flushes the device.
    pub fn flush(&self) -> BlockResult<()> {
        self.inner.lock().cache.flush()
    }

    pub(crate) fn with<R>(&self, f: impl FnOnce(&mut HeapInner) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

/// Paging configuration a database hands to its tables: where to spill
/// and how big (approximate encoded bytes) a table may grow resident.
#[derive(Clone, Debug)]
pub struct HeapCfg {
    /// The shared device-backed tier.
    pub tier: HeapTier,
    /// Tables above this many encoded bytes migrate to the tier.
    pub threshold: usize,
}

// --- row codec ------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BLOB: u8 = 4;

/// Encoded size of a row without building the encoding (the resident
/// tables use this to decide when to spill).
pub(crate) fn encoded_len(row: &[Value]) -> usize {
    2 + row
        .iter()
        .map(|v| {
            1 + match v {
                Value::Null => 0,
                Value::Integer(_) | Value::Real(_) => 8,
                Value::Text(s) => 4 + s.len(),
                Value::Blob(b) => 4 + b.len(),
            }
        })
        .sum::<usize>()
}

/// Encodes a row: `u16` column count, then one tag byte per value
/// followed by its payload (fixed 8 bytes for Integer/Real, `u32`
/// length + bytes for Text/Blob).
pub(crate) fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(row));
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Integer(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Real(r) => {
                out.push(TAG_REAL);
                out.extend_from_slice(&r.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                out.push(TAG_TEXT);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Blob(b) => {
                out.push(TAG_BLOB);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
        }
    }
    out
}

/// Decodes a row produced by [`encode_row`]. The heap only ever decodes
/// bytes it wrote during this process lifetime, so corruption here is a
/// logic error, not an I/O condition — it panics.
pub(crate) fn decode_row(bytes: &[u8]) -> Vec<Value> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> &[u8] {
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        s
    };
    let count = u16::from_le_bytes(take(&mut pos, 2).try_into().unwrap()) as usize;
    let mut row = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = take(&mut pos, 1)[0];
        row.push(match tag {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Integer(i64::from_le_bytes(take(&mut pos, 8).try_into().unwrap())),
            TAG_REAL => Value::Real(f64::from_bits(u64::from_le_bytes(
                take(&mut pos, 8).try_into().unwrap(),
            ))),
            TAG_TEXT => {
                let len = u32::from_le_bytes(take(&mut pos, 4).try_into().unwrap()) as usize;
                Value::Text(String::from_utf8(take(&mut pos, len).to_vec()).expect("heap row utf8"))
            }
            TAG_BLOB => {
                let len = u32::from_le_bytes(take(&mut pos, 4).try_into().unwrap()) as usize;
                Value::Blob(take(&mut pos, len).to_vec())
            }
            other => panic!("heap row codec: unknown tag {other}"),
        });
    }
    row
}

// --- paged row storage ----------------------------------------------------

/// Where one row's encoding lives on the device.
#[derive(Clone, Copy, Debug)]
struct RowLoc {
    /// First sector of the encoding.
    sector: u64,
    /// Byte offset within that sector (always 0 for jumbo rows).
    off: u32,
    /// Encoded length in bytes.
    len: u32,
    /// True when the row owns a contiguous multi-sector extent.
    jumbo: bool,
}

/// Per-page fill bookkeeping for the bump allocator.
#[derive(Debug)]
struct PageInfo {
    /// Bytes bump-allocated so far.
    used: u32,
    /// Live rows still pointing into this page. At zero the page is
    /// discarded from the cache and its sector freed — deletes reclaim
    /// space page-at-a-time with no intra-page compaction.
    live: u32,
}

/// Rows of one table, spilled to the heap tier. The rowid → location map
/// stays resident (it is the pk index); only payload bytes live on the
/// device.
#[derive(Debug)]
pub(crate) struct PagedRows {
    tier: HeapTier,
    locs: BTreeMap<i64, RowLoc>,
    pages: BTreeMap<u64, PageInfo>,
    /// The page new rows bump-allocate into, if it still has room.
    cur: Option<u64>,
    /// Live encoded bytes (mirrors the resident-side spill accounting).
    bytes: usize,
}

impl PagedRows {
    pub(crate) fn new(tier: HeapTier) -> Self {
        PagedRows { tier, locs: BTreeMap::new(), pages: BTreeMap::new(), cur: None, bytes: 0 }
    }

    pub(crate) fn len(&self) -> usize {
        self.locs.len()
    }

    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    pub(crate) fn contains_key(&self, id: i64) -> bool {
        self.locs.contains_key(&id)
    }

    pub(crate) fn max_key(&self) -> Option<i64> {
        self.locs.keys().next_back().copied()
    }

    pub(crate) fn get(&self, id: i64) -> Option<Vec<Value>> {
        self.locs.get(&id).map(|&loc| self.read_row(loc))
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (i64, Vec<Value>)> + '_ {
        self.locs.iter().map(move |(&id, &loc)| (id, self.read_row(loc)))
    }

    /// Inserts (or replaces) a row. The displaced encoding, if any, is
    /// freed without being decoded.
    pub(crate) fn insert(&mut self, id: i64, values: &[Value]) {
        if let Some(loc) = self.locs.remove(&id) {
            self.bytes -= loc.len as usize;
            self.free_loc(loc);
        }
        let enc = encode_row(values);
        let loc = self.append(&enc);
        self.bytes += enc.len();
        self.locs.insert(id, loc);
    }

    /// Removes a row, returning its decoded values (callers need the old
    /// row to unwind index entries).
    pub(crate) fn remove(&mut self, id: i64) -> Option<Vec<Value>> {
        let loc = self.locs.remove(&id)?;
        let row = self.read_row(loc);
        self.bytes -= loc.len as usize;
        self.free_loc(loc);
        Some(row)
    }

    /// Drops every row and returns all pages to the tier.
    pub(crate) fn clear(&mut self) {
        let jumbos: Vec<RowLoc> = self.locs.values().filter(|l| l.jumbo).copied().collect();
        let pages: Vec<u64> = self.pages.keys().copied().collect();
        let ps = self.tier.page_size();
        self.tier.with(|h| {
            for &p in &pages {
                h.cache.discard(p);
                h.alloc.free_run(p, 1);
            }
            for l in &jumbos {
                let k = (l.len as usize).div_ceil(ps) as u64;
                for s in l.sector..l.sector + k {
                    h.cache.discard(s);
                }
                h.alloc.free_run(l.sector, k);
            }
        });
        self.locs.clear();
        self.pages.clear();
        self.cur = None;
        self.bytes = 0;
    }

    fn read_row(&self, loc: RowLoc) -> Vec<Value> {
        if loc.jumbo {
            let ps = self.tier.page_size() as u64;
            let mut buf = vec![0u8; loc.len as usize];
            self.tier
                .with(|h| h.cache.read_bytes(loc.sector * ps, &mut buf))
                .expect("sqldb heap read");
            decode_row(&buf)
        } else {
            // Decode while the frame is pinned — no staging copy.
            self.tier.with(|h| {
                let page = h.cache.read(loc.sector).expect("sqldb heap read");
                let (a, b) = (loc.off as usize, (loc.off + loc.len) as usize);
                decode_row(&page.data()[a..b])
            })
        }
    }

    fn append(&mut self, enc: &[u8]) -> RowLoc {
        let ps = self.tier.page_size();
        if enc.len() > ps {
            // Jumbo row: a private contiguous extent.
            let k = enc.len().div_ceil(ps) as u64;
            let start = self
                .tier
                .with(|h| -> BlockResult<u64> {
                    let start = h.alloc.alloc_contiguous(k);
                    for (i, chunk) in enc.chunks(ps).enumerate() {
                        let s = start + i as u64;
                        if chunk.len() == ps {
                            h.cache.write_full(s, chunk)?;
                        } else {
                            h.cache.write_padded(s, chunk)?;
                        }
                    }
                    Ok(start)
                })
                .expect("sqldb heap write");
            return RowLoc { sector: start, off: 0, len: enc.len() as u32, jumbo: true };
        }
        let sector = match self.cur {
            Some(s) if ps - self.pages[&s].used as usize >= enc.len() => s,
            _ => {
                let s = self.tier.with(|h| h.alloc.alloc_contiguous(1));
                self.pages.insert(s, PageInfo { used: 0, live: 0 });
                self.cur = Some(s);
                s
            }
        };
        let info = self.pages.get_mut(&sector).expect("bump page bookkeeping");
        let off = info.used as usize;
        self.tier
            .with(|h| {
                if off == 0 {
                    // Fresh page: nothing on the device is live, so skip
                    // the read-modify-write and zero-pad instead.
                    h.cache.write_padded(sector, enc)
                } else {
                    h.cache.write(sector, |buf| buf[off..off + enc.len()].copy_from_slice(enc))
                }
            })
            .expect("sqldb heap write");
        info.used += enc.len() as u32;
        info.live += 1;
        RowLoc { sector, off: off as u32, len: enc.len() as u32, jumbo: false }
    }

    fn free_loc(&mut self, loc: RowLoc) {
        if loc.jumbo {
            let ps = self.tier.page_size();
            let k = (loc.len as usize).div_ceil(ps) as u64;
            self.tier.with(|h| {
                for s in loc.sector..loc.sector + k {
                    h.cache.discard(s);
                }
                h.alloc.free_run(loc.sector, k);
            });
            return;
        }
        let dead = {
            let info = self.pages.get_mut(&loc.sector).expect("row page bookkeeping");
            info.live -= 1;
            info.live == 0
        };
        if dead {
            self.pages.remove(&loc.sector);
            if self.cur == Some(loc.sector) {
                self.cur = None;
            }
            self.tier.with(|h| {
                h.cache.discard(loc.sector);
                h.alloc.free_run(loc.sector, 1);
            });
        }
    }
}

impl Drop for PagedRows {
    fn drop(&mut self) {
        // DROP TABLE, rollback replacement, or database teardown: give
        // the sectors back so long-lived tiers don't leak space.
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_block::MemDevice;

    fn tier(pages: usize) -> HeapTier {
        HeapTier::new(Box::new(MemDevice::with_sector_size(64)), pages)
    }

    fn row(id: i64, data: &str) -> Vec<Value> {
        vec![Value::Integer(id), Value::Text(data.into()), Value::Null, Value::Real(0.5)]
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        let r = vec![
            Value::Null,
            Value::Integer(-7),
            Value::Real(2.25),
            Value::Text("héllo".into()),
            Value::Blob(vec![0, 255, 128]),
        ];
        let enc = encode_row(&r);
        assert_eq!(enc.len(), encoded_len(&r));
        assert_eq!(decode_row(&enc), r);
        assert_eq!(decode_row(&encode_row(&[])), Vec::<Value>::new());
    }

    #[test]
    fn rows_survive_eviction_pressure() {
        let t = tier(2); // 2 × 64-byte pages resident, rest on "disk"
        let mut p = PagedRows::new(t.clone());
        for id in 0..40 {
            p.insert(id, &row(id, &format!("value-{id}")));
        }
        assert!(t.stats().evictions > 0, "pressure must actually evict");
        for id in 0..40 {
            assert_eq!(p.get(id).unwrap(), row(id, &format!("value-{id}")));
        }
        assert_eq!(p.iter().count(), 40);
    }

    #[test]
    fn deletes_reclaim_pages_and_space_is_reused() {
        let t = tier(4);
        let mut p = PagedRows::new(t.clone());
        for id in 0..20 {
            p.insert(id, &row(id, "xxxxxxxxxx"));
        }
        let high = t.with(|h| h.alloc.next_sector());
        for id in 0..20 {
            p.remove(id);
        }
        assert!(p.pages.is_empty(), "empty table must hold no pages");
        assert_eq!(
            t.with(|h| h.alloc.free_runs()),
            vec![(0, high)],
            "all sectors must coalesce back into one free run"
        );
        // Reinsertion reuses the freed extent instead of growing.
        for id in 0..20 {
            p.insert(id, &row(id, "yyyyyyyyyy"));
        }
        assert_eq!(t.with(|h| h.alloc.next_sector()), high);
    }

    #[test]
    fn jumbo_rows_take_contiguous_extents() {
        let t = tier(3);
        let mut p = PagedRows::new(t.clone());
        let big = vec![Value::Blob(vec![0xabu8; 300])]; // ~5 pages of 64B
        p.insert(1, &big);
        p.insert(2, &row(2, "small"));
        assert_eq!(p.get(1).unwrap(), big);
        assert_eq!(p.get(2).unwrap(), row(2, "small"));
        let before = t.with(|h| h.alloc.next_sector());
        p.remove(1);
        p.insert(3, &big);
        assert_eq!(t.with(|h| h.alloc.next_sector()), before, "extent must be reused");
        assert_eq!(p.get(3).unwrap(), big);
    }

    #[test]
    fn replace_frees_the_old_encoding() {
        let t = tier(4);
        let mut p = PagedRows::new(t.clone());
        p.insert(1, &row(1, "first"));
        p.insert(1, &row(1, "second"));
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(1).unwrap(), row(1, "second"));
        // Dropping the storage returns every sector.
        let high = t.with(|h| h.alloc.next_sector());
        drop(p);
        assert_eq!(t.with(|h| h.alloc.free_runs()), vec![(0, high)]);
    }
}
