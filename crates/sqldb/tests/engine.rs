//! Engine-level integration tests: SELECT semantics, joins, aggregates,
//! NULL handling, views, triggers and planner behaviour through the public
//! `Database` API.

use maxoid_sqldb::{Database, FlattenPolicy, SqlError, Value};

fn db_with_people() -> Database {
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE people (_id INTEGER PRIMARY KEY, name TEXT, age INTEGER, city TEXT);
         INSERT INTO people (name, age, city) VALUES
           ('ana', 30, 'austin'), ('bob', 25, 'boston'),
           ('cat', 35, 'austin'), ('dan', NULL, 'denver');",
    )
    .unwrap();
    db
}

#[test]
fn where_with_three_valued_logic() {
    let db = db_with_people();
    // dan's NULL age fails both branches of the comparison.
    let rs = db.query("SELECT name FROM people WHERE age > 26", &[]).unwrap();
    assert_eq!(rs.rows.len(), 2);
    let rs = db.query("SELECT name FROM people WHERE NOT (age > 26)", &[]).unwrap();
    assert_eq!(rs.rows.len(), 1);
    // IS NULL picks him up.
    let rs = db.query("SELECT name FROM people WHERE age IS NULL", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("dan".into())]]);
    let rs = db.query("SELECT count(*) FROM people WHERE age IS NOT NULL", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(3)));
}

#[test]
fn order_by_variants() {
    let db = db_with_people();
    // By name, descending.
    let rs = db.query("SELECT name FROM people ORDER BY name DESC LIMIT 2", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("dan".into())], vec![Value::Text("cat".into())]]);
    // By unprojected column.
    let rs = db.query("SELECT name FROM people ORDER BY age DESC LIMIT 1", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("cat".into())]]);
    // By position.
    let rs = db.query("SELECT name, age FROM people ORDER BY 2 DESC LIMIT 1", &[]).unwrap();
    assert_eq!(rs.rows[0][0], Value::Text("cat".into()));
    // NULLs sort first ascending (SQLite behaviour).
    let rs = db.query("SELECT name FROM people ORDER BY age LIMIT 1", &[]).unwrap();
    assert_eq!(rs.rows[0][0], Value::Text("dan".into()));
    // Multi-key sort.
    let rs = db.query("SELECT name FROM people ORDER BY city, name DESC", &[]).unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["cat", "ana", "bob", "dan"]);
}

#[test]
fn aggregates() {
    let db = db_with_people();
    let rs = db
        .query(
            "SELECT count(*), count(age), max(age), min(age), sum(age), avg(age) FROM people",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows[0],
        vec![
            Value::Integer(4),
            Value::Integer(3),
            Value::Integer(35),
            Value::Integer(25),
            Value::Integer(90),
            Value::Real(30.0),
        ]
    );
    // Aggregates over an empty selection.
    let rs =
        db.query("SELECT count(*), max(age), sum(age) FROM people WHERE age > 99", &[]).unwrap();
    assert_eq!(rs.rows[0], vec![Value::Integer(0), Value::Null, Value::Null]);
    // Aggregate arithmetic.
    let rs = db.query("SELECT max(age) - min(age) FROM people", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(10)));
}

#[test]
fn joins_with_qualified_columns() {
    let mut db = db_with_people();
    db.execute_batch(
        "CREATE TABLE pets (_id INTEGER PRIMARY KEY, owner_id INTEGER, pet TEXT);
         INSERT INTO pets (owner_id, pet) VALUES (1, 'rex'), (1, 'tom'), (3, 'blu');",
    )
    .unwrap();
    let rs = db
        .query(
            "SELECT p.name, q.pet FROM people p, pets q \
             WHERE p._id = q.owner_id ORDER BY q.pet",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0], vec![Value::Text("cat".into()), Value::Text("blu".into())]);
    // Unqualified ambiguous column errors.
    let err = db.query("SELECT _id FROM people p, pets q", &[]).unwrap_err();
    assert!(matches!(err, SqlError::NoSuchColumn(_)));
}

#[test]
fn like_between_in() {
    let db = db_with_people();
    let rs = db.query("SELECT name FROM people WHERE name LIKE '%a%' ORDER BY name", &[]).unwrap();
    assert_eq!(rs.rows.len(), 3); // ana, cat, dan
    let rs =
        db.query("SELECT name FROM people WHERE age BETWEEN 25 AND 30 ORDER BY name", &[]).unwrap();
    assert_eq!(rs.rows.len(), 2);
    let rs = db
        .query("SELECT name FROM people WHERE city IN ('austin', 'denver') ORDER BY name", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    let rs = db.query("SELECT name FROM people WHERE city NOT IN ('austin')", &[]).unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn in_subquery_with_nulls() {
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE a (_id INTEGER PRIMARY KEY, v INTEGER);
         CREATE TABLE b (_id INTEGER PRIMARY KEY, v INTEGER);
         INSERT INTO a (v) VALUES (1), (2), (3);
         INSERT INTO b (v) VALUES (2), (NULL);",
    )
    .unwrap();
    // x IN (2, NULL): true for 2, NULL (not true) otherwise.
    let rs = db.query("SELECT v FROM a WHERE v IN (SELECT v FROM b)", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Integer(2)]]);
    // x NOT IN (2, NULL): never true because of the NULL.
    let rs = db.query("SELECT v FROM a WHERE v NOT IN (SELECT v FROM b)", &[]).unwrap();
    assert!(rs.rows.is_empty());
    // Without the NULL, NOT IN behaves normally.
    db.execute("DELETE FROM b WHERE v IS NULL", &[]).unwrap();
    let rs = db.query("SELECT v FROM a WHERE v NOT IN (SELECT v FROM b) ORDER BY v", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Integer(1)], vec![Value::Integer(3)]]);
}

#[test]
fn scalar_functions() {
    let db = Database::new();
    let rs = db
        .query(
            "SELECT length('héllo'), upper('ab'), lower('AB'), abs(-5), \
             coalesce(NULL, NULL, 7), substr('abcdef', 2, 3), typeof(1.5)",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows[0],
        vec![
            Value::Integer(5),
            Value::Text("AB".into()),
            Value::Text("ab".into()),
            Value::Integer(5),
            Value::Integer(7),
            Value::Text("bcd".into()),
            Value::Text("real".into()),
        ]
    );
    // Scalar max/min with multiple args vs aggregate forms.
    let rs = db.query("SELECT max(3, 9, 1), min(3, 9, 1)", &[]).unwrap();
    assert_eq!(rs.rows[0], vec![Value::Integer(9), Value::Integer(1)]);
}

#[test]
fn concat_and_arithmetic() {
    let db = Database::new();
    let rs = db.query("SELECT 'a' || 'b' || 1, 7 / 2, 7 % 3, 7.0 / 2, 1 / 0", &[]).unwrap();
    assert_eq!(
        rs.rows[0],
        vec![
            Value::Text("ab1".into()),
            Value::Integer(3),
            Value::Integer(1),
            Value::Real(3.5),
            Value::Null,
        ]
    );
}

#[test]
fn update_with_expressions() {
    let mut db = db_with_people();
    let n = db
        .execute("UPDATE people SET age = age + 1 WHERE city = 'austin'", &[])
        .unwrap()
        .rows_affected;
    assert_eq!(n, 2);
    let rs = db.query("SELECT age FROM people WHERE name = 'ana'", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Integer(31)]]);
    // Updating with NULL arithmetic keeps NULL.
    db.execute("UPDATE people SET age = age + 1", &[]).unwrap();
    let rs = db.query("SELECT age FROM people WHERE name = 'dan'", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Null]]);
}

#[test]
fn insert_select_copies_rows() {
    let mut db = db_with_people();
    db.execute_batch("CREATE TABLE adults (_id INTEGER PRIMARY KEY, name TEXT);").unwrap();
    let out = db
        .execute("INSERT INTO adults (name) SELECT name FROM people WHERE age >= 30", &[])
        .unwrap();
    assert_eq!(out.rows_affected, 2);
    let rs = db.query("SELECT count(*) FROM adults", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(2)));
}

#[test]
fn view_over_view_and_triggers() {
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE base (_id INTEGER PRIMARY KEY, v INTEGER, kind TEXT);
         INSERT INTO base (v, kind) VALUES (1, 'x'), (2, 'y'), (3, 'x');
         CREATE VIEW xs AS SELECT _id, v FROM base WHERE kind = 'x';
         CREATE VIEW big_xs AS SELECT _id, v FROM xs WHERE v > 1;",
    )
    .unwrap();
    let rs = db.query("SELECT v FROM big_xs", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Integer(3)]]);
    // A view without a trigger rejects writes.
    let err = db.execute("DELETE FROM xs WHERE _id = 1", &[]).unwrap_err();
    assert!(matches!(err, SqlError::ViewNotWritable(_)));
    // An INSTEAD OF DELETE trigger makes it writable.
    db.execute_batch(
        "CREATE TRIGGER xs_del INSTEAD OF DELETE ON xs BEGIN \
         DELETE FROM base WHERE _id = OLD._id; END;",
    )
    .unwrap();
    db.execute("DELETE FROM xs WHERE _id = 1", &[]).unwrap();
    let rs = db.query("SELECT count(*) FROM base", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(2)));
}

#[test]
fn trigger_body_with_multiple_statements() {
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE data (_id INTEGER PRIMARY KEY, v TEXT);
         CREATE TABLE log (_id INTEGER PRIMARY KEY, what TEXT);
         CREATE VIEW vw AS SELECT _id, v FROM data;
         CREATE TRIGGER vw_ins INSTEAD OF INSERT ON vw BEGIN
           INSERT INTO data (v) VALUES (NEW.v);
           INSERT INTO log (what) VALUES ('inserted ' || NEW.v);
         END;",
    )
    .unwrap();
    db.execute("INSERT INTO vw (v) VALUES ('hello')", &[]).unwrap();
    let rs = db.query("SELECT what FROM log", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("inserted hello".into())]]);
}

#[test]
fn cyclic_views_are_rejected_at_query_time() {
    let mut db = Database::new();
    db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY);").unwrap();
    db.execute_batch("CREATE VIEW v1 AS SELECT _id FROM t;").unwrap();
    // Redefine v1's base out from under it to form a cycle via v2.
    db.execute_batch("CREATE VIEW v2 AS SELECT _id FROM v1;").unwrap();
    db.execute_batch("DROP VIEW v1;").unwrap();
    db.execute_batch("CREATE VIEW v1 AS SELECT _id FROM v2;").unwrap();
    let err = db.query("SELECT * FROM v1", &[]).unwrap_err();
    assert!(matches!(err, SqlError::Unsupported(_)));
}

#[test]
fn union_all_column_count_mismatch() {
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE t (_id INTEGER PRIMARY KEY, a TEXT, b TEXT);
         INSERT INTO t (a, b) VALUES ('x', 'y');",
    )
    .unwrap();
    let err = db.query("SELECT a FROM t UNION ALL SELECT a, b FROM t", &[]).unwrap_err();
    assert!(matches!(err, SqlError::Parse { .. }));
    // Matching arity works and stacks rows.
    let rs = db.query("SELECT a FROM t UNION ALL SELECT b FROM t", &[]).unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn params_by_position_and_number() {
    let db = db_with_people();
    let rs = db
        .query(
            "SELECT name FROM people WHERE age > ?1 AND city = ?2",
            &[Value::Integer(20), Value::Text("austin".into())],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    // Missing parameter errors cleanly.
    let err = db.query("SELECT name FROM people WHERE age > ?", &[]).unwrap_err();
    assert!(matches!(err, SqlError::MissingParam(1)));
}

#[test]
fn point_lookup_fast_path_is_taken() {
    let db = db_with_people();
    db.stats.reset();
    db.query("SELECT name FROM people WHERE _id = 2", &[]).unwrap();
    assert_eq!(db.stats.point_lookups.get(), 1);
    assert_eq!(db.stats.rows_scanned.get(), 0);
    // IN-list of pks also probes.
    db.stats.reset();
    let rs = db.query("SELECT name FROM people WHERE _id IN (1, 3)", &[]).unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(db.stats.point_lookups.get(), 1);
    // A non-pk filter scans.
    db.stats.reset();
    db.query("SELECT name FROM people WHERE age = 30", &[]).unwrap();
    assert!(db.stats.rows_scanned.get() >= 4);
}

#[test]
fn update_delete_fast_path() {
    let mut db = db_with_people();
    db.stats.reset();
    db.execute("UPDATE people SET age = 99 WHERE _id = ?", &[Value::Integer(1)]).unwrap();
    assert_eq!(db.stats.point_lookups.get(), 1);
    assert_eq!(db.stats.rows_scanned.get(), 0);
    db.stats.reset();
    db.execute("DELETE FROM people WHERE _id = 4", &[]).unwrap();
    assert_eq!(db.stats.point_lookups.get(), 1);
    let rs = db.query("SELECT count(*) FROM people", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(3)));
}

#[test]
fn drop_table_and_view_cleanup() {
    let mut db = db_with_people();
    db.execute_batch("CREATE VIEW v AS SELECT name FROM people;").unwrap();
    db.execute_batch(
        "CREATE TRIGGER v_ins INSTEAD OF INSERT ON v BEGIN \
         INSERT INTO people (name) VALUES (NEW.name); END;",
    )
    .unwrap();
    assert!(db.has_trigger("v_ins"));
    // Dropping the view drops its triggers.
    db.execute_batch("DROP VIEW v;").unwrap();
    assert!(!db.has_trigger("v_ins"));
    db.execute_batch("DROP TABLE people;").unwrap();
    assert!(!db.has_table("people"));
    // IF EXISTS tolerates absence; plain DROP errors.
    db.execute_batch("DROP TABLE IF EXISTS people;").unwrap();
    assert!(db.execute_batch("DROP TABLE people;").is_err());
}

#[test]
fn empty_results_keep_column_names() {
    let db = db_with_people();
    let rs = db.query("SELECT name, age FROM people WHERE _id = 999", &[]).unwrap();
    assert!(rs.rows.is_empty());
    assert_eq!(rs.columns, vec!["name", "age"]);
    let rs = db.query("SELECT * FROM people WHERE 0", &[]).unwrap();
    assert_eq!(rs.columns, vec!["_id", "name", "age", "city"]);
}

#[test]
fn from_less_selects() {
    let db = Database::new();
    let rs = db.query("SELECT 1 + 1 AS two, 'x'", &[]).unwrap();
    assert_eq!(rs.columns[0], "two");
    assert_eq!(rs.rows, vec![vec![Value::Integer(2), Value::Text("x".into())]]);
    let rs = db.query("SELECT 1 WHERE 0", &[]).unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn flattening_policy_counts_match_across_large_table() {
    // Sanity at scale: the flattened plan touches far fewer rows.
    let make = |policy| {
        let mut db = Database::with_policy(policy);
        db.execute_batch(
            "CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT);
             CREATE TABLE t_delta (_id INTEGER PRIMARY KEY, v TEXT, _whiteout BOOLEAN);",
        )
        .unwrap();
        for i in 0..500 {
            db.execute("INSERT INTO t (v) VALUES (?)", &[Value::Text(format!("v{i}"))]).unwrap();
        }
        db.execute_batch(
            "CREATE VIEW tv AS SELECT _id, v FROM t \
             WHERE _id NOT IN (SELECT _id FROM t_delta) \
             UNION ALL SELECT _id, v FROM t_delta WHERE _whiteout = 0;",
        )
        .unwrap();
        db
    };
    let flat = make(FlattenPolicy::Sqlite386);
    flat.stats.reset();
    flat.query("SELECT v FROM tv WHERE _id = 250", &[]).unwrap();
    let flat_scanned = flat.stats.rows_scanned.get();

    let off = make(FlattenPolicy::Off);
    off.stats.reset();
    off.query("SELECT v FROM tv WHERE _id = 250", &[]).unwrap();
    let off_scanned = off.stats.rows_scanned.get();

    assert!(
        flat_scanned * 10 < off_scanned,
        "flattened plan should scan far fewer rows: {flat_scanned} vs {off_scanned}"
    );
}

#[test]
fn secondary_index_point_and_range_queries() {
    let mut db = db_with_people();
    db.execute_batch("CREATE INDEX idx_people_city ON people (city);").unwrap();
    db.execute_batch("CREATE INDEX idx_people_age ON people (age);").unwrap();

    db.stats.reset();
    let rs = db.query("SELECT name FROM people WHERE city = 'austin' ORDER BY name", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("ana".into())], vec![Value::Text("cat".into())]]);
    assert_eq!(db.stats.index_probes.get(), 1);
    assert_eq!(db.stats.rows_scanned.get(), 0);

    // IN probes once per key; operand order doesn't matter.
    db.stats.reset();
    let rs =
        db.query("SELECT count(*) FROM people WHERE city IN ('austin', 'boston')", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(3)));
    assert_eq!(db.stats.index_probes.get(), 2);
    let rs = db.query("SELECT name FROM people WHERE 'denver' = city", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("dan".into())]]);

    // Range probe; NULL ages must never surface from the index.
    db.stats.reset();
    let rs = db.query("SELECT name FROM people WHERE age >= 30 ORDER BY age", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("ana".into())], vec![Value::Text("cat".into())]]);
    assert_eq!(db.stats.index_probes.get(), 1);
    assert_eq!(db.stats.rows_scanned.get(), 0);
    let rs = db.query("SELECT count(*) FROM people WHERE age BETWEEN 20 AND 26", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(1)));

    // The index tracks later mutations.
    db.execute("UPDATE people SET city = 'boston' WHERE name = 'ana'", &[]).unwrap();
    db.execute("DELETE FROM people WHERE name = 'cat'", &[]).unwrap();
    let rs = db.query("SELECT count(*) FROM people WHERE city = 'austin'", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(0)));
    let rs = db.query("SELECT count(*) FROM people WHERE city = 'boston'", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(2)));
}

#[test]
fn rows_cloned_counts_only_matching_rows() {
    let db = db_with_people();
    db.stats.reset();
    db.query("SELECT name FROM people WHERE city = 'austin'", &[]).unwrap();
    // All four rows are visited, but only the two matches are materialized.
    assert_eq!(db.stats.rows_scanned.get(), 4);
    assert_eq!(db.stats.rows_cloned.get(), 2);

    db.stats.reset();
    db.query("SELECT name FROM people WHERE city = 'nowhere'", &[]).unwrap();
    assert_eq!(db.stats.rows_cloned.get(), 0);
}

#[test]
fn access_path_log_reads_like_explain() {
    let mut db = db_with_people();
    db.execute_batch("CREATE INDEX idx_people_city ON people (city);").unwrap();
    db.stats.reset();
    db.query("SELECT name FROM people WHERE _id = 2", &[]).unwrap();
    db.query("SELECT name FROM people WHERE city = 'austin'", &[]).unwrap();
    db.query("SELECT name FROM people", &[]).unwrap();
    let paths = db.stats.take_access_paths();
    assert_eq!(
        paths,
        vec![
            "people: PK POINT (1 keys)".to_string(),
            "people: INDEX idx_people_city EQ (1 keys)".to_string(),
            "people: SCAN".to_string(),
        ]
    );
    // Taking the log drains it.
    assert!(db.stats.take_access_paths().is_empty());
}

#[test]
fn index_ddl_lifecycle_and_errors() {
    let mut db = db_with_people();
    db.execute_batch("CREATE INDEX idx_city ON people (city);").unwrap();
    // Names are global: a second index with the same name fails anywhere.
    let err = db.execute_batch("CREATE INDEX idx_city ON people (age);").unwrap_err();
    assert!(matches!(err, SqlError::AlreadyExists(_)), "{err:?}");
    db.execute_batch("CREATE INDEX IF NOT EXISTS idx_city ON people (age);").unwrap();

    let err = db.execute_batch("CREATE INDEX idx_x ON nope (c);").unwrap_err();
    assert!(matches!(err, SqlError::NoSuchTable(_)), "{err:?}");
    let err = db.execute_batch("CREATE INDEX idx_x ON people (salary);").unwrap_err();
    assert!(matches!(err, SqlError::NoSuchColumn(_)), "{err:?}");

    db.execute_batch("DROP INDEX idx_city;").unwrap();
    let err = db.execute_batch("DROP INDEX idx_city;").unwrap_err();
    assert!(matches!(err, SqlError::NoSuchIndex(_)), "{err:?}");
    db.execute_batch("DROP INDEX IF EXISTS idx_city;").unwrap();

    // Dropping the table frees its index names.
    db.execute_batch("CREATE INDEX idx_age ON people (age);").unwrap();
    db.execute_batch("DROP TABLE people;").unwrap();
    db.execute_batch("CREATE TABLE people (_id INTEGER PRIMARY KEY, age INTEGER);").unwrap();
    db.execute_batch("CREATE INDEX idx_age ON people (age);").unwrap();
}

#[test]
fn unique_index_enforced_through_sql() {
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE users (_id INTEGER PRIMARY KEY, email TEXT);
         CREATE UNIQUE INDEX idx_email ON users (email);
         INSERT INTO users (email) VALUES ('a@x'), (NULL), (NULL);",
    )
    .unwrap();
    let err = db.execute("INSERT INTO users (email) VALUES ('a@x')", &[]).unwrap_err();
    assert!(matches!(err, SqlError::ConstraintUnique { .. }), "{err:?}");
    let err = db.execute("UPDATE users SET email = 'a@x' WHERE _id = 2", &[]).unwrap_err();
    assert!(matches!(err, SqlError::ConstraintUnique { .. }), "{err:?}");
    // REPLACE of the same row keeps the value without a false conflict.
    db.execute("INSERT OR REPLACE INTO users (_id, email) VALUES (1, 'a@x')", &[]).unwrap();
    // A failed unique UPDATE must leave the index usable.
    let rs = db.query("SELECT _id FROM users WHERE email = 'a@x'", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Integer(1)]]);
}

#[test]
fn indexes_respect_transaction_rollback() {
    let mut db = db_with_people();
    db.execute_batch("CREATE INDEX idx_city ON people (city);").unwrap();
    db.execute_batch("BEGIN;").unwrap();
    db.execute("INSERT INTO people (name, age, city) VALUES ('eve', 28, 'austin')", &[]).unwrap();
    let rs = db.query("SELECT count(*) FROM people WHERE city = 'austin'", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(3)));
    db.execute_batch("ROLLBACK;").unwrap();
    let rs = db.query("SELECT count(*) FROM people WHERE city = 'austin'", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(2)));
    // Index results agree with a forced scan after rollback.
    let scan = db.query("SELECT name FROM people WHERE city || '' = 'austin'", &[]).unwrap();
    let probed = db.query("SELECT name FROM people WHERE city = 'austin'", &[]).unwrap();
    assert_eq!(probed.rows, scan.rows);
}
