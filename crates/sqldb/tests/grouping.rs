//! Tests for DISTINCT, GROUP BY / HAVING and LIMIT ... OFFSET.

use maxoid_sqldb::{Database, Value};

fn sales_db() -> Database {
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE sales (_id INTEGER PRIMARY KEY, city TEXT, item TEXT, amount INTEGER);
         INSERT INTO sales (city, item, amount) VALUES
           ('austin', 'pen',    5),
           ('austin', 'book',  20),
           ('boston', 'pen',    7),
           ('austin', 'pen',    3),
           ('boston', 'book',  15),
           ('denver', 'book',  40);",
    )
    .unwrap();
    db
}

#[test]
fn distinct_removes_duplicates() {
    let db = sales_db();
    let rs = db.query("SELECT DISTINCT city FROM sales ORDER BY city", &[]).unwrap();
    let cities: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(cities, vec!["austin", "boston", "denver"]);
    // Multi-column DISTINCT dedupes tuples, not columns.
    let rs = db.query("SELECT DISTINCT city, item FROM sales ORDER BY city, item", &[]).unwrap();
    assert_eq!(rs.rows.len(), 5);
    // Without DISTINCT all six rows come back.
    let rs = db.query("SELECT city FROM sales", &[]).unwrap();
    assert_eq!(rs.rows.len(), 6);
}

#[test]
fn group_by_with_aggregates() {
    let db = sales_db();
    let rs = db
        .query("SELECT city, count(*), sum(amount) FROM sales GROUP BY city ORDER BY city", &[])
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Text("austin".into()), Value::Integer(3), Value::Integer(28)],
            vec![Value::Text("boston".into()), Value::Integer(2), Value::Integer(22)],
            vec![Value::Text("denver".into()), Value::Integer(1), Value::Integer(40)],
        ]
    );
}

#[test]
fn group_by_multiple_keys() {
    let db = sales_db();
    let rs = db
        .query(
            "SELECT city, item, sum(amount) AS total FROM sales \
             GROUP BY city, item ORDER BY total DESC LIMIT 2",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][2], Value::Integer(40)); // denver/book
    assert_eq!(rs.rows[1][2], Value::Integer(20)); // austin/book
}

#[test]
fn having_filters_groups() {
    let db = sales_db();
    let rs = db
        .query(
            "SELECT city, sum(amount) FROM sales GROUP BY city \
             HAVING sum(amount) > 25 ORDER BY city",
            &[],
        )
        .unwrap();
    let cities: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(cities, vec!["austin", "denver"]);
    // HAVING that filters everything keeps the column names.
    let rs = db.query("SELECT city FROM sales GROUP BY city HAVING count(*) > 99", &[]).unwrap();
    assert!(rs.rows.is_empty());
    assert_eq!(rs.columns, vec!["city"]);
}

#[test]
fn group_by_over_empty_selection() {
    let db = sales_db();
    let rs =
        db.query("SELECT city, count(*) FROM sales WHERE amount > 999 GROUP BY city", &[]).unwrap();
    assert!(rs.rows.is_empty());
    // Plain aggregates (no GROUP BY) still yield their single row.
    let rs = db.query("SELECT count(*) FROM sales WHERE amount > 999", &[]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(0)));
}

#[test]
fn limit_offset_both_forms() {
    let db = sales_db();
    // LIMIT n OFFSET m.
    let rs = db.query("SELECT _id FROM sales ORDER BY _id LIMIT 2 OFFSET 3", &[]).unwrap();
    let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    assert_eq!(ids, vec![4, 5]);
    // SQLite's `LIMIT offset, count` form.
    let rs = db.query("SELECT _id FROM sales ORDER BY _id LIMIT 3, 2", &[]).unwrap();
    let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    assert_eq!(ids, vec![4, 5]);
    // Offset past the end yields nothing.
    let rs = db.query("SELECT _id FROM sales LIMIT 5 OFFSET 100", &[]).unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn group_by_through_cow_view_materializes() {
    // Grouping over a COW view must not be flattened, and must aggregate
    // the merged rows.
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE t (_id INTEGER PRIMARY KEY, kind TEXT, n INTEGER);
         CREATE TABLE t_delta (_id INTEGER PRIMARY KEY, kind TEXT, n INTEGER, _whiteout BOOLEAN);
         INSERT INTO t VALUES (1,'a',10),(2,'a',20),(3,'b',30);
         INSERT INTO t_delta VALUES (2,'a',99,0),(3,'b',0,1),(10000001,'c',5,0);
         CREATE VIEW tv AS SELECT _id, kind, n FROM t \
           WHERE _id NOT IN (SELECT _id FROM t_delta) \
           UNION ALL SELECT _id, kind, n FROM t_delta WHERE _whiteout = 0;",
    )
    .unwrap();
    db.stats.reset();
    let rs = db.query("SELECT kind, sum(n) FROM tv GROUP BY kind ORDER BY kind", &[]).unwrap();
    // Merged view: (1,a,10), (2,a,99), (10000001,c,5); row 3 whited out.
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Text("a".into()), Value::Integer(109)],
            vec![Value::Text("c".into()), Value::Integer(5)],
        ]
    );
    assert_eq!(db.stats.flattened_queries.get(), 0);
}

#[test]
fn distinct_interacts_with_union_all() {
    let db = sales_db();
    // DISTINCT applies per core; UNION ALL keeps cross-core duplicates.
    let rs = db
        .query("SELECT DISTINCT city FROM sales UNION ALL SELECT DISTINCT city FROM sales", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 6);
}
