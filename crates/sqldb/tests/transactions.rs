//! Transaction tests: BEGIN/COMMIT/ROLLBACK through SQL and the API.

use maxoid_sqldb::{Database, SqlError, Value};

fn seeded() -> Database {
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT);
         INSERT INTO t (v) VALUES ('a'), ('b');",
    )
    .unwrap();
    db
}

fn count(db: &Database) -> i64 {
    db.query("SELECT count(*) FROM t", &[]).unwrap().scalar().unwrap().as_integer().unwrap()
}

#[test]
fn commit_keeps_changes() {
    let mut db = seeded();
    db.execute_batch("BEGIN; INSERT INTO t (v) VALUES ('c'); COMMIT;").unwrap();
    assert_eq!(count(&db), 3);
    assert!(!db.in_transaction());
}

#[test]
fn rollback_restores_data_and_schema() {
    let mut db = seeded();
    db.execute_batch(
        "BEGIN TRANSACTION;
         INSERT INTO t (v) VALUES ('c');
         UPDATE t SET v = 'zzz' WHERE _id = 1;
         DELETE FROM t WHERE _id = 2;
         CREATE TABLE extra (_id INTEGER PRIMARY KEY);
         CREATE VIEW tv AS SELECT v FROM t;
         ROLLBACK;",
    )
    .unwrap();
    assert_eq!(count(&db), 2);
    let rs = db.query("SELECT v FROM t WHERE _id = 1", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("a".into())]]);
    assert!(!db.has_table("extra"));
    assert!(!db.has_view("tv"));
}

#[test]
fn end_is_commit_alias() {
    let mut db = seeded();
    db.execute_batch("BEGIN; DELETE FROM t; END;").unwrap();
    assert_eq!(count(&db), 0);
}

#[test]
fn nested_begin_rejected() {
    let mut db = seeded();
    db.execute("BEGIN", &[]).unwrap();
    let err = db.execute("BEGIN", &[]).unwrap_err();
    assert!(matches!(err, SqlError::Unsupported(_)));
    db.execute("ROLLBACK", &[]).unwrap();
}

#[test]
fn commit_rollback_without_tx_rejected() {
    let mut db = seeded();
    assert!(db.execute("COMMIT", &[]).is_err());
    assert!(db.execute("ROLLBACK", &[]).is_err());
}

#[test]
fn queries_inside_tx_see_uncommitted_writes() {
    let mut db = seeded();
    db.execute("BEGIN", &[]).unwrap();
    db.execute("INSERT INTO t (v) VALUES ('c')", &[]).unwrap();
    assert_eq!(count(&db), 3);
    db.execute("ROLLBACK", &[]).unwrap();
    assert_eq!(count(&db), 2);
}

#[test]
fn rollback_restores_auto_increment_state() {
    let mut db = seeded();
    db.execute("BEGIN", &[]).unwrap();
    let id = db.execute("INSERT INTO t (v) VALUES ('c')", &[]).unwrap().last_insert_id.unwrap();
    assert_eq!(id, 3);
    db.execute("ROLLBACK", &[]).unwrap();
    // After rollback the same id is handed out again (SQLite behaviour
    // without AUTOINCREMENT).
    let id = db.execute("INSERT INTO t (v) VALUES ('d')", &[]).unwrap().last_insert_id.unwrap();
    assert_eq!(id, 3);
}

#[test]
fn trigger_effects_roll_back_too() {
    let mut db = Database::new();
    db.execute_batch(
        "CREATE TABLE base (_id INTEGER PRIMARY KEY, v TEXT);
         CREATE TABLE audit (_id INTEGER PRIMARY KEY, what TEXT);
         CREATE VIEW bv AS SELECT _id, v FROM base;
         CREATE TRIGGER bv_ins INSTEAD OF INSERT ON bv BEGIN
           INSERT INTO base (v) VALUES (NEW.v);
           INSERT INTO audit (what) VALUES (NEW.v);
         END;",
    )
    .unwrap();
    db.execute_batch("BEGIN; INSERT INTO bv (v) VALUES ('x'); ROLLBACK;").unwrap();
    let n = db.query("SELECT count(*) FROM audit", &[]).unwrap();
    assert_eq!(n.scalar(), Some(&Value::Integer(0)));
}
