//! Property-based tests for the SQL engine: random mutation sequences
//! against a map model, and COW-view equivalence under random data.

use maxoid_sqldb::{Database, FlattenPolicy, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(String),
    InsertWithId(i64, String),
    Update(i64, String),
    Delete(i64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        "[a-z]{1,6}".prop_map(Op::Insert),
        (1..40i64, "[a-z]{1,6}").prop_map(|(id, v)| Op::InsertWithId(id, v)),
        (1..40i64, "[a-z]{1,6}").prop_map(|(id, v)| Op::Update(id, v)),
        (1..40i64).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The table behaves like BTreeMap<i64, String> with max+1 key
    /// auto-assignment.
    #[test]
    fn table_matches_map_model(ops in proptest::collection::vec(op(), 1..40)) {
        let mut db = Database::new();
        db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT);").unwrap();
        let mut model: BTreeMap<i64, String> = BTreeMap::new();
        for o in &ops {
            match o {
                Op::Insert(v) => {
                    let out = db
                        .execute("INSERT INTO t (v) VALUES (?)", &[Value::Text(v.clone())])
                        .unwrap();
                    let id = out.last_insert_id.unwrap();
                    let expect = model.keys().next_back().map(|k| k + 1).unwrap_or(1).max(1);
                    prop_assert_eq!(id, expect);
                    model.insert(id, v.clone());
                }
                Op::InsertWithId(id, v) => {
                    let out = db.execute(
                        "INSERT INTO t (_id, v) VALUES (?, ?)",
                        &[Value::Integer(*id), Value::Text(v.clone())],
                    );
                    if model.contains_key(id) {
                        prop_assert!(out.is_err(), "duplicate pk must fail");
                    } else {
                        prop_assert!(out.is_ok());
                        model.insert(*id, v.clone());
                    }
                }
                Op::Update(id, v) => {
                    let n = db
                        .execute(
                            "UPDATE t SET v = ? WHERE _id = ?",
                            &[Value::Text(v.clone()), Value::Integer(*id)],
                        )
                        .unwrap()
                        .rows_affected;
                    if let Some(slot) = model.get_mut(id) {
                        prop_assert_eq!(n, 1);
                        *slot = v.clone();
                    } else {
                        prop_assert_eq!(n, 0);
                    }
                }
                Op::Delete(id) => {
                    let n = db
                        .execute("DELETE FROM t WHERE _id = ?", &[Value::Integer(*id)])
                        .unwrap()
                        .rows_affected;
                    prop_assert_eq!(n, usize::from(model.remove(id).is_some()));
                }
            }
        }
        // Final state equivalence.
        let rs = db.query("SELECT _id, v FROM t ORDER BY _id", &[]).unwrap();
        let got: Vec<(i64, String)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_integer().unwrap(), r[1].to_string()))
            .collect();
        let want: Vec<(i64, String)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Every flattening policy computes identical results for point and
    /// range queries over randomly populated COW-view shapes.
    #[test]
    fn flattening_is_semantics_preserving(
        primary in proptest::collection::btree_map(1..30i64, "[a-z]{1,5}", 1..20),
        deltas in proptest::collection::btree_map(1..40i64, ("[a-z]{1,5}", any::<bool>()), 0..12),
        probe in 1..40i64,
        bound in 1..40i64,
    ) {
        let build = |policy| {
            let mut db = Database::with_policy(policy);
            db.execute_batch(
                "CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT);
                 CREATE TABLE t_delta (_id INTEGER PRIMARY KEY, v TEXT, _whiteout BOOLEAN);
                 CREATE VIEW tv AS SELECT _id, v FROM t \
                 WHERE _id NOT IN (SELECT _id FROM t_delta) \
                 UNION ALL SELECT _id, v FROM t_delta WHERE _whiteout = 0;",
            )
            .unwrap();
            for (id, v) in &primary {
                db.execute(
                    "INSERT INTO t (_id, v) VALUES (?, ?)",
                    &[Value::Integer(*id), Value::Text(v.clone())],
                )
                .unwrap();
            }
            for (id, (v, wh)) in &deltas {
                db.execute(
                    "INSERT INTO t_delta (_id, v, _whiteout) VALUES (?, ?, ?)",
                    &[Value::Integer(*id), Value::Text(v.clone()), Value::Integer(*wh as i64)],
                )
                .unwrap();
            }
            db
        };
        let reference = build(FlattenPolicy::Off);
        for policy in [FlattenPolicy::Sqlite3711, FlattenPolicy::Sqlite386, FlattenPolicy::Always] {
            let db = build(policy);
            for sql in [
                format!("SELECT _id, v FROM tv WHERE _id = {probe}"),
                format!("SELECT _id, v FROM tv WHERE _id <= {bound} ORDER BY _id"),
                "SELECT _id, v FROM tv ORDER BY _id".to_string(),
                format!("SELECT v, _id FROM tv WHERE _id > {bound} ORDER BY _id DESC LIMIT 5"),
            ] {
                let want = reference.query(&sql, &[]).unwrap();
                let got = db.query(&sql, &[]).unwrap();
                prop_assert_eq!(got.rows, want.rows, "policy {:?}, sql {}", policy, sql);
            }
        }
        // And the view agrees with a hand-computed merge.
        let mut merged: BTreeMap<i64, String> = primary.clone();
        for (id, (v, wh)) in &deltas {
            if *wh {
                merged.remove(id);
            } else {
                merged.insert(*id, v.clone());
            }
        }
        let rs = reference.query("SELECT _id, v FROM tv ORDER BY _id", &[]).unwrap();
        let got: Vec<(i64, String)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_integer().unwrap(), r[1].to_string()))
            .collect();
        prop_assert_eq!(got, merged.into_iter().collect::<Vec<_>>());
    }

    /// Secondary-index access paths are invisible to query semantics: for
    /// random COW-shaped data and random point/range/IN predicates, an
    /// indexed database returns exactly what an unindexed one does, under
    /// every flattening policy.
    #[test]
    fn index_paths_match_full_scans(
        primary in proptest::collection::btree_map(1..30i64, ("[a-c]{1,3}", 0..8i64), 1..20),
        deltas in proptest::collection::btree_map(
            1..40i64,
            ("[a-c]{1,3}", 0..8i64, any::<bool>()),
            0..12,
        ),
        needle in "[a-c]{1,3}",
        lo in 0..8i64,
        hi in 0..8i64,
    ) {
        let build = |policy, indexed: bool| {
            let mut db = Database::with_policy(policy);
            db.execute_batch(
                "CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT, n INTEGER);
                 CREATE TABLE t_delta (_id INTEGER PRIMARY KEY, v TEXT, n INTEGER, _whiteout BOOLEAN);
                 CREATE VIEW tv AS SELECT _id, v, n FROM t \
                 WHERE _id NOT IN (SELECT _id FROM t_delta) \
                 UNION ALL SELECT _id, v, n FROM t_delta WHERE _whiteout = 0;",
            )
            .unwrap();
            if indexed {
                db.execute_batch(
                    "CREATE INDEX ix_v ON t (v); CREATE INDEX ix_n ON t (n);
                     CREATE INDEX ix_dv ON t_delta (v); CREATE INDEX ix_dn ON t_delta (n);",
                )
                .unwrap();
            }
            for (id, (v, n)) in &primary {
                db.execute(
                    "INSERT INTO t (_id, v, n) VALUES (?, ?, ?)",
                    &[Value::Integer(*id), Value::Text(v.clone()), Value::Integer(*n)],
                )
                .unwrap();
            }
            for (id, (v, n, wh)) in &deltas {
                db.execute(
                    "INSERT INTO t_delta (_id, v, n, _whiteout) VALUES (?, ?, ?, ?)",
                    &[
                        Value::Integer(*id),
                        Value::Text(v.clone()),
                        Value::Integer(*n),
                        Value::Integer(*wh as i64),
                    ],
                )
                .unwrap();
            }
            db
        };
        let queries = [
            format!("SELECT _id, v, n FROM tv WHERE v = '{needle}' ORDER BY _id"),
            format!("SELECT _id, v FROM tv WHERE v IN ('{needle}', 'aa') ORDER BY _id"),
            format!("SELECT _id, n FROM tv WHERE n >= {lo} AND n < {hi} ORDER BY _id"),
            format!("SELECT _id, n FROM tv WHERE n BETWEEN {lo} AND {hi} ORDER BY _id"),
            format!("SELECT _id FROM t WHERE v = '{needle}' AND n > {lo} ORDER BY _id"),
            format!("SELECT _id FROM t WHERE {hi} >= n ORDER BY _id"),
        ];
        for policy in [FlattenPolicy::Off, FlattenPolicy::Sqlite3711, FlattenPolicy::Sqlite386, FlattenPolicy::Always] {
            let plain = build(policy, false);
            let fast = build(policy, true);
            for sql in &queries {
                let want = plain.query(sql, &[]).unwrap();
                let got = fast.query(sql, &[]).unwrap();
                prop_assert_eq!(&got.rows, &want.rows, "policy {:?}, sql {}", policy, sql);
            }
        }
    }

    /// ORDER BY through the engine sorts exactly like the model sort.
    #[test]
    fn order_by_matches_model(
        rows in proptest::collection::vec(("[a-z]{1,4}", -50..50i64), 1..25)
    ) {
        let mut db = Database::new();
        db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, name TEXT, score INTEGER);")
            .unwrap();
        for (name, score) in &rows {
            db.execute(
                "INSERT INTO t (name, score) VALUES (?, ?)",
                &[Value::Text(name.clone()), Value::Integer(*score)],
            )
            .unwrap();
        }
        let rs = db
            .query("SELECT name, score FROM t ORDER BY score DESC, name", &[])
            .unwrap();
        let got: Vec<(String, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].as_integer().unwrap()))
            .collect();
        let mut want = rows.clone();
        want.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let want: Vec<(String, i64)> = want.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Aggregates match fold-based models, including NULL exclusion.
    #[test]
    fn aggregates_match_model(values in proptest::collection::vec(proptest::option::of(-100..100i64), 0..25)) {
        let mut db = Database::new();
        db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER);").unwrap();
        for v in &values {
            let val = v.map(Value::Integer).unwrap_or(Value::Null);
            db.execute("INSERT INTO t (v) VALUES (?)", &[val]).unwrap();
        }
        let rs = db.query("SELECT count(*), count(v), sum(v), max(v), min(v) FROM t", &[]).unwrap();
        let present: Vec<i64> = values.iter().flatten().copied().collect();
        prop_assert_eq!(&rs.rows[0][0], &Value::Integer(values.len() as i64));
        prop_assert_eq!(&rs.rows[0][1], &Value::Integer(present.len() as i64));
        let want_sum = if present.is_empty() {
            Value::Null
        } else {
            Value::Integer(present.iter().sum())
        };
        prop_assert_eq!(&rs.rows[0][2], &want_sum);
        let want_max = present.iter().max().map(|v| Value::Integer(*v)).unwrap_or(Value::Null);
        let want_min = present.iter().min().map(|v| Value::Integer(*v)).unwrap_or(Value::Null);
        prop_assert_eq!(&rs.rows[0][3], &want_max);
        prop_assert_eq!(&rs.rows[0][4], &want_min);
    }

    /// LIKE agrees with a simple regex-free reference matcher.
    #[test]
    fn like_matches_reference(text in "[ab_%]{0,8}", pattern in "[ab_%]{0,6}") {
        fn reference(p: &[u8], t: &[u8]) -> bool {
            match p.first() {
                None => t.is_empty(),
                Some(b'%') => (0..=t.len()).any(|k| reference(&p[1..], &t[k..])),
                Some(b'_') => !t.is_empty() && reference(&p[1..], &t[1..]),
                Some(c) => !t.is_empty() && t[0] == *c && reference(&p[1..], &t[1..]),
            }
        }
        let got = maxoid_sqldb::like_match(&pattern, &text);
        prop_assert_eq!(got, reference(pattern.as_bytes(), text.as_bytes()));
    }
}
