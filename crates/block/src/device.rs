//! Block devices: fixed-size sectors behind a narrow trait.

use crate::{BlockError, BlockResult};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

/// Default sector size (bytes). Devices may be built with other sizes;
/// tests use tiny sectors to force eviction pressure cheaply.
pub const SECTOR_SIZE: usize = 4096;

/// A fixed-sector block device.
///
/// Semantics every implementation must honor:
///
/// * sectors are `sector_size()` bytes; `read_sector`/`write_sector`
///   buffers must match exactly;
/// * reading past `len_sectors()` yields zeros (thin provisioning);
/// * writing past the end grows the device (intervening sectors read as
///   zeros);
/// * `flush` is the durability barrier: data from writes that completed
///   before a successful `flush` survives a crash, data after it may not.
pub trait BlockDevice: Send {
    /// Sector size in bytes.
    fn sector_size(&self) -> usize;
    /// Current device length in sectors (high-water mark of writes).
    fn len_sectors(&self) -> u64;
    /// Reads one sector into `buf` (zeros past the end of the device).
    fn read_sector(&mut self, sector: u64, buf: &mut [u8]) -> BlockResult<()>;
    /// Writes one sector, growing the device as needed.
    fn write_sector(&mut self, sector: u64, buf: &[u8]) -> BlockResult<()>;
    /// Durability barrier (fsync analogue).
    fn flush(&mut self) -> BlockResult<()>;
    /// Downcast hook so fault tests can reach injection knobs through a
    /// boxed device. Every non-fault device returns `None`.
    fn as_fault_device(&mut self) -> Option<&mut crate::FaultDevice> {
        None
    }
}

fn check_len(sector_size: usize, buf_len: usize) -> BlockResult<()> {
    if buf_len != sector_size {
        return Err(BlockError::BadBufferLen { expected: sector_size, got: buf_len });
    }
    Ok(())
}

/// An in-memory block device: one flat buffer, grown on demand.
#[derive(Debug)]
pub struct MemDevice {
    buf: Vec<u8>,
    sector_size: usize,
}

impl MemDevice {
    /// Creates an empty device with the default sector size.
    pub fn new() -> Self {
        Self::with_sector_size(SECTOR_SIZE)
    }

    /// Creates an empty device with an explicit sector size.
    pub fn with_sector_size(sector_size: usize) -> Self {
        assert!(sector_size > 0, "sector size must be positive");
        MemDevice { buf: Vec::new(), sector_size }
    }

    /// XORs `mask` into the byte at `offset` — media bit-rot for the
    /// corruption-sweep tests. Out-of-range offsets are ignored.
    pub fn corrupt(&mut self, offset: u64, mask: u8) {
        if let Some(b) = self.buf.get_mut(offset as usize) {
            *b ^= mask;
        }
    }

    /// The raw device image (tests inspect what "the disk" holds).
    pub fn raw(&self) -> &[u8] {
        &self.buf
    }
}

impl Default for MemDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockDevice for MemDevice {
    fn sector_size(&self) -> usize {
        self.sector_size
    }

    fn len_sectors(&self) -> u64 {
        (self.buf.len() / self.sector_size) as u64
    }

    fn read_sector(&mut self, sector: u64, buf: &mut [u8]) -> BlockResult<()> {
        check_len(self.sector_size, buf.len())?;
        let start = sector as usize * self.sector_size;
        if start >= self.buf.len() {
            buf.fill(0);
        } else {
            buf.copy_from_slice(&self.buf[start..start + self.sector_size]);
        }
        Ok(())
    }

    fn write_sector(&mut self, sector: u64, buf: &[u8]) -> BlockResult<()> {
        check_len(self.sector_size, buf.len())?;
        let start = sector as usize * self.sector_size;
        let end = start + self.sector_size;
        if self.buf.len() < end {
            self.buf.resize(end, 0);
        }
        self.buf[start..end].copy_from_slice(buf);
        Ok(())
    }

    fn flush(&mut self) -> BlockResult<()> {
        Ok(())
    }
}

/// A file-backed block device using positioned reads/writes.
///
/// `flush` maps to `File::sync_data` unless syncing is disabled (benches
/// and tests that model crash behavior at a different layer pay real
/// fsyncs for nothing). A device created with [`FileDevice::temp`] deletes
/// its backing file on drop, so test devices never leak into the
/// workspace.
#[derive(Debug)]
pub struct FileDevice {
    file: File,
    path: PathBuf,
    sector_size: usize,
    len_sectors: u64,
    sync_on_flush: bool,
    delete_on_drop: bool,
}

impl FileDevice {
    /// Creates (or truncates) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> BlockResult<Self> {
        Self::create_with(path, SECTOR_SIZE)
    }

    /// Creates (or truncates) with an explicit sector size.
    pub fn create_with(path: impl AsRef<Path>, sector_size: usize) -> BlockResult<Self> {
        assert!(sector_size > 0, "sector size must be positive");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(FileDevice {
            file,
            path,
            sector_size,
            len_sectors: 0,
            sync_on_flush: true,
            delete_on_drop: false,
        })
    }

    /// Opens an existing device file without truncating it (cold boot).
    /// A trailing partial sector — a torn write — is counted as a full
    /// sector and reads back zero-padded.
    pub fn open(path: impl AsRef<Path>) -> BlockResult<Self> {
        Self::open_with(path, SECTOR_SIZE)
    }

    /// Opens an existing device file with an explicit sector size.
    pub fn open_with(path: impl AsRef<Path>, sector_size: usize) -> BlockResult<Self> {
        assert!(sector_size > 0, "sector size must be positive");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path).map_err(io_err)?;
        let bytes = file.metadata().map_err(io_err)?.len();
        let len_sectors = bytes.div_ceil(sector_size as u64);
        Ok(FileDevice {
            file,
            path,
            sector_size,
            len_sectors,
            sync_on_flush: true,
            delete_on_drop: false,
        })
    }

    /// Creates a device on a unique file under the system temp directory,
    /// deleted when the device drops — the hygiene contract for tests and
    /// benches.
    pub fn temp(tag: &str) -> BlockResult<Self> {
        Self::temp_with(tag, SECTOR_SIZE)
    }

    /// [`FileDevice::temp`] with an explicit sector size.
    pub fn temp_with(tag: &str, sector_size: usize) -> BlockResult<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("maxoid-block-{}-{tag}-{n}.dev", std::process::id()));
        let mut dev = Self::create_with(&path, sector_size)?;
        dev.delete_on_drop = true;
        Ok(dev)
    }

    /// Disables `sync_data` on flush (benchmarks isolating cache cost).
    pub fn set_sync_on_flush(&mut self, on: bool) {
        self.sync_on_flush = on;
    }

    /// Marks (or unmarks) the backing file for deletion on drop.
    pub fn set_delete_on_drop(&mut self, on: bool) {
        self.delete_on_drop = on;
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn io_err(e: std::io::Error) -> BlockError {
    BlockError::Io(e.to_string())
}

impl BlockDevice for FileDevice {
    fn sector_size(&self) -> usize {
        self.sector_size
    }

    fn len_sectors(&self) -> u64 {
        self.len_sectors
    }

    fn read_sector(&mut self, sector: u64, buf: &mut [u8]) -> BlockResult<()> {
        use std::os::unix::fs::FileExt;
        check_len(self.sector_size, buf.len())?;
        if sector >= self.len_sectors {
            buf.fill(0);
            return Ok(());
        }
        let off = sector * self.sector_size as u64;
        // The final sector of a torn file may be short on disk; read what
        // exists and zero-fill the rest.
        let mut done = 0;
        while done < buf.len() {
            let n = self.file.read_at(&mut buf[done..], off + done as u64).map_err(io_err)?;
            if n == 0 {
                buf[done..].fill(0);
                break;
            }
            done += n;
        }
        Ok(())
    }

    fn write_sector(&mut self, sector: u64, buf: &[u8]) -> BlockResult<()> {
        use std::os::unix::fs::FileExt;
        check_len(self.sector_size, buf.len())?;
        self.file.write_all_at(buf, sector * self.sector_size as u64).map_err(io_err)?;
        self.len_sectors = self.len_sectors.max(sector + 1);
        Ok(())
    }

    fn flush(&mut self) -> BlockResult<()> {
        if self.sync_on_flush {
            self.file.sync_data().map_err(io_err)?;
        }
        Ok(())
    }
}

impl Drop for FileDevice {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &mut dyn BlockDevice) {
        let ss = dev.sector_size();
        assert_eq!(dev.len_sectors(), 0);
        let mut buf = vec![0u8; ss];
        // Reads past the end are zeros, not errors.
        dev.read_sector(7, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        // Sparse write: sector 3 grows the device; 0..2 read as zeros.
        let payload: Vec<u8> = (0..ss).map(|i| (i % 251) as u8).collect();
        dev.write_sector(3, &payload).unwrap();
        assert_eq!(dev.len_sectors(), 4);
        dev.read_sector(3, &mut buf).unwrap();
        assert_eq!(buf, payload);
        dev.read_sector(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        // Overwrite sticks.
        let zeros = vec![0u8; ss];
        dev.write_sector(3, &zeros).unwrap();
        dev.read_sector(3, &mut buf).unwrap();
        assert_eq!(buf, zeros);
        dev.flush().unwrap();
        // Wrong-size buffers are rejected loudly.
        let mut short = vec![0u8; ss - 1];
        assert!(matches!(dev.read_sector(0, &mut short), Err(BlockError::BadBufferLen { .. })));
    }

    #[test]
    fn mem_device_semantics() {
        roundtrip(&mut MemDevice::with_sector_size(128));
    }

    #[test]
    fn file_device_semantics() {
        let mut dev = FileDevice::temp_with("semantics", 128).unwrap();
        roundtrip(&mut dev);
    }

    #[test]
    fn file_device_persists_across_reopen() {
        let mut dev = FileDevice::temp_with("reopen", 64).unwrap();
        let payload = vec![0x5au8; 64];
        dev.write_sector(2, &payload).unwrap();
        dev.flush().unwrap();
        let path = dev.path().to_path_buf();
        dev.set_delete_on_drop(false);
        drop(dev);
        let mut re = FileDevice::open_with(&path, 64).unwrap();
        assert_eq!(re.len_sectors(), 3);
        let mut buf = vec![0u8; 64];
        re.read_sector(2, &mut buf).unwrap();
        assert_eq!(buf, payload);
        re.set_delete_on_drop(true);
    }

    #[test]
    fn temp_device_removes_its_file() {
        let dev = FileDevice::temp("hygiene").unwrap();
        let path = dev.path().to_path_buf();
        assert!(path.exists());
        drop(dev);
        assert!(!path.exists(), "temp device must not leak {path:?}");
    }
}
