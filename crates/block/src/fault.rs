//! Fault injection at the device layer: power loss mid-write, torn
//! sectors, and injected I/O errors.
//!
//! [`FaultDevice`] wraps any [`BlockDevice`]. Three independent knobs:
//!
//! * a **write budget** — after `n` successful sector writes the device
//!   "loses power": the failing write lands only a `torn_bytes` prefix of
//!   its sector (a torn sector) and every later write or flush fails with
//!   [`BlockError::Crashed`]. Reads keep working, so recovery code can be
//!   pointed at the wreck;
//! * **torn bytes** — how much of the budget-exceeding write survives;
//! * **failing sectors** — an explicit set of sectors whose writes fail
//!   with an I/O error (bad blocks), without crashing the device;
//! * **failing reads** — a set of sectors whose *reads* fail, armed and
//!   cleared through a shared [`ReadFaults`] handle so tests can inject
//!   faults while the device is owned by a page cache.

use crate::{BlockDevice, BlockError, BlockResult};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Remote control for injected read failures: a clonable handle that
/// stays usable after the [`FaultDevice`] is boxed into a cache.
#[derive(Debug, Clone, Default)]
pub struct ReadFaults(Arc<Mutex<BTreeSet<u64>>>);

impl ReadFaults {
    /// Arms a read failure: reads of `sector` fail with an I/O error
    /// until cleared.
    pub fn fail(&self, sector: u64) {
        self.0.lock().unwrap().insert(sector);
    }

    /// Disarms a read failure.
    pub fn clear(&self, sector: u64) {
        self.0.lock().unwrap().remove(&sector);
    }

    fn armed(&self, sector: u64) -> bool {
        self.0.lock().unwrap().contains(&sector)
    }
}

/// A fault-injecting wrapper around a block device.
pub struct FaultDevice {
    inner: Box<dyn BlockDevice>,
    /// Sector writes remaining before power loss (`None` = unlimited).
    write_budget: Option<u64>,
    /// Bytes of the budget-exceeding write that still land.
    torn_bytes: usize,
    /// Sectors that always fail writes with an I/O error.
    bad_sectors: BTreeSet<u64>,
    /// Sectors whose reads fail, shared with [`ReadFaults`] handles.
    bad_reads: ReadFaults,
    crashed: bool,
}

impl std::fmt::Debug for FaultDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultDevice")
            .field("write_budget", &self.write_budget)
            .field("torn_bytes", &self.torn_bytes)
            .field("bad_sectors", &self.bad_sectors)
            .field("crashed", &self.crashed)
            .finish()
    }
}

impl FaultDevice {
    /// Wraps `inner` with no faults armed.
    pub fn new(inner: Box<dyn BlockDevice>) -> Self {
        FaultDevice {
            inner,
            write_budget: None,
            torn_bytes: 0,
            bad_sectors: BTreeSet::new(),
            bad_reads: ReadFaults::default(),
            crashed: false,
        }
    }

    /// Arms power loss after `writes` successful sector writes; the
    /// failing write tears, landing only its first `torn_bytes` bytes.
    pub fn with_write_budget(inner: Box<dyn BlockDevice>, writes: u64, torn_bytes: usize) -> Self {
        let mut d = Self::new(inner);
        d.write_budget = Some(writes);
        d.torn_bytes = torn_bytes;
        d
    }

    /// Marks a sector as a bad block: writes to it fail with an I/O
    /// error (the device stays up).
    pub fn fail_sector(&mut self, sector: u64) {
        self.bad_sectors.insert(sector);
    }

    /// A shared handle for arming and clearing read failures, usable
    /// after this device has been boxed into a cache.
    pub fn read_faults(&self) -> ReadFaults {
        self.bad_reads.clone()
    }

    /// True once the write budget has been exceeded.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The wrapped device (post-crash inspection).
    pub fn inner(&self) -> &dyn BlockDevice {
        &*self.inner
    }
}

impl BlockDevice for FaultDevice {
    fn sector_size(&self) -> usize {
        self.inner.sector_size()
    }

    fn len_sectors(&self) -> u64 {
        self.inner.len_sectors()
    }

    fn read_sector(&mut self, sector: u64, buf: &mut [u8]) -> BlockResult<()> {
        if self.bad_reads.armed(sector) {
            return Err(BlockError::Io(format!("injected read failure at sector {sector}")));
        }
        // Reads survive the crash: recovery inspects what's left.
        self.inner.read_sector(sector, buf)
    }

    fn write_sector(&mut self, sector: u64, buf: &[u8]) -> BlockResult<()> {
        if self.crashed {
            return Err(BlockError::Crashed);
        }
        if self.bad_sectors.contains(&sector) {
            return Err(BlockError::Io(format!("injected bad block at sector {sector}")));
        }
        if let Some(budget) = &mut self.write_budget {
            if *budget == 0 {
                // Power loss: tear this write. The prefix lands over the
                // sector's previous contents; the rest stays as it was.
                self.crashed = true;
                if self.torn_bytes > 0 {
                    let keep = self.torn_bytes.min(buf.len());
                    let mut old = vec![0u8; buf.len()];
                    self.inner.read_sector(sector, &mut old)?;
                    old[..keep].copy_from_slice(&buf[..keep]);
                    self.inner.write_sector(sector, &old)?;
                }
                return Err(BlockError::Crashed);
            }
            *budget -= 1;
        }
        self.inner.write_sector(sector, buf)
    }

    fn flush(&mut self) -> BlockResult<()> {
        if self.crashed {
            return Err(BlockError::Crashed);
        }
        self.inner.flush()
    }

    fn as_fault_device(&mut self) -> Option<&mut FaultDevice> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn budget_crashes_and_tears() {
        let mut d = FaultDevice::with_write_budget(Box::new(MemDevice::with_sector_size(16)), 2, 5);
        let ones = vec![1u8; 16];
        let twos = vec![2u8; 16];
        d.write_sector(0, &ones).unwrap();
        d.write_sector(1, &ones).unwrap();
        // Third write exceeds the budget: only 5 bytes land.
        assert_eq!(d.write_sector(2, &twos), Err(BlockError::Crashed));
        assert!(d.crashed());
        assert_eq!(d.write_sector(3, &ones), Err(BlockError::Crashed));
        assert_eq!(d.flush(), Err(BlockError::Crashed));
        // Reads still work, showing the torn sector.
        let mut buf = vec![0u8; 16];
        d.read_sector(2, &mut buf).unwrap();
        assert_eq!(&buf[..5], &[2u8; 5]);
        assert_eq!(&buf[5..], &[0u8; 11]);
    }

    #[test]
    fn read_faults_arm_and_clear_through_the_handle() {
        let mut d = FaultDevice::new(Box::new(MemDevice::with_sector_size(16)));
        let faults = d.read_faults();
        d.write_sector(0, &[3u8; 16]).unwrap();
        let mut buf = vec![0u8; 16];
        faults.fail(0);
        assert!(matches!(d.read_sector(0, &mut buf), Err(BlockError::Io(_))));
        // Other sectors still read, and the device has not crashed.
        d.read_sector(1, &mut buf).unwrap();
        assert!(!d.crashed());
        faults.clear(0);
        d.read_sector(0, &mut buf).unwrap();
        assert_eq!(buf, vec![3u8; 16]);
    }

    #[test]
    fn bad_sector_errors_without_crashing() {
        let mut d = FaultDevice::new(Box::new(MemDevice::with_sector_size(16)));
        d.fail_sector(1);
        let buf = vec![9u8; 16];
        d.write_sector(0, &buf).unwrap();
        assert!(matches!(d.write_sector(1, &buf), Err(BlockError::Io(_))));
        assert!(!d.crashed());
        // The device keeps accepting other writes.
        d.write_sector(2, &buf).unwrap();
        d.flush().unwrap();
    }
}
