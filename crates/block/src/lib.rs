//! maxoid-block: pluggable block devices and a page cache, so state can
//! outgrow RAM.
//!
//! Everything above this crate works on byte ranges and inode payloads;
//! this crate is the storage tier underneath: a [`BlockDevice`] exposes
//! fixed-size sectors (read/write/flush/len), and a [`PageCache`] keeps a
//! bounded number of them resident with scan-resistant segmented-clock
//! eviction (probation + protected segments, promotion on re-reference),
//! dirty-page write-back, and an explicit flush barrier. An
//! [`ExtentAllocator`] keeps free sector runs sorted and coalesced so
//! consumers allocate contiguous extents, and a [`PartitionTable`]
//! multiplexes several logical devices onto one image for single-file
//! cold boot.
//!
//! Two devices ship with the crate:
//!
//! * [`MemDevice`] — an in-memory sector array, the test and
//!   fault-injection workhorse;
//! * [`FileDevice`] — a real file addressed with positioned reads and
//!   writes, for runs whose working set must not live in process memory.
//!
//! The cache hands out **pinned page guards** ([`PageRef`]): a guard
//! borrows the cache, so the borrow checker itself guarantees the page
//! cannot be evicted or rewritten while the bytes are in use — the same
//! zero-copy discipline as sqldb's `RowScope`. Each frame carries a
//! generation stamp ([`PageToken`]) so a reader that dropped its guard can
//! later revalidate in O(1) instead of re-faulting.
//!
//! Consumers in the workspace: the VFS store spills large file payloads to
//! pages (`maxoid-vfs`), and the journal's `BlockStorage` keeps the WAL on
//! a device (`maxoid-journal`). Lock order: this crate takes no locks of
//! its own — callers serialize access (the VFS store wraps its cache in a
//! leaf mutex; the journal's storage mutex already owns its cache).

mod alloc;
mod cache;
mod device;
mod fault;
mod part;

pub use alloc::ExtentAllocator;
pub use cache::{CacheStats, PageCache, PageRef, PageToken};
pub use device::{BlockDevice, FileDevice, MemDevice, SECTOR_SIZE};
pub use fault::{FaultDevice, ReadFaults};
pub use part::{PartitionHandle, PartitionTable, PART_HEAP, PART_VFS, PART_WAL};

/// Errors raised by devices and the page cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// An underlying I/O operation failed.
    Io(String),
    /// A buffer did not match the device's sector size.
    BadBufferLen {
        /// Expected sector size in bytes.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// The fault-injection device hit its write budget ("power loss").
    Crashed,
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::Io(m) => write!(f, "block io error: {m}"),
            BlockError::BadBufferLen { expected, got } => {
                write!(f, "buffer is {got} bytes, device sector is {expected}")
            }
            BlockError::Crashed => write!(f, "block device crashed (fault injection)"),
        }
    }
}

impl std::error::Error for BlockError {}

/// Result alias for block operations.
pub type BlockResult<T> = Result<T, BlockError>;
