//! Extent-based sector allocation: a free list kept as sorted,
//! coalesced runs, handing out ascending contiguous extents.
//!
//! The old VFS allocator reused freed sectors LIFO one at a time, which
//! scattered a large file's sectors across the device after any churn.
//! Keeping the free list as `start → length` runs lets an allocation take
//! a single contiguous extent whenever one is big enough, and frees
//! coalesce with both neighbors so churn rebuilds big runs instead of
//! fragmenting forever. Shared by the VFS spill tier and the sqldb row
//! heap.

use std::collections::BTreeMap;

/// A sector allocator over an unbounded device: sorted free runs plus a
/// high-water mark for never-allocated space.
#[derive(Debug, Default)]
pub struct ExtentAllocator {
    /// Free runs, `start → length`, non-adjacent (adjacent runs coalesce
    /// on free) and non-overlapping.
    free: BTreeMap<u64, u64>,
    /// First never-allocated sector.
    next: u64,
}

impl ExtentAllocator {
    /// An allocator with nothing allocated and nothing free.
    pub fn new() -> Self {
        Self::default()
    }

    /// The high-water mark: sectors at and past this were never handed
    /// out, so the device never grew beyond it.
    pub fn next_sector(&self) -> u64 {
        self.next
    }

    /// The free runs, ascending, as `(start, len)` pairs (tests assert
    /// allocation picked the run it should have).
    pub fn free_runs(&self) -> Vec<(u64, u64)> {
        self.free.iter().map(|(&s, &l)| (s, l)).collect()
    }

    /// Allocates `n` sectors, ascending. A single free run that fits
    /// serves the whole request contiguously (lowest-addressed first
    /// fit); otherwise free runs are consumed in address order and the
    /// remainder is carved off the high-water mark — still sorted, so a
    /// multi-run allocation is as sequential as the free list allows.
    pub fn alloc(&mut self, n: usize) -> Vec<u64> {
        let want = n as u64;
        if want == 0 {
            return Vec::new();
        }
        if let Some((&start, &len)) = self.free.iter().find(|(_, &len)| len >= want) {
            self.take_prefix(start, len, want);
            return (start..start + want).collect();
        }
        let mut out = Vec::with_capacity(n);
        while (out.len() as u64) < want {
            let need = want - out.len() as u64;
            match self.free.iter().next() {
                Some((&start, &len)) => {
                    let take = len.min(need);
                    self.take_prefix(start, len, take);
                    out.extend(start..start + take);
                }
                None => {
                    let start = self.next;
                    self.next += need;
                    out.extend(start..start + need);
                }
            }
        }
        out
    }

    /// Allocates a single contiguous run of `n` sectors and returns its
    /// first sector — for payloads that must be addressable by one
    /// `(start, len)` pair. Falls back to fresh high-water space when no
    /// free run is big enough.
    pub fn alloc_contiguous(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty extents have no address");
        if let Some((&start, &len)) = self.free.iter().find(|(_, &len)| len >= n) {
            self.take_prefix(start, len, n);
            return start;
        }
        let start = self.next;
        self.next += n;
        start
    }

    fn take_prefix(&mut self, start: u64, len: u64, take: u64) {
        self.free.remove(&start);
        if take < len {
            self.free.insert(start + take, len - take);
        }
    }

    /// Returns a run of sectors to the free list, coalescing with both
    /// neighbors.
    pub fn free_run(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let (mut start, mut len) = (start, len);
        if let Some((&ps, &pl)) = self.free.range(..start).next_back() {
            debug_assert!(ps + pl <= start, "double free of sector {start}");
            if ps + pl == start {
                self.free.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        if let Some((&ss, _)) = self.free.range(start + len..).next() {
            if start + len == ss {
                let sl = self.free.remove(&ss).unwrap();
                len += sl;
            }
        }
        self.free.insert(start, len);
    }

    /// Frees an arbitrary set of sectors (sorted internally into runs).
    pub fn free_sectors(&mut self, sectors: &[u64]) {
        let mut sorted = sectors.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut i = 0;
        while i < sorted.len() {
            let start = sorted[i];
            let mut end = start + 1;
            i += 1;
            while i < sorted.len() && sorted[i] == end {
                end += 1;
                i += 1;
            }
            self.free_run(start, end - start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocations_are_sequential() {
        let mut a = ExtentAllocator::new();
        assert_eq!(a.alloc(3), vec![0, 1, 2]);
        assert_eq!(a.alloc(2), vec![3, 4]);
        assert_eq!(a.next_sector(), 5);
    }

    #[test]
    fn free_runs_coalesce_and_serve_contiguous_extents() {
        let mut a = ExtentAllocator::new();
        let first = a.alloc(6); // 0..6
                                // Free 1, 4, then 2 and 3: the middle frees must merge into one
                                // run 1..5.
        a.free_sectors(&[first[1], first[4]]);
        a.free_sectors(&[first[2], first[3]]);
        assert_eq!(a.free_runs(), vec![(1, 4)]);
        // A 3-sector allocation takes the run's prefix contiguously
        // instead of scattering, and leaves the tail free.
        assert_eq!(a.alloc(3), vec![1, 2, 3]);
        assert_eq!(a.free_runs(), vec![(4, 1)]);
        assert_eq!(a.next_sector(), 6, "reuse must not grow the device");
    }

    #[test]
    fn too_small_runs_are_consumed_in_address_order() {
        let mut a = ExtentAllocator::new();
        a.alloc(8); // 0..8
        a.free_sectors(&[6, 1, 3]);
        // No single run fits 4; the allocator drains runs ascending and
        // extends from the high-water mark.
        assert_eq!(a.alloc(4), vec![1, 3, 6, 8]);
        assert!(a.free_runs().is_empty());
        assert_eq!(a.next_sector(), 9);
    }

    #[test]
    fn contiguous_allocation_never_fragments() {
        let mut a = ExtentAllocator::new();
        a.alloc(4);
        a.free_sectors(&[1, 2]);
        // Needs 3 contiguous: the 2-run can't serve it, so fresh space.
        assert_eq!(a.alloc_contiguous(3), 4);
        // The 2-run is still intact for a smaller request.
        assert_eq!(a.alloc_contiguous(2), 1);
        assert!(a.free_runs().is_empty());
    }
}
