//! The page cache: a bounded set of resident sectors over a block device.
//!
//! Eviction is second-chance (clock): each frame has a referenced bit set
//! on access; the hand clears bits until it finds an unreferenced frame,
//! which is evicted (written back first when dirty). The frame array is
//! allocated once at construction and never grows, so page-resident
//! memory is structurally bounded by `capacity × page_size` no matter how
//! large the device gets.
//!
//! Pinning is the borrow checker's job: [`PageCache::read`] returns a
//! [`PageRef`] borrowing the cache, so no eviction (which needs `&mut`)
//! can run while the guard is alive. [`PageToken`]s carry the frame's
//! generation stamp for O(1) revalidation after the guard is dropped —
//! the same generation-stamp discipline as the PR-4 resolution caches.

use crate::{BlockDevice, BlockResult};
use std::collections::HashMap;

/// Counters mirrored into `maxoid-obs` and exposed to `store.stats()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page accesses served from a resident frame.
    pub hits: u64,
    /// Page accesses that faulted the sector in from the device.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Bytes written back to the device (dirty evictions + flushes).
    pub writeback_bytes: u64,
    /// Explicit flush barriers performed.
    pub flushes: u64,
}

/// A frame's identity at a point in time: sector plus generation stamp.
/// [`PageCache::check`] answers "is that exact load still resident?"
/// without touching the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageToken {
    /// Device sector the frame held.
    pub sector: u64,
    /// Generation the frame was stamped with when loaded.
    pub generation: u64,
}

/// A pinned, read-only view of one cached page. While the guard lives the
/// borrow checker prevents any `&mut PageCache` call — eviction included —
/// so the slice can be handed out zero-copy.
#[derive(Debug)]
pub struct PageRef<'a> {
    data: &'a [u8],
    token: PageToken,
}

impl<'a> PageRef<'a> {
    /// The page bytes.
    pub fn data(&self) -> &'a [u8] {
        self.data
    }

    /// The identity stamp for later revalidation.
    pub fn token(&self) -> PageToken {
        self.token
    }
}

impl std::ops::Deref for PageRef<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.data
    }
}

struct Frame {
    /// Device sector held, or `None` for a never-used frame.
    sector: Option<u64>,
    buf: Box<[u8]>,
    dirty: bool,
    referenced: bool,
    generation: u64,
}

/// A fixed-capacity page cache over a [`BlockDevice`].
pub struct PageCache {
    dev: Box<dyn BlockDevice>,
    frames: Vec<Frame>,
    /// sector → frame index.
    map: HashMap<u64, usize>,
    hand: usize,
    next_gen: u64,
    page_size: usize,
    stats: CacheStats,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("capacity", &self.frames.len())
            .field("page_size", &self.page_size)
            .field("resident", &self.map.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PageCache {
    /// Creates a cache of `capacity` pages (at least 1) over `dev`. The
    /// page size is the device's sector size; all frame memory is
    /// allocated here, up front.
    pub fn new(dev: Box<dyn BlockDevice>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let page_size = dev.sector_size();
        let frames = (0..capacity)
            .map(|_| Frame {
                sector: None,
                buf: vec![0u8; page_size].into_boxed_slice(),
                dirty: false,
                referenced: false,
                generation: 0,
            })
            .collect();
        PageCache {
            dev,
            frames,
            map: HashMap::new(),
            hand: 0,
            next_gen: 0,
            page_size,
            stats: CacheStats::default(),
        }
    }

    /// Page size in bytes (= the device's sector size).
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Upper bound on page-resident memory, fixed at construction.
    pub fn budget_bytes(&self) -> usize {
        self.frames.len() * self.page_size
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The underlying device (tests inspect raw images, benches size
    /// working sets off `len_sectors`).
    pub fn device(&self) -> &dyn BlockDevice {
        &*self.dev
    }

    /// Mutable access to the device, for fault injection in tests.
    /// Bypassing the cache invalidates nothing — callers that corrupt the
    /// media must reopen or [`PageCache::drop_clean`] first.
    pub fn device_mut(&mut self) -> &mut dyn BlockDevice {
        &mut *self.dev
    }

    /// Drops every **clean** resident page (dirty pages are kept — they
    /// hold data the device does not). Used after out-of-band device
    /// mutation in fault tests.
    pub fn drop_clean(&mut self) {
        let map = &mut self.map;
        for frame in self.frames.iter_mut() {
            if !frame.dirty {
                if let Some(sec) = frame.sector.take() {
                    map.remove(&sec);
                }
                frame.referenced = false;
            }
        }
    }

    /// Picks the victim frame with the clock hand: referenced frames get
    /// their second chance (bit cleared), the first unreferenced frame is
    /// chosen. Terminates within two sweeps.
    fn pick_victim(&mut self) -> usize {
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[i].referenced {
                self.frames[i].referenced = false;
            } else {
                return i;
            }
        }
    }

    /// Writes a dirty frame's bytes back to the device.
    fn writeback(
        dev: &mut dyn BlockDevice,
        frame: &mut Frame,
        stats: &mut CacheStats,
    ) -> BlockResult<()> {
        if let (true, Some(sector)) = (frame.dirty, frame.sector) {
            dev.write_sector(sector, &frame.buf)?;
            frame.dirty = false;
            stats.writeback_bytes += frame.buf.len() as u64;
            maxoid_obs::counter_add("block.writeback_bytes", frame.buf.len() as u64);
        }
        Ok(())
    }

    /// Ensures `sector` is resident and returns its frame index.
    /// `load` controls whether a miss reads the device (false for
    /// full-page overwrites, which would throw the read away).
    fn fault_in(&mut self, sector: u64, load: bool) -> BlockResult<usize> {
        if let Some(&i) = self.map.get(&sector) {
            self.stats.hits += 1;
            maxoid_obs::counter_add("block.cache_hits", 1);
            self.frames[i].referenced = true;
            return Ok(i);
        }
        self.stats.misses += 1;
        maxoid_obs::counter_add("block.cache_misses", 1);
        let i = self.pick_victim();
        if let Some(old) = self.frames[i].sector {
            Self::writeback(&mut *self.dev, &mut self.frames[i], &mut self.stats)?;
            self.map.remove(&old);
            self.stats.evictions += 1;
            maxoid_obs::counter_add("block.cache_evictions", 1);
        }
        let frame = &mut self.frames[i];
        if load {
            self.dev.read_sector(sector, &mut frame.buf)?;
        } else {
            frame.buf.fill(0);
        }
        self.next_gen += 1;
        frame.sector = Some(sector);
        frame.dirty = false;
        frame.referenced = true;
        frame.generation = self.next_gen;
        self.map.insert(sector, i);
        Ok(i)
    }

    /// Returns a pinned read guard for `sector`, faulting it in if needed.
    pub fn read(&mut self, sector: u64) -> BlockResult<PageRef<'_>> {
        let i = self.fault_in(sector, true)?;
        let frame = &self.frames[i];
        Ok(PageRef { data: &frame.buf, token: PageToken { sector, generation: frame.generation } })
    }

    /// True when the exact load named by `token` is still resident: same
    /// sector in some frame, stamped with the same generation.
    pub fn check(&self, token: PageToken) -> bool {
        self.map.get(&token.sector).is_some_and(|&i| self.frames[i].generation == token.generation)
    }

    /// Mutates `sector` in place (read-modify-write) and marks it dirty.
    /// Dirty pages reach the device on eviction or [`PageCache::flush`].
    pub fn write(&mut self, sector: u64, f: impl FnOnce(&mut [u8])) -> BlockResult<()> {
        let i = self.fault_in(sector, true)?;
        f(&mut self.frames[i].buf);
        self.frames[i].dirty = true;
        Ok(())
    }

    /// Replaces `sector` wholesale. A miss skips the device read (the old
    /// contents are dead), which is the fast path for log appends and
    /// full-page spills.
    pub fn write_full(&mut self, sector: u64, data: &[u8]) -> BlockResult<()> {
        assert_eq!(data.len(), self.page_size, "write_full takes exactly one page");
        let i = self.fault_in(sector, false)?;
        self.frames[i].buf.copy_from_slice(data);
        self.frames[i].dirty = true;
        Ok(())
    }

    /// Forgets `sector` without write-back — the caller has deallocated
    /// the block, so its bytes are garbage by definition.
    pub fn discard(&mut self, sector: u64) {
        if let Some(i) = self.map.remove(&sector) {
            let frame = &mut self.frames[i];
            frame.sector = None;
            frame.dirty = false;
            frame.referenced = false;
        }
    }

    /// Reads an arbitrary byte range spanning pages.
    pub fn read_bytes(&mut self, offset: u64, out: &mut [u8]) -> BlockResult<()> {
        let ps = self.page_size as u64;
        let mut done = 0usize;
        while done < out.len() {
            let abs = offset + done as u64;
            let sector = abs / ps;
            let within = (abs % ps) as usize;
            let n = (self.page_size - within).min(out.len() - done);
            let page = self.read(sector)?;
            out[done..done + n].copy_from_slice(&page.data()[within..within + n]);
            done += n;
        }
        Ok(())
    }

    /// Writes an arbitrary byte range spanning pages. Aligned full pages
    /// take the no-read [`PageCache::write_full`] path; ragged head and
    /// tail pages read-modify-write.
    pub fn write_bytes(&mut self, offset: u64, data: &[u8]) -> BlockResult<()> {
        let ps = self.page_size as u64;
        let mut done = 0usize;
        while done < data.len() {
            let abs = offset + done as u64;
            let sector = abs / ps;
            let within = (abs % ps) as usize;
            let n = (self.page_size - within).min(data.len() - done);
            if within == 0 && n == self.page_size {
                self.write_full(sector, &data[done..done + n])?;
            } else {
                self.write(sector, |page| {
                    page[within..within + n].copy_from_slice(&data[done..done + n]);
                })?;
            }
            done += n;
        }
        Ok(())
    }

    /// The flush barrier: writes back every dirty page, then flushes the
    /// device. After `Ok(())`, everything written through the cache so
    /// far is as durable as the device makes it.
    pub fn flush(&mut self) -> BlockResult<()> {
        let timed = maxoid_obs::enabled();
        let start = timed.then(std::time::Instant::now);
        for i in 0..self.frames.len() {
            Self::writeback(&mut *self.dev, &mut self.frames[i], &mut self.stats)?;
        }
        self.dev.flush()?;
        self.stats.flushes += 1;
        maxoid_obs::counter_add("block.flushes", 1);
        if let Some(start) = start {
            maxoid_obs::observe("block.flush_us", start.elapsed().as_micros() as u64);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    fn cache(pages: usize, ss: usize) -> PageCache {
        PageCache::new(Box::new(MemDevice::with_sector_size(ss)), pages)
    }

    #[test]
    fn read_your_writes_through_eviction() {
        let mut c = cache(2, 16);
        for s in 0..6u64 {
            c.write(s, |p| p.fill(s as u8)).unwrap();
        }
        // Only 2 frames: sectors 0..4 were evicted (written back dirty).
        assert!(c.stats().evictions >= 4);
        for s in 0..6u64 {
            let page = c.read(s).unwrap();
            assert!(page.iter().all(|&b| b == s as u8), "sector {s}");
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c = cache(4, 16);
        c.read(0).unwrap();
        c.read(0).unwrap();
        c.read(1).unwrap();
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn tokens_detect_eviction() {
        let mut c = cache(1, 16);
        let t0 = c.read(0).unwrap().token();
        assert!(c.check(t0));
        c.read(1).unwrap(); // evicts sector 0 (capacity 1)
        assert!(!c.check(t0), "evicted page's token must fail revalidation");
        // Re-reading sector 0 loads a *new* generation.
        let t0b = c.read(0).unwrap().token();
        assert_ne!(t0.generation, t0b.generation);
        assert!(c.check(t0b));
        assert!(!c.check(t0));
    }

    #[test]
    fn pinned_guard_is_zero_copy_and_blocks_eviction() {
        let mut c = cache(1, 16);
        c.write(3, |p| p.fill(7)).unwrap();
        let page = c.read(3).unwrap();
        // The guard borrows the cache: while `page` is alive, no &mut
        // method (eviction, write) can be called — enforced at compile
        // time. Consuming the bytes needs no copy:
        assert_eq!(page.data().iter().map(|&b| b as u64).sum::<u64>(), 7 * 16);
        assert_eq!(page.token().sector, 3);
    }

    #[test]
    fn flush_writes_back_dirty_pages() {
        let mut c = cache(4, 16);
        c.write(0, |p| p.fill(1)).unwrap();
        c.write(1, |p| p.fill(2)).unwrap();
        assert_eq!(c.device().len_sectors(), 0, "dirty pages start cache-only");
        c.flush().unwrap();
        assert_eq!(c.device().len_sectors(), 2);
        assert_eq!(c.stats().writeback_bytes, 32);
        // A second flush has nothing to write back.
        c.flush().unwrap();
        assert_eq!(c.stats().writeback_bytes, 32);
    }

    #[test]
    fn byte_ranges_span_pages() {
        let mut c = cache(3, 8);
        let data: Vec<u8> = (0..30).collect();
        c.write_bytes(5, &data).unwrap();
        let mut out = vec![0u8; 30];
        c.read_bytes(5, &mut out).unwrap();
        assert_eq!(out, data);
        // Unwritten neighbors read as zeros.
        let mut head = vec![9u8; 5];
        c.read_bytes(0, &mut head).unwrap();
        assert!(head.iter().all(|&b| b == 0));
    }

    #[test]
    fn discard_drops_without_writeback() {
        let mut c = cache(2, 16);
        c.write(0, |p| p.fill(0xAA)).unwrap();
        c.discard(0);
        c.flush().unwrap();
        // The dirty page never reached the device.
        assert_eq!(c.device().len_sectors(), 0);
        let page = c.read(0).unwrap();
        assert!(page.iter().all(|&b| b == 0));
    }

    #[test]
    fn budget_is_fixed_at_construction() {
        let mut c = cache(8, 32);
        assert_eq!(c.budget_bytes(), 256);
        for s in 0..1000u64 {
            c.write(s, |p| p[0] = s as u8).unwrap();
        }
        // Device grew far past the budget; the frame array did not.
        assert_eq!(c.capacity(), 8);
        assert!(c.device().len_sectors() >= 992);
    }
}
