//! The page cache: a bounded set of resident sectors over a block device.
//!
//! Eviction is a **segmented clock** (midpoint insertion): a new page
//! enters a probationary segment and only graduates to the protected
//! segment when it is referenced again. Victims come from probation —
//! newest-first, so one long sequential scan recycles its own stream
//! frame instead of flushing the whole cache — with a periodic
//! oldest-first tick so stragglers cannot camp in probation forever. The
//! protected segment (3/4 of capacity) is managed by a second-chance
//! clock of its own and only shrinks by demotion back into probation, so
//! a re-referenced working set survives scans that are larger than the
//! cache. The frame array is allocated once at construction and never
//! grows, so page-resident memory is structurally bounded by
//! `capacity × page_size` no matter how large the device gets.
//!
//! Pinning is the borrow checker's job: [`PageCache::read`] returns a
//! [`PageRef`] borrowing the cache, so no eviction (which needs `&mut`)
//! can run while the guard is alive. [`PageToken`]s carry the frame's
//! generation stamp for O(1) revalidation after the guard is dropped —
//! the same generation-stamp discipline as the PR-4 resolution caches.

use crate::{BlockDevice, BlockResult};
use std::collections::{HashMap, VecDeque};

/// Counters mirrored into `maxoid-obs` and exposed to `store.stats()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page accesses served from a resident frame.
    pub hits: u64,
    /// Page accesses that faulted the sector in from the device.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Probationary pages promoted to the protected segment on
    /// re-reference.
    pub promotions: u64,
    /// Bytes written back to the device (dirty evictions + flushes).
    pub writeback_bytes: u64,
    /// Explicit flush barriers performed.
    pub flushes: u64,
}

/// A frame's identity at a point in time: sector plus generation stamp.
/// [`PageCache::check`] answers "is that exact load still resident?"
/// without touching the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageToken {
    /// Device sector the frame held.
    pub sector: u64,
    /// Generation the frame was stamped with when loaded.
    pub generation: u64,
}

/// A pinned, read-only view of one cached page. While the guard lives the
/// borrow checker prevents any `&mut PageCache` call — eviction included —
/// so the slice can be handed out zero-copy.
#[derive(Debug)]
pub struct PageRef<'a> {
    data: &'a [u8],
    token: PageToken,
}

impl<'a> PageRef<'a> {
    /// The page bytes.
    pub fn data(&self) -> &'a [u8] {
        self.data
    }

    /// The identity stamp for later revalidation.
    pub fn token(&self) -> PageToken {
        self.token
    }
}

impl std::ops::Deref for PageRef<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.data
    }
}

/// Which eviction segment a frame currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegState {
    /// Holds no page.
    Free,
    /// Resident but not yet re-referenced; eviction victims come from
    /// here.
    Probation,
    /// Re-referenced at least once; exempt from eviction until demoted.
    Protected,
}

struct Frame {
    /// Device sector held, or `None` for an empty frame.
    sector: Option<u64>,
    buf: Box<[u8]>,
    dirty: bool,
    referenced: bool,
    generation: u64,
    state: SegState,
    /// Stamp matching this frame's live entry in the probation queue;
    /// entries with a stale stamp are skipped lazily on pop.
    prob_stamp: u64,
}

/// A fixed-capacity page cache over a [`BlockDevice`].
pub struct PageCache {
    dev: Box<dyn BlockDevice>,
    frames: Vec<Frame>,
    /// sector → frame index.
    map: HashMap<u64, usize>,
    /// Empty frames, reused before any eviction.
    free: Vec<usize>,
    /// Probationary frames as `(index, stamp)`; newest at the back.
    /// Entries are invalidated lazily: a pop only counts when the frame
    /// is still probationary and the stamp matches.
    prob: VecDeque<(usize, u64)>,
    /// Pops taken from the probation queue, driving the aging tick.
    prob_pops: u64,
    prob_seq: u64,
    /// Frames currently in the protected segment.
    protected: usize,
    /// Protected-segment capacity: 3/4 of the cache, and always at least
    /// one frame short of it so probation never empties.
    prot_cap: usize,
    /// Clock hand for protected-segment demotion (and the defensive
    /// fallback sweep).
    hand: usize,
    next_gen: u64,
    page_size: usize,
    stats: CacheStats,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("capacity", &self.frames.len())
            .field("page_size", &self.page_size)
            .field("resident", &self.map.len())
            .field("protected", &self.protected)
            .field("stats", &self.stats)
            .finish()
    }
}

impl PageCache {
    /// Creates a cache of `capacity` pages (at least 1) over `dev`. The
    /// page size is the device's sector size; all frame memory is
    /// allocated here, up front.
    pub fn new(dev: Box<dyn BlockDevice>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let page_size = dev.sector_size();
        let frames = (0..capacity)
            .map(|_| Frame {
                sector: None,
                buf: vec![0u8; page_size].into_boxed_slice(),
                dirty: false,
                referenced: false,
                generation: 0,
                state: SegState::Free,
                prob_stamp: 0,
            })
            .collect();
        PageCache {
            dev,
            frames,
            map: HashMap::new(),
            free: (0..capacity).rev().collect(),
            prob: VecDeque::new(),
            prob_pops: 0,
            prob_seq: 0,
            protected: 0,
            prot_cap: (capacity * 3 / 4).min(capacity - 1),
            hand: 0,
            next_gen: 0,
            page_size,
            stats: CacheStats::default(),
        }
    }

    /// Page size in bytes (= the device's sector size).
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Upper bound on page-resident memory, fixed at construction.
    pub fn budget_bytes(&self) -> usize {
        self.frames.len() * self.page_size
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The underlying device (tests inspect raw images, benches size
    /// working sets off `len_sectors`).
    pub fn device(&self) -> &dyn BlockDevice {
        &*self.dev
    }

    /// Mutable access to the device, for fault injection in tests.
    /// Bypassing the cache invalidates nothing — callers that corrupt the
    /// media must reopen or [`PageCache::drop_clean`] first.
    pub fn device_mut(&mut self) -> &mut dyn BlockDevice {
        &mut *self.dev
    }

    /// Drops every **clean** resident page (dirty pages are kept — they
    /// hold data the device does not). Used after out-of-band device
    /// mutation in fault tests.
    pub fn drop_clean(&mut self) {
        for i in 0..self.frames.len() {
            if !self.frames[i].dirty && self.frames[i].sector.is_some() {
                self.release(i);
            }
        }
    }

    /// Resets frame `i` to an empty identity and returns it to the free
    /// list. The caller must have written back any dirty bytes first.
    fn release(&mut self, i: usize) {
        if let Some(sec) = self.frames[i].sector.take() {
            self.map.remove(&sec);
        }
        if self.frames[i].state == SegState::Protected {
            self.protected -= 1;
        }
        let f = &mut self.frames[i];
        f.dirty = false;
        f.referenced = false;
        f.state = SegState::Free;
        self.free.push(i);
    }

    /// Enqueues frame `i` into probation with a fresh stamp. `cold` puts
    /// it at the victim end's far side (demotions and second chances);
    /// otherwise it lands at the newest end like any fresh fault.
    fn enqueue_prob(&mut self, i: usize, cold: bool) {
        self.prob_seq += 1;
        self.frames[i].state = SegState::Probation;
        self.frames[i].prob_stamp = self.prob_seq;
        if cold {
            self.prob.push_front((i, self.prob_seq));
        } else {
            self.prob.push_back((i, self.prob_seq));
        }
    }

    /// Promotes a re-referenced probationary frame into the protected
    /// segment, demoting colder protected frames when over capacity.
    fn promote(&mut self, i: usize) {
        self.frames[i].state = SegState::Protected;
        self.frames[i].referenced = true;
        self.protected += 1;
        self.stats.promotions += 1;
        while self.protected > self.prot_cap {
            self.demote_one();
        }
    }

    /// Second-chance clock over the protected segment: referenced frames
    /// get their bit cleared, the first unreferenced one is demoted to
    /// the cold end of probation. Only called while `protected > 0`, so
    /// the sweep terminates within two revolutions.
    fn demote_one(&mut self) {
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[i].state != SegState::Protected {
                continue;
            }
            if self.frames[i].referenced {
                self.frames[i].referenced = false;
            } else {
                self.protected -= 1;
                self.frames[i].referenced = false;
                self.enqueue_prob(i, true);
                return;
            }
        }
    }

    /// Pops the next probation candidate. Victims normally come from the
    /// newest end (a sequential scan then recycles its own stream frame);
    /// every eighth pop takes the oldest instead, so nothing camps in
    /// probation indefinitely.
    fn pop_prob_candidate(&mut self) -> Option<(usize, u64)> {
        self.prob_pops += 1;
        if self.prob_pops % 8 == 0 {
            self.prob.pop_front()
        } else {
            self.prob.pop_back()
        }
    }

    /// Evicts frame `i`: writes back dirty bytes, removes the map entry,
    /// and resets the frame's identity — in that order, so an I/O error
    /// leaves the map↔frames bijection intact (the frame keeps its page
    /// and is re-queued for a later attempt).
    fn vacate(&mut self, i: usize) -> BlockResult<()> {
        if self.frames[i].sector.is_some() {
            if let Err(e) = Self::writeback(&mut *self.dev, &mut self.frames[i], &mut self.stats) {
                if self.frames[i].state == SegState::Probation {
                    self.enqueue_prob(i, true);
                }
                return Err(e);
            }
            self.stats.evictions += 1;
            maxoid_obs::counter_add("block.cache_evictions", 1);
        }
        self.release(i);
        self.free.pop();
        Ok(())
    }

    /// Selects and empties a frame for a new page: free frames first,
    /// then a probationary victim, then (only if segment bookkeeping ever
    /// drifted) a plain clock sweep over everything.
    fn acquire_frame(&mut self) -> BlockResult<usize> {
        if let Some(i) = self.free.pop() {
            return Ok(i);
        }
        while let Some((i, stamp)) = self.pop_prob_candidate() {
            if self.frames[i].state != SegState::Probation || self.frames[i].prob_stamp != stamp {
                continue; // stale: the frame was promoted, freed, or re-queued
            }
            if self.frames[i].referenced {
                // Second chance — only reachable when the protected
                // segment has zero capacity (a one-page cache), where
                // re-references cannot promote.
                self.frames[i].referenced = false;
                self.enqueue_prob(i, true);
                continue;
            }
            return self.vacate(i).map(|_| i);
        }
        // Defensive fallback: every frame claims protection. Sweep the
        // clock over all frames and evict the first unreferenced one.
        let i = loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[i].referenced {
                self.frames[i].referenced = false;
            } else {
                break i;
            }
        };
        self.vacate(i).map(|_| i)
    }

    /// Writes a dirty frame's bytes back to the device.
    fn writeback(
        dev: &mut dyn BlockDevice,
        frame: &mut Frame,
        stats: &mut CacheStats,
    ) -> BlockResult<()> {
        if let (true, Some(sector)) = (frame.dirty, frame.sector) {
            dev.write_sector(sector, &frame.buf)?;
            frame.dirty = false;
            stats.writeback_bytes += frame.buf.len() as u64;
            maxoid_obs::counter_add("block.writeback_bytes", frame.buf.len() as u64);
        }
        Ok(())
    }

    /// Ensures `sector` is resident and returns its frame index.
    /// `load` controls whether a miss reads the device (false for
    /// full-page overwrites, which would throw the read away).
    fn fault_in(&mut self, sector: u64, load: bool) -> BlockResult<usize> {
        if let Some(&i) = self.map.get(&sector) {
            self.stats.hits += 1;
            maxoid_obs::counter_add("block.cache_hits", 1);
            if self.frames[i].state == SegState::Probation && self.prot_cap > 0 {
                self.promote(i);
            } else {
                self.frames[i].referenced = true;
            }
            return Ok(i);
        }
        self.stats.misses += 1;
        maxoid_obs::counter_add("block.cache_misses", 1);
        let i = self.acquire_frame()?;
        if load {
            if let Err(e) = self.dev.read_sector(sector, &mut self.frames[i].buf) {
                // The frame was already reset by `acquire_frame`; keep it
                // that way and hand it back, so a failed replacement read
                // can never leave a stale identity to alias some other
                // frame's mapping on a later eviction.
                self.free.push(i);
                return Err(e);
            }
        } else {
            self.frames[i].buf.fill(0);
        }
        self.next_gen += 1;
        let frame = &mut self.frames[i];
        frame.sector = Some(sector);
        frame.dirty = false;
        frame.referenced = false;
        frame.generation = self.next_gen;
        self.map.insert(sector, i);
        self.enqueue_prob(i, false);
        Ok(i)
    }

    /// Returns a pinned read guard for `sector`, faulting it in if needed.
    pub fn read(&mut self, sector: u64) -> BlockResult<PageRef<'_>> {
        let i = self.fault_in(sector, true)?;
        let frame = &self.frames[i];
        Ok(PageRef { data: &frame.buf, token: PageToken { sector, generation: frame.generation } })
    }

    /// True when the exact load named by `token` is still resident: same
    /// sector in some frame, stamped with the same generation.
    pub fn check(&self, token: PageToken) -> bool {
        self.map.get(&token.sector).is_some_and(|&i| self.frames[i].generation == token.generation)
    }

    /// Mutates `sector` in place (read-modify-write) and marks it dirty.
    /// Dirty pages reach the device on eviction or [`PageCache::flush`].
    pub fn write(&mut self, sector: u64, f: impl FnOnce(&mut [u8])) -> BlockResult<()> {
        let i = self.fault_in(sector, true)?;
        f(&mut self.frames[i].buf);
        self.frames[i].dirty = true;
        Ok(())
    }

    /// Replaces `sector` wholesale. A miss skips the device read (the old
    /// contents are dead), which is the fast path for log appends and
    /// full-page spills.
    pub fn write_full(&mut self, sector: u64, data: &[u8]) -> BlockResult<()> {
        assert_eq!(data.len(), self.page_size, "write_full takes exactly one page");
        let i = self.fault_in(sector, false)?;
        self.frames[i].buf.copy_from_slice(data);
        self.frames[i].dirty = true;
        Ok(())
    }

    /// Replaces `sector` with `data` zero-padded to a full page, without
    /// reading the device first — the partial-write analogue of
    /// [`PageCache::write_full`] for ragged tail chunks whose old device
    /// bytes are dead. Everything past `data.len()` reads back as zero.
    pub fn write_padded(&mut self, sector: u64, data: &[u8]) -> BlockResult<()> {
        assert!(data.len() <= self.page_size, "write_padded takes at most one page");
        let i = self.fault_in(sector, false)?;
        // An explicit fill: fault_in only zeroes the frame on a miss, and
        // a hit may hold live bytes past the new length.
        self.frames[i].buf.fill(0);
        self.frames[i].buf[..data.len()].copy_from_slice(data);
        self.frames[i].dirty = true;
        Ok(())
    }

    /// Forgets `sector` without write-back — the caller has deallocated
    /// the block, so its bytes are garbage by definition.
    pub fn discard(&mut self, sector: u64) {
        if let Some(&i) = self.map.get(&sector) {
            self.frames[i].dirty = false;
            self.release(i);
        }
    }

    /// Reads an arbitrary byte range spanning pages.
    pub fn read_bytes(&mut self, offset: u64, out: &mut [u8]) -> BlockResult<()> {
        let ps = self.page_size as u64;
        let mut done = 0usize;
        while done < out.len() {
            let abs = offset + done as u64;
            let sector = abs / ps;
            let within = (abs % ps) as usize;
            let n = (self.page_size - within).min(out.len() - done);
            let page = self.read(sector)?;
            out[done..done + n].copy_from_slice(&page.data()[within..within + n]);
            done += n;
        }
        Ok(())
    }

    /// Writes an arbitrary byte range spanning pages. Aligned full pages
    /// take the no-read [`PageCache::write_full`] path; ragged head and
    /// tail pages read-modify-write.
    pub fn write_bytes(&mut self, offset: u64, data: &[u8]) -> BlockResult<()> {
        let ps = self.page_size as u64;
        let mut done = 0usize;
        while done < data.len() {
            let abs = offset + done as u64;
            let sector = abs / ps;
            let within = (abs % ps) as usize;
            let n = (self.page_size - within).min(data.len() - done);
            if within == 0 && n == self.page_size {
                self.write_full(sector, &data[done..done + n])?;
            } else {
                self.write(sector, |page| {
                    page[within..within + n].copy_from_slice(&data[done..done + n]);
                })?;
            }
            done += n;
        }
        Ok(())
    }

    /// The flush barrier: writes back every dirty page, then flushes the
    /// device. After `Ok(())`, everything written through the cache so
    /// far is as durable as the device makes it.
    pub fn flush(&mut self) -> BlockResult<()> {
        let timed = maxoid_obs::enabled();
        let start = timed.then(std::time::Instant::now);
        for i in 0..self.frames.len() {
            Self::writeback(&mut *self.dev, &mut self.frames[i], &mut self.stats)?;
        }
        self.dev.flush()?;
        self.stats.flushes += 1;
        maxoid_obs::counter_add("block.flushes", 1);
        if let Some(start) = start {
            maxoid_obs::observe("block.flush_us", start.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    /// Asserts the internal invariants: every resident frame is mapped to
    /// itself, the map holds nothing else, and the protected count
    /// matches the frames. Test-only.
    #[cfg(test)]
    fn validate(&self) {
        let mut resident = 0;
        for (i, f) in self.frames.iter().enumerate() {
            if let Some(s) = f.sector {
                resident += 1;
                assert_eq!(
                    self.map.get(&s),
                    Some(&i),
                    "frame {i} holds sector {s} but the map disagrees"
                );
                assert_ne!(f.state, SegState::Free, "resident frame {i} marked free");
            } else {
                assert_eq!(f.state, SegState::Free, "empty frame {i} still in a segment");
            }
        }
        assert_eq!(self.map.len(), resident, "map has entries for non-resident sectors");
        let prot = self.frames.iter().filter(|f| f.state == SegState::Protected).count();
        assert_eq!(prot, self.protected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultDevice, MemDevice};

    fn cache(pages: usize, ss: usize) -> PageCache {
        PageCache::new(Box::new(MemDevice::with_sector_size(ss)), pages)
    }

    #[test]
    fn read_your_writes_through_eviction() {
        let mut c = cache(2, 16);
        for s in 0..6u64 {
            c.write(s, |p| p.fill(s as u8)).unwrap();
        }
        // Only 2 frames: sectors 0..4 were evicted (written back dirty).
        assert!(c.stats().evictions >= 4);
        for s in 0..6u64 {
            let page = c.read(s).unwrap();
            assert!(page.iter().all(|&b| b == s as u8), "sector {s}");
        }
        c.validate();
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c = cache(4, 16);
        c.read(0).unwrap();
        c.read(0).unwrap();
        c.read(1).unwrap();
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn tokens_detect_eviction() {
        let mut c = cache(1, 16);
        let t0 = c.read(0).unwrap().token();
        assert!(c.check(t0));
        c.read(1).unwrap(); // evicts sector 0 (capacity 1)
        assert!(!c.check(t0), "evicted page's token must fail revalidation");
        // Re-reading sector 0 loads a *new* generation.
        let t0b = c.read(0).unwrap().token();
        assert_ne!(t0.generation, t0b.generation);
        assert!(c.check(t0b));
        assert!(!c.check(t0));
    }

    #[test]
    fn pinned_guard_is_zero_copy_and_blocks_eviction() {
        let mut c = cache(1, 16);
        c.write(3, |p| p.fill(7)).unwrap();
        let page = c.read(3).unwrap();
        // The guard borrows the cache: while `page` is alive, no &mut
        // method (eviction, write) can be called — enforced at compile
        // time. Consuming the bytes needs no copy:
        assert_eq!(page.data().iter().map(|&b| b as u64).sum::<u64>(), 7 * 16);
        assert_eq!(page.token().sector, 3);
    }

    #[test]
    fn flush_writes_back_dirty_pages() {
        let mut c = cache(4, 16);
        c.write(0, |p| p.fill(1)).unwrap();
        c.write(1, |p| p.fill(2)).unwrap();
        assert_eq!(c.device().len_sectors(), 0, "dirty pages start cache-only");
        c.flush().unwrap();
        assert_eq!(c.device().len_sectors(), 2);
        assert_eq!(c.stats().writeback_bytes, 32);
        // A second flush has nothing to write back.
        c.flush().unwrap();
        assert_eq!(c.stats().writeback_bytes, 32);
    }

    #[test]
    fn byte_ranges_span_pages() {
        let mut c = cache(3, 8);
        let data: Vec<u8> = (0..30).collect();
        c.write_bytes(5, &data).unwrap();
        let mut out = vec![0u8; 30];
        c.read_bytes(5, &mut out).unwrap();
        assert_eq!(out, data);
        // Unwritten neighbors read as zeros.
        let mut head = vec![9u8; 5];
        c.read_bytes(0, &mut head).unwrap();
        assert!(head.iter().all(|&b| b == 0));
    }

    #[test]
    fn discard_drops_without_writeback() {
        let mut c = cache(2, 16);
        c.write(0, |p| p.fill(0xAA)).unwrap();
        c.discard(0);
        c.flush().unwrap();
        // The dirty page never reached the device.
        assert_eq!(c.device().len_sectors(), 0);
        let page = c.read(0).unwrap();
        assert!(page.iter().all(|&b| b == 0));
        c.validate();
    }

    #[test]
    fn budget_is_fixed_at_construction() {
        let mut c = cache(8, 32);
        assert_eq!(c.budget_bytes(), 256);
        for s in 0..1000u64 {
            c.write(s, |p| p[0] = s as u8).unwrap();
        }
        // Device grew far past the budget; the frame array did not.
        assert_eq!(c.capacity(), 8);
        assert!(c.device().len_sectors() >= 992);
        c.validate();
    }

    #[test]
    fn write_padded_skips_the_load_and_zero_pads() {
        let mut c = cache(2, 16);
        // Put stale bytes on the device at sector 0, then drop them from
        // the cache so a naive partial write would have to fault them in.
        c.write_full(0, &[0x55u8; 16]).unwrap();
        c.flush().unwrap();
        c.drop_clean();
        let misses_before = c.stats().misses;
        c.write_padded(0, &[1, 2, 3]).unwrap();
        // The miss did not touch the device (no load), and the tail of
        // the page is zero, not the stale 0x55 bytes.
        assert_eq!(c.stats().misses, misses_before + 1);
        let page = c.read(0).unwrap();
        assert_eq!(&page.data()[..3], &[1, 2, 3]);
        assert!(page.data()[3..].iter().all(|&b| b == 0), "stale bytes past len must be zeroed");
    }

    #[test]
    fn rescan_larger_than_budget_keeps_a_protected_set() {
        // The scan-cliff regression: cyclically re-scanning a working set
        // 2x the cache used to hit 0% after the first pass (each fault
        // evicted the page the scan would want next lap). The segmented
        // policy promotes re-referenced pages into the protected segment,
        // which survives the scan.
        let mut c = cache(16, 32);
        let sectors = 32u64; // 2x budget
        for _ in 0..8 {
            for s in 0..sectors {
                c.read(s).unwrap();
            }
        }
        let s = c.stats();
        let warm_accesses = 7 * sectors; // passes after the cold one
        let hits_after_warmup = s.hits;
        assert!(
            hits_after_warmup as f64 / warm_accesses as f64 > 0.2,
            "steady-state hit rate must be non-zero under cyclic re-scan: {s:?}"
        );
        assert!(s.promotions > 0, "re-referenced pages must promote: {s:?}");
        c.validate();
    }

    #[test]
    fn hot_set_survives_one_sequential_scan() {
        // A small hot set is re-referenced until protected; one long
        // sequential scan (3x the cache) must not flush it.
        let mut c = cache(8, 32);
        for _ in 0..3 {
            for s in 0..4u64 {
                c.read(s).unwrap();
            }
        }
        let misses_before_scan = c.stats().misses;
        for s in 100..124u64 {
            c.read(s).unwrap();
        }
        let _ = misses_before_scan;
        // The hot set is still resident: re-reading it is all hits.
        let hits_before = c.stats().hits;
        for s in 0..4u64 {
            c.read(s).unwrap();
        }
        assert_eq!(c.stats().hits, hits_before + 4, "scan must not evict the protected hot set");
        c.validate();
    }

    #[test]
    fn read_error_does_not_alias_frames() {
        // Regression: a failed replacement read used to leave the victim
        // frame holding its *old* sector identity after the map entry was
        // removed; that frame's next eviction would `map.remove` another
        // frame's live mapping, silently orphaning a dirty page.
        let dev = FaultDevice::new(Box::new(MemDevice::with_sector_size(16)));
        let faults = dev.read_faults();
        let mut c = PageCache::new(Box::new(dev), 2);
        c.write(0, |p| p.fill(0xAA)).unwrap();
        c.write(1, |p| p.fill(0xBB)).unwrap();
        c.flush().unwrap();
        // Fault the replacement read: a victim is vacated, then the load
        // of sector 2 fails.
        faults.fail(2);
        assert!(c.read(2).is_err());
        c.validate(); // the bijection must survive the error
        faults.clear(2);
        // Dirty sector 0 through whichever frame it lands in now.
        c.write(0, |p| p.fill(0xCC)).unwrap();
        // Churn more evictions through the cache; with a stale frame
        // identity these would delete sector 0's live mapping and lose
        // the 0xCC bytes.
        c.read(3).unwrap();
        c.read(4).unwrap();
        c.validate();
        let page = c.read(0).unwrap();
        assert!(
            page.iter().all(|&b| b == 0xCC),
            "dirty page lost: a stale frame identity aliased the live mapping"
        );
    }

    #[test]
    fn writeback_error_keeps_the_dirty_page() {
        // An eviction whose write-back fails must leave the dirty page
        // resident and reachable; the error surfaces to the caller.
        let dev = FaultDevice::new(Box::new(MemDevice::with_sector_size(16)));
        let mut c = PageCache::new(Box::new(dev), 1);
        c.write(0, |p| p.fill(0x77)).unwrap();
        if let Some(f) = c.device_mut().as_fault_device() {
            f.fail_sector(0);
        }
        assert!(c.read(1).is_err(), "eviction needs a write-back that must fail");
        c.validate();
        let page = c.read(0).unwrap();
        assert!(page.iter().all(|&b| b == 0x77), "dirty page must survive a failed write-back");
    }
}
