//! Partitioned devices: several logical block devices multiplexed onto
//! one physical image, so a whole system (WAL + VFS spill + sqldb heap)
//! can cold-boot from a single file.
//!
//! The image is chunk-remapped rather than statically split: physical
//! space past a small on-device directory is carved into fixed-size
//! chunks, and each chunk is assigned to a `(partition, logical chunk)`
//! pair the first time that logical range is written. Partitions
//! therefore grow on demand and interleave without pre-sizing — the
//! moral equivalent of a flash translation layer, one level down from
//! the page cache.
//!
//! Layout: sector 0 is the header (magic, geometry); the next
//! `dir_sectors` sectors are the chunk directory (8-byte entries, one
//! per physical chunk, `0xFFFF` partition id = unassigned); data chunks
//! follow. Directory entries are written *before* the first data write
//! of their chunk, and a directory update rewrites every other byte of
//! its sector unchanged, so a torn directory write can at worst leak an
//! unassigned chunk — it can never remap live data. Durability of
//! partition *contents* is the owning layer's problem (the WAL has its
//! own superblock protocol; VFS spill and the row heap are volatile
//! scratch rebuilt from the WAL).

use crate::{BlockDevice, BlockError, BlockResult};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Partition id of the journal WAL.
pub const PART_WAL: u16 = 0;
/// Partition id of the VFS spill tier.
pub const PART_VFS: u16 = 1;
/// Partition id of the sqldb row heap.
pub const PART_HEAP: u16 = 2;

const MAGIC: &[u8; 4] = b"MXP1";
const HEADER_LEN: usize = 12;
const ENTRY_LEN: usize = 8;
const FREE_PART: u16 = 0xFFFF;

struct PartInner {
    dev: Box<dyn BlockDevice>,
    sector_size: usize,
    chunk_sectors: u64,
    dir_sectors: u64,
    /// partition → logical chunk → physical chunk.
    maps: HashMap<u16, HashMap<u64, u64>>,
    /// Next physical chunk to assign.
    next_phys: u64,
    /// Per-partition logical length high-water mark, chunk-granular.
    lens: HashMap<u16, u64>,
}

impl PartInner {
    fn entries_per_sector(&self) -> u64 {
        (self.sector_size / ENTRY_LEN) as u64
    }

    fn chunk_capacity(&self) -> u64 {
        self.dir_sectors * self.entries_per_sector()
    }

    fn data_start(&self) -> u64 {
        1 + self.dir_sectors
    }

    /// Maps `(part, logical sector)` to a physical sector, assigning a
    /// fresh chunk (directory entry first, durably ordered before any
    /// data lands in it) when `assign` is set.
    fn translate(&mut self, part: u16, sector: u64, assign: bool) -> BlockResult<Option<u64>> {
        let lc = sector / self.chunk_sectors;
        let off = sector % self.chunk_sectors;
        if let Some(&pc) = self.maps.get(&part).and_then(|m| m.get(&lc)) {
            return Ok(Some(self.data_start() + pc * self.chunk_sectors + off));
        }
        if !assign {
            return Ok(None);
        }
        let pc = self.next_phys;
        if pc >= self.chunk_capacity() {
            return Err(BlockError::Io(format!(
                "partition directory full: {} chunks of {} sectors",
                self.chunk_capacity(),
                self.chunk_sectors
            )));
        }
        self.write_dir_entry(pc, part, lc)?;
        self.next_phys += 1;
        self.maps.entry(part).or_default().insert(lc, pc);
        Ok(Some(self.data_start() + pc * self.chunk_sectors + off))
    }

    fn write_dir_entry(&mut self, pc: u64, part: u16, lc: u64) -> BlockResult<()> {
        let eps = self.entries_per_sector();
        let dir_sector = 1 + pc / eps;
        let at = (pc % eps) as usize * ENTRY_LEN;
        let mut buf = vec![0u8; self.sector_size];
        self.dev.read_sector(dir_sector, &mut buf)?;
        buf[at..at + 2].copy_from_slice(&part.to_le_bytes());
        let lc32 = u32::try_from(lc).map_err(|_| BlockError::Io("chunk index overflow".into()))?;
        buf[at + 2..at + 6].copy_from_slice(&lc32.to_le_bytes());
        buf[at + 6..at + 8].fill(0);
        self.dev.write_sector(dir_sector, &buf)
    }
}

/// The shared partition table over one physical device. Cheap to clone;
/// all handles serialize on one internal mutex (a leaf lock — nothing is
/// acquired under it).
#[derive(Clone)]
pub struct PartitionTable {
    inner: Arc<Mutex<PartInner>>,
}

impl std::fmt::Debug for PartitionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("PartitionTable")
            .field("chunk_sectors", &inner.chunk_sectors)
            .field("dir_sectors", &inner.dir_sectors)
            .field("chunks_used", &inner.next_phys)
            .finish()
    }
}

impl PartitionTable {
    /// Formats `dev` with a fresh partition table: `chunk_sectors`
    /// sectors per chunk, a directory of `dir_sectors` sectors (bounding
    /// total capacity at `dir_sectors × (sector_size/8)` chunks).
    pub fn create(
        dev: Box<dyn BlockDevice>,
        chunk_sectors: u64,
        dir_sectors: u64,
    ) -> BlockResult<Self> {
        let mut dev = dev;
        let ss = dev.sector_size();
        assert!(
            ss >= HEADER_LEN && ss >= 2 * ENTRY_LEN,
            "partitioned devices need sectors of at least 16 bytes"
        );
        assert!(chunk_sectors > 0 && dir_sectors > 0);
        let mut header = vec![0u8; ss];
        header[..4].copy_from_slice(MAGIC);
        header[4..8].copy_from_slice(&(ss as u32).to_le_bytes());
        header[8..10].copy_from_slice(&(chunk_sectors as u16).to_le_bytes());
        header[10..12].copy_from_slice(&(dir_sectors as u16).to_le_bytes());
        dev.write_sector(0, &header)?;
        // Free directory entries carry the 0xFFFF partition id, so the
        // directory must be formatted: all-zero entries would read as
        // partition 0, chunk 0.
        let blank = vec![0xFFu8; ss];
        for s in 1..=dir_sectors {
            dev.write_sector(s, &blank)?;
        }
        dev.flush()?;
        let inner = PartInner {
            dev,
            sector_size: ss,
            chunk_sectors,
            dir_sectors,
            maps: HashMap::new(),
            next_phys: 0,
            lens: HashMap::new(),
        };
        Ok(PartitionTable { inner: Arc::new(Mutex::new(inner)) })
    }

    /// Opens an existing partitioned image, rebuilding the chunk maps
    /// from the on-device directory (the cold-boot path).
    pub fn open(dev: Box<dyn BlockDevice>) -> BlockResult<Self> {
        let mut dev = dev;
        let ss = dev.sector_size();
        let mut header = vec![0u8; ss];
        dev.read_sector(0, &mut header)?;
        if &header[..4] != MAGIC {
            return Err(BlockError::Io("not a maxoid partitioned image".into()));
        }
        let stored_ss = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        if stored_ss != ss {
            return Err(BlockError::Io(format!(
                "image formatted with {stored_ss}-byte sectors, device has {ss}"
            )));
        }
        let chunk_sectors = u16::from_le_bytes(header[8..10].try_into().unwrap()) as u64;
        let dir_sectors = u16::from_le_bytes(header[10..12].try_into().unwrap()) as u64;
        if chunk_sectors == 0 || dir_sectors == 0 {
            return Err(BlockError::Io("corrupt partition header geometry".into()));
        }
        let mut maps: HashMap<u16, HashMap<u64, u64>> = HashMap::new();
        let mut lens: HashMap<u16, u64> = HashMap::new();
        let mut next_phys = 0u64;
        let eps = (ss / ENTRY_LEN) as u64;
        let mut buf = vec![0u8; ss];
        for ds in 0..dir_sectors {
            dev.read_sector(1 + ds, &mut buf)?;
            for e in 0..eps as usize {
                let at = e * ENTRY_LEN;
                let part = u16::from_le_bytes(buf[at..at + 2].try_into().unwrap());
                if part == FREE_PART {
                    continue;
                }
                let lc = u32::from_le_bytes(buf[at + 2..at + 6].try_into().unwrap()) as u64;
                let pc = ds * eps + e as u64;
                maps.entry(part).or_default().insert(lc, pc);
                next_phys = next_phys.max(pc + 1);
                let len = lens.entry(part).or_default();
                *len = (*len).max((lc + 1) * chunk_sectors);
            }
        }
        let inner =
            PartInner { dev, sector_size: ss, chunk_sectors, dir_sectors, maps, next_phys, lens };
        Ok(PartitionTable { inner: Arc::new(Mutex::new(inner)) })
    }

    /// Opens the image when it already carries a partition table,
    /// formats it otherwise — the single entry point for "boot from this
    /// device file whether or not it has been used before".
    pub fn open_or_create(
        dev: Box<dyn BlockDevice>,
        chunk_sectors: u64,
        dir_sectors: u64,
    ) -> BlockResult<Self> {
        let mut dev = dev;
        if dev.len_sectors() > 0 {
            let ss = dev.sector_size();
            let mut header = vec![0u8; ss];
            dev.read_sector(0, &mut header)?;
            if &header[..4] == MAGIC {
                return Self::open(dev);
            }
        }
        Self::create(dev, chunk_sectors, dir_sectors)
    }

    /// A [`BlockDevice`] view of one partition.
    pub fn handle(&self, part: u16) -> PartitionHandle {
        assert_ne!(part, FREE_PART, "0xFFFF is the free marker, not a partition id");
        PartitionHandle { part, inner: Arc::clone(&self.inner) }
    }

    /// Physical chunks assigned so far (capacity diagnostics).
    pub fn chunks_used(&self) -> u64 {
        self.inner.lock().unwrap().next_phys
    }
}

/// One partition of a [`PartitionTable`], usable anywhere a
/// [`BlockDevice`] is.
pub struct PartitionHandle {
    part: u16,
    inner: Arc<Mutex<PartInner>>,
}

impl std::fmt::Debug for PartitionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionHandle").field("part", &self.part).finish()
    }
}

impl BlockDevice for PartitionHandle {
    fn sector_size(&self) -> usize {
        self.inner.lock().unwrap().sector_size
    }

    fn len_sectors(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.lens.get(&self.part).copied().unwrap_or(0)
    }

    fn read_sector(&mut self, sector: u64, buf: &mut [u8]) -> BlockResult<()> {
        let mut inner = self.inner.lock().unwrap();
        if buf.len() != inner.sector_size {
            return Err(BlockError::BadBufferLen { expected: inner.sector_size, got: buf.len() });
        }
        match inner.translate(self.part, sector, false)? {
            Some(phys) => inner.dev.read_sector(phys, buf),
            None => {
                // Unassigned chunk: thin provisioning reads as zeros.
                buf.fill(0);
                Ok(())
            }
        }
    }

    fn write_sector(&mut self, sector: u64, buf: &[u8]) -> BlockResult<()> {
        let mut inner = self.inner.lock().unwrap();
        if buf.len() != inner.sector_size {
            return Err(BlockError::BadBufferLen { expected: inner.sector_size, got: buf.len() });
        }
        let phys = inner
            .translate(self.part, sector, true)?
            .expect("assigning translate always yields a physical sector");
        inner.dev.write_sector(phys, buf)?;
        let len = inner.lens.entry(self.part).or_default();
        *len = (*len).max(sector + 1);
        Ok(())
    }

    fn flush(&mut self) -> BlockResult<()> {
        // One physical device underneath: the barrier is global.
        self.inner.lock().unwrap().dev.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileDevice, MemDevice};

    #[test]
    fn partitions_are_isolated() {
        let table =
            PartitionTable::create(Box::new(MemDevice::with_sector_size(32)), 2, 2).unwrap();
        let mut a = table.handle(PART_WAL);
        let mut b = table.handle(PART_VFS);
        a.write_sector(0, &[1u8; 32]).unwrap();
        b.write_sector(0, &[2u8; 32]).unwrap();
        a.write_sector(5, &[3u8; 32]).unwrap();
        let mut buf = vec![0u8; 32];
        a.read_sector(0, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 32]);
        b.read_sector(0, &mut buf).unwrap();
        assert_eq!(buf, vec![2u8; 32]);
        a.read_sector(5, &mut buf).unwrap();
        assert_eq!(buf, vec![3u8; 32]);
        // Unwritten ranges read as zeros in both partitions.
        b.read_sector(5, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
        assert!(a.len_sectors() >= 6);
        assert!(b.len_sectors() >= 1 && b.len_sectors() <= 2);
    }

    #[test]
    fn reopen_rebuilds_the_chunk_maps() {
        let mut file = FileDevice::temp_with("part-reopen", 32).unwrap();
        // Keep the backing file across the device drop for the reopen.
        file.set_delete_on_drop(false);
        let path = file.path().to_path_buf();
        {
            let table = PartitionTable::open_or_create(Box::new(file), 2, 2).unwrap();
            let mut a = table.handle(PART_WAL);
            let mut b = table.handle(PART_HEAP);
            a.write_sector(3, &[7u8; 32]).unwrap();
            b.write_sector(0, &[9u8; 32]).unwrap();
            a.flush().unwrap();
        }
        let mut re = FileDevice::open_with(&path, 32).unwrap();
        re.set_delete_on_drop(true);
        let table = PartitionTable::open_or_create(Box::new(re), 4, 4).unwrap();
        // Geometry comes from the image, not the open_or_create args.
        let mut a = table.handle(PART_WAL);
        let mut b = table.handle(PART_HEAP);
        let mut buf = vec![0u8; 32];
        a.read_sector(3, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 32]);
        b.read_sector(0, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; 32]);
        a.read_sector(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn directory_overflow_is_a_clean_error() {
        // 16 bytes/sector → 2 entries/sector → 2 chunks with 1 dir sector.
        let table =
            PartitionTable::create(Box::new(MemDevice::with_sector_size(16)), 1, 1).unwrap();
        let mut h = table.handle(PART_WAL);
        h.write_sector(0, &[1u8; 16]).unwrap();
        h.write_sector(1, &[2u8; 16]).unwrap();
        assert!(matches!(h.write_sector(2, &[3u8; 16]), Err(BlockError::Io(_))));
        // Existing data is untouched by the failed growth.
        let mut buf = vec![0u8; 16];
        h.read_sector(0, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 16]);
    }
}
