//! The "Securing Dropbox" use case (paper §7.1).
//!
//! Dropbox stores the user's files on external storage and automatically
//! syncs any change back to the server — on stock Android that means no
//! privacy (any app reads the files) and no integrity (any app's edit is
//! silently uploaded). With a two-line Maxoid manifest (private directory
//! plus VIEW filter), editors run as delegates, the sync loop only ever
//! sees clean state, and the user explicitly commits the edits they want.
//!
//! Run with: `cargo run -p maxoid-examples --bin dropbox_delegation`
//!
//! Pass `--trace` (or set `MAXOID_TRACE=1`) to record the Maxoid run with
//! `maxoid-obs` and render the full span tree of the delegation — kernel
//! syscalls, union-fs copy-ups, cow-proxy rewrites and the journal all
//! nested under the delegation lifecycle spans.

use maxoid::manifest::MaxoidManifest;
use maxoid::MaxoidSystem;
use maxoid_apps::{install_viewer, AdobeReader, Dropbox, FileRef};
use maxoid_vfs::Mode;

fn main() {
    let trace = std::env::args().any(|a| a == "--trace")
        || std::env::var("MAXOID_TRACE").map(|v| v == "1").unwrap_or(false);
    println!("=== Stock Android ===");
    stock_android();
    println!("\n=== Maxoid ===");
    if trace {
        maxoid_obs::enable();
    }
    maxoid_mode();
    if trace {
        maxoid_obs::disable();
        let snap = maxoid_obs::take_snapshot();
        println!("\n=== Trace: span tree of the delegation ===");
        print!("{}", snap.render_span_tree());
        println!("\n=== Trace: counters ===");
        for (name, value) in &snap.counters {
            println!("  {name} = {value}");
        }
    }
}

fn stock_android() {
    let dropbox = Dropbox::default();
    let mut sys = MaxoidSystem::boot().expect("boot");
    sys.kernel.net.publish("dropbox.example", "notes.txt", b"original notes".to_vec());
    // No Maxoid manifest: stock behaviour.
    sys.install(&dropbox.pkg, vec![], MaxoidManifest::new()).expect("install");
    sys.install("com.rogue", vec![], MaxoidManifest::new()).expect("install");

    let dpid = sys.launch(&dropbox.pkg).expect("launch");
    let path = dropbox.sync_down(&mut sys, dpid, "notes.txt").expect("sync down");
    println!("dropbox synced notes.txt to {path}");

    // Privacy failure: a rogue app reads the file.
    let rogue = sys.launch("com.rogue").expect("launch rogue");
    let stolen = sys.kernel.read(rogue, &path).expect("rogue read succeeds on stock");
    println!("rogue app read {} bytes of the user's file (no privacy)", stolen.len());

    // Integrity failure: the rogue app corrupts it and sync uploads it.
    sys.kernel.write(rogue, &path, b"corrupted!!", Mode::PUBLIC).expect("rogue write");
    let uploaded = dropbox.sync_up(&mut sys, dpid).expect("sync");
    println!("dropbox silently uploaded {uploaded:?} (no integrity)");
}

fn maxoid_mode() {
    let dropbox = Dropbox::default();
    let reader = AdobeReader::default();
    // Journaled boot so the trace also shows the WAL group-commit spans.
    let mut sys =
        MaxoidSystem::boot_journaled(maxoid_journal::JournalHandle::with_batch(1)).expect("boot");
    sys.kernel.net.publish("dropbox.example", "notes.txt", b"original notes".to_vec());
    // The paper's fix: declare the storage dir private, VIEW = delegate.
    sys.install(&dropbox.pkg, vec![], dropbox.maxoid_manifest()).expect("install");
    install_viewer(&mut sys, &reader.pkg).expect("install viewer");
    sys.install("com.rogue", vec![], MaxoidManifest::new()).expect("install");

    let dpid = sys.launch(&dropbox.pkg).expect("launch");
    let path = dropbox.sync_down(&mut sys, dpid, "notes.txt").expect("sync down");
    println!("dropbox synced notes.txt into its private directory");

    // Privacy restored: the rogue app cannot even see the file.
    let rogue = sys.launch("com.rogue").expect("launch rogue");
    assert!(!sys.kernel.exists(rogue, &path));
    println!("rogue app sees nothing at {path}");

    // The user opens the file: the viewer runs as Dropbox's delegate.
    let viewer = dropbox.open_file(&mut sys, dpid, "notes.txt").expect("open").pid();
    println!("viewer runs {}", sys.kernel.process(viewer).unwrap().ctx);
    // The viewer reads and edits the file; side effects included.
    reader.open(&mut sys, viewer, &FileRef::Path(path.clone())).expect("view");
    sys.kernel.write(viewer, &path, b"edited notes v2", Mode::PUBLIC).expect("edit");

    // Integrity kept: the sync loop sees only the clean copy.
    let uploaded = dropbox.sync_up(&mut sys, dpid).expect("sync");
    assert!(uploaded.is_empty());
    println!("sync loop uploaded nothing (delegate edits live in Vol)");

    // The user inspects Vol(Dropbox) and commits the intended edit.
    for entry in sys.volatile_files(&dropbox.pkg).expect("vol") {
        println!("  Vol(dropbox): {} ({} bytes)", entry.rel, entry.size);
    }
    dropbox.upload_from_tmp(&mut sys, dpid, "notes.txt").expect("manual upload");
    println!("user explicitly uploaded the edit from EXTDIR/tmp");

    // Then discards everything else.
    let removed = sys.clear_vol(&dropbox.pkg).expect("clear");
    println!("Clear-Vol removed {removed} leftover volatile files");
    assert_eq!(sys.kernel.http_get(dpid, "dropbox.example/notes.txt").unwrap(), b"edited notes v2");
    println!("server now holds the user-approved edit — and only that");
}
