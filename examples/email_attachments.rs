//! The "Securing Email attachments" use case (paper §7.1), plus the
//! launcher gestures and the EBookDroid persistent-private-state patch.
//!
//! Run with: `cargo run -p maxoid-examples --bin email_attachments`

use maxoid::MaxoidSystem;
use maxoid_apps::{install_observer, install_viewer, EBookDroid, Email};
use maxoid_vfs::vpath;

fn main() {
    let email = Email::default();
    let viewer = EBookDroid::default();
    let mut sys = MaxoidSystem::boot().expect("boot");
    sys.install(&email.pkg, vec![], email.maxoid_manifest()).expect("install email");
    install_viewer(&mut sys, &viewer.pkg).expect("install viewer");
    let observer = install_observer(&mut sys).expect("install observer");

    // --- An attachment arrives -----------------------------------------
    let epid = sys.launch(&email.pkg).expect("launch");
    let att = email
        .receive_attachment(&mut sys, epid, "offer_letter.pdf", b"salary details inside")
        .expect("receive");
    println!("email stored attachment privately at {att}");

    // --- VIEW: the viewer becomes email's delegate ----------------------
    let vpid = email.view_attachment(&mut sys, epid, &att).expect("view").pid();
    println!("viewer runs {}", sys.kernel.process(vpid).unwrap().ctx);
    viewer.open(&mut sys, vpid, &att).expect("open");
    println!("viewer opened the attachment and recorded it in pPriv (the 45-line patch)");

    // --- The recents list persists across delegate sessions -------------
    // The viewer runs normally in between (and changes its own state)...
    let normal = sys.launch(&viewer.pkg).expect("normal run");
    let own = vpath("/data/data/org.ebookdroid/my_book.pdf");
    sys.kernel.write(normal, &own, b"own book", maxoid_vfs::Mode::PRIVATE).expect("write own");
    viewer.open(&mut sys, normal, &own).expect("open own");
    let normal_recents = viewer.recent_files(&sys, normal).expect("recents");
    println!("normal-run recents: {normal_recents:?}  (no email attachments: S1)");
    assert!(!normal_recents.iter().any(|r| r.contains("offer_letter")));

    // ...then runs for email again: the attachment is still in recents.
    let vpid2 = sys.launch_as_delegate(&viewer.pkg, &email.pkg).expect("delegate again");
    let recents = viewer.recent_files(&sys, vpid2).expect("recents");
    println!("email-delegate recents: {recents:?}");
    assert!(recents.iter().any(|r| r.contains("offer_letter")));

    // --- The launcher gesture: start Camera as email's delegate ---------
    sys.install("camera", vec![], maxoid::MaxoidManifest::new()).expect("install camera");
    let cam = sys.launch_as_delegate("camera", &email.pkg).expect("launcher gesture");
    println!("launcher started camera {}", sys.kernel.process(cam).unwrap().ctx);
    // A photo it takes lands in Vol(email), not on the public SD card.
    sys.kernel
        .write(cam, &vpath("/storage/sdcard/DCIM/for_email.jpg"), b"jpeg", maxoid_vfs::Mode::PUBLIC)
        .expect("photo");
    let opid = sys.launch(&observer).expect("observer");
    assert!(!sys.kernel.exists(opid, &vpath("/storage/sdcard/DCIM/for_email.jpg")));
    assert!(sys.kernel.exists(epid, &vpath("/storage/sdcard/tmp/DCIM/for_email.jpg")));
    println!("the photo is visible only to email (under EXTDIR/tmp)");

    // --- Email commits the photo, making it public by choice ------------
    sys.commit_volatile_file(&email.pkg, "DCIM/for_email.jpg").expect("commit");
    let opid2 = sys.launch(&observer).expect("observer");
    assert!(sys.kernel.exists(opid2, &vpath("/storage/sdcard/DCIM/for_email.jpg")));
    println!("after commit, the photo is public — an explicit declassification");

    // --- Clean up the rest ----------------------------------------------
    let removed = sys.clear_vol(&email.pkg).expect("clear-vol");
    println!("Clear-Vol(email) discarded {removed} remaining volatile files");
}
