//! Regenerates Table 2 of the paper: the Aufs mount points and branches
//! for an initiator `A` and a delegate `B^A`, where A and B each declare
//! `EXTDIR/data/<pkg>` as a private directory on external storage.
//!
//! Run with: `cargo run -p maxoid-examples --bin mount_table`

use maxoid::manifest::MaxoidManifest;
use maxoid::{BranchManager, MaxoidSystem};

fn main() {
    let sys = MaxoidSystem::boot().expect("boot");
    let ma = MaxoidManifest::new().private_ext_dir("data/A");
    let mb = MaxoidManifest::new().private_ext_dir("data/B");
    sys.install("A", vec![], ma.clone()).expect("install A");
    sys.install("B", vec![], mb.clone()).expect("install B");

    let bm = sys.branch_manager();

    println!("Table 2 — Aufs mount points (branches listed top priority first,");
    println!("'(rw)' marks the writable branch; all others are read-only)\n");

    println!("Mount table for initiator A:");
    println!("{:-<70}", "");
    print!("{}", BranchManager::render_mount_table(&bm.initiator_namespace("A", &ma).expect("ns")));

    println!("\nMount table for delegate B^A:");
    println!("{:-<70}", "");
    print!(
        "{}",
        BranchManager::render_mount_table(&bm.delegate_namespace("B", &mb, "A", &ma).expect("ns"))
    );

    println!("\nPaper mapping (backing dir -> Table 2 branch name):");
    println!("  /backing/ext/pub            -> pub");
    println!("  /backing/ext/apps/A/data/A  -> A/data/A");
    println!("  /backing/ext/apps/A/tmp     -> A/tmp");
    println!("  /backing/ext/apps/B/data/B  -> B/data/B");
    println!("  /backing/ext/deleg/B--A/... -> B-A/data/B");
    println!("\nInternal mounts (beyond Table 2): the delegate's nPriv union at");
    println!("/data/data/B, its pPriv bind at /data/data/ppriv/B, and A's private");
    println!("directory exposed at /data/data/A with writes redirected to Vol(A).");
}
