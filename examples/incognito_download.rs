//! The "Enhancing Browser's incognito mode" use case (paper §7.1).
//!
//! Stock browsers keep incognito *browsing* off the disk, but a download
//! from an incognito tab still lands on external storage and in the
//! Downloads provider. Maxoid's one-line patch routes incognito downloads
//! to the browser's volatile state; viewing the file starts the viewer as
//! a delegate; Clear-Vol plus Clear-Priv erase every trace — including
//! the traces *other apps* left while handling the download, which no
//! browser-only fix could do.
//!
//! Run with: `cargo run -p maxoid-examples --bin incognito_download`

use maxoid::manifest::MaxoidManifest;
use maxoid::{MaxoidSystem, QueryArgs, Uri};
use maxoid_apps::{install_observer, install_viewer, AdobeReader, Browser, FileRef};
use maxoid_vfs::vpath;

fn main() {
    let browser = Browser::default();
    let reader = AdobeReader::default();
    let mut sys = MaxoidSystem::boot().expect("boot");
    sys.kernel.net.publish("files.example", "leaked_memo.pdf", b"internal memo".to_vec());
    sys.install(&browser.pkg, vec![], MaxoidManifest::new()).expect("install browser");
    install_viewer(&mut sys, &reader.pkg).expect("install viewer");
    let observer = install_observer(&mut sys).expect("install observer");

    let bpid = sys.launch(&browser.pkg).expect("launch");

    // --- An incognito-tab download ------------------------------------
    let id = browser
        .download(&mut sys, bpid, "files.example/leaked_memo.pdf", "leaked_memo.pdf", true)
        .expect("enqueue");
    println!("incognito download #{id} enqueued (volatile=true — the 1-line patch)");
    sys.pump_downloads().expect("worker");
    let note = sys.download_notifications().remove(0);
    println!("download complete: {} (volatile for {:?})", note.title, note.initiator);

    // Publicly invisible: no file, no provider record.
    let opid = sys.launch(&observer).expect("observer");
    assert!(!sys.kernel.exists(opid, &vpath("/storage/sdcard/Download/leaked_memo.pdf")));
    let dl_uri = Uri::parse("content://downloads/my_downloads").unwrap();
    let public_rows = sys.cp_query(opid, &dl_uri, &QueryArgs::default()).unwrap().rows.len();
    println!("observer sees {public_rows} download records and no file");
    assert_eq!(public_rows, 0);

    // The browser itself sees it through its volatile view.
    let (pub_n, vol_n) = browser.downloads_list(&mut sys, bpid).expect("list");
    println!("browser's download list: {pub_n} public + {vol_n} incognito");

    // --- Tapping the notification opens the viewer as a delegate ------
    let viewer = browser.open_download_notification(&mut sys, bpid, &note).expect("open").pid();
    println!("viewer runs {}", sys.kernel.process(viewer).unwrap().ctx);
    // The viewer can open the downloaded file through its view (the
    // volatile file appears at the normal path for delegates).
    let data = sys
        .kernel
        .read(viewer, &vpath("/storage/sdcard/Download/leaked_memo.pdf"))
        .expect("delegate reads the incognito download");
    // And it leaves its usual traces (recent list, SD copy) — confined.
    reader
        .open(&mut sys, viewer, &FileRef::Content { name: "leaked_memo.pdf".into(), data })
        .expect("view");
    println!("viewer processed the file, leaving its usual traces (confined)");

    // --- Closing the incognito session erases everything --------------
    let removed = sys.clear_vol(&browser.pkg).expect("clear-vol");
    let forks = sys.clear_priv(&browser.pkg).expect("clear-priv");
    println!("Clear-Vol removed {removed} files; Clear-Priv dropped {forks} delegate forks");
    assert!(sys
        .open_download(Some(&browser.pkg), &vpath("/storage/sdcard/Download/leaked_memo.pdf"))
        .is_err());
    let (pub_n, vol_n) = browser.downloads_list(&mut sys, bpid).expect("list");
    assert_eq!((pub_n, vol_n), (0, 0));
    println!("no trace of the incognito download remains anywhere");

    // --- Contrast: a normal download is public ------------------------
    browser
        .download(&mut sys, bpid, "files.example/leaked_memo.pdf", "normal.pdf", false)
        .expect("enqueue");
    sys.pump_downloads().expect("worker");
    let opid = sys.launch(&observer).expect("observer");
    assert!(sys.kernel.exists(opid, &vpath("/storage/sdcard/Download/normal.pdf")));
    println!("a normal-tab download is public, as on stock Android");
}
