//! Crash-consistent volatile-state commit: the journal in action.
//!
//! An editor invokes a cleaner app as its delegate. The cleaner's writes
//! — a provider row and a file — land in the editor's volatile state
//! `Vol(editor)` (paper §3.3). The editor then commits the row and the
//! file atomically via `commit_vol`, which brackets the whole plan in
//! one journal transaction.
//!
//! We then pull the power cord at every stage: recovery from a log
//! truncated *inside* the commit transaction yields the untouched
//! all-volatile state; only the full log yields the committed state.
//! There is no log prefix from which anything in between can emerge.
//!
//! Act 2 repeats the lifecycle on a **file-backed block device**: the
//! WAL's frames live in sectors behind a page cache, the process is
//! dropped, and `boot_journaled` cold-starts the whole system — files,
//! catalogs, provider rows — from nothing but the device file, reporting
//! the boot latency.
//!
//! Run with: `cargo run -p maxoid-examples --bin crash_recovery`

use maxoid::durability::recover;
use maxoid::manifest::MaxoidManifest;
use maxoid::{Caller, ContentValues, MaxoidSystem, QueryArgs, Uri, VolCommitPlan};
use maxoid_block::FileDevice;
use maxoid_journal::{crash_prefix, record_boundaries, BlockStorage, JournalHandle};
use maxoid_providers::provider::ContentProvider;
use maxoid_providers::UserDictionaryProvider;
use maxoid_vfs::{vpath, Mode};

fn main() {
    // Boot on a journal that flushes every record (batch size 1), so
    // every record boundary is a place the power cord can be pulled.
    let journal = JournalHandle::with_batch(1);
    let sys = MaxoidSystem::boot_journaled(journal.clone()).expect("boot");
    sys.install("editor", vec![], MaxoidManifest::new()).expect("install editor");
    sys.install("cleaner", vec![], MaxoidManifest::new()).expect("install cleaner");

    // The editor adds a word publicly; the cleaner (as delegate) adds a
    // draft row and writes a report file — both land in Vol(editor).
    let words = Uri::parse("content://user_dictionary/words").unwrap();
    let editor = Caller::normal("editor");
    let delegate = Caller::delegate("cleaner", "editor");
    sys.resolver
        .insert(&editor, &words, &ContentValues::new().put("word", "hello").put("frequency", 10))
        .expect("public insert");
    let draft = sys
        .resolver
        .insert(&delegate, &words, &ContentValues::new().put("word", "draft"))
        .expect("delegate insert");
    let cleaner = sys.launch_as_delegate("cleaner", "editor").expect("launch delegate");
    sys.kernel
        .write(cleaner, &vpath("/storage/sdcard/report.txt"), b"cleaned", Mode::PUBLIC)
        .expect("delegate write");
    journal.flush().expect("flush");
    let pre_commit_len = journal.bytes().len();
    println!("volatile state built: row {draft}, file report.txt ({pre_commit_len} log bytes)");

    // The editor commits *everything* — file and row — atomically, and
    // discards whatever volatile state remains.
    let external: Vec<String> = sys
        .volatile_files("editor")
        .expect("volatile list")
        .into_iter()
        .filter(|e| !e.internal)
        .map(|e| e.rel)
        .collect();
    let plan = VolCommitPlan {
        external,
        provider_rows: vec![("user_dictionary".into(), "words".into(), draft.id().unwrap())],
        discard_rest: true,
        ..VolCommitPlan::default()
    };
    let outcome = sys.commit_vol("editor", &plan).expect("commit_vol");
    println!("commit_vol: {} row(s) committed, volatile state cleared", outcome.rows_committed);

    // --- Pull the cord at every boundary inside the commit txn --------
    let log = journal.bytes();
    let boundaries = record_boundaries(&log);
    let inside: Vec<usize> =
        boundaries.iter().copied().filter(|&b| b >= pre_commit_len && b < log.len()).collect();
    println!("\ncommit transaction spans {} records; crashing inside each of them:", inside.len());
    for &b in &inside {
        let mut rec = recover(&crash_prefix(&log, b)).expect("recover");
        let mut dict = UserDictionaryProvider::from_recovered(rec.take_db("user_dictionary"));
        let public = dict
            .query(&Caller::normal("observer"), &words, &QueryArgs::default())
            .expect("query")
            .rows
            .len();
        let volatile = dict
            .query(&Caller::normal("editor"), &words.as_volatile(), &QueryArgs::default())
            .expect("query")
            .rows
            .len();
        let file = rec.vfs.with_store(|s| s.stat(&vpath("/backing/ext/pub/report.txt")).is_ok());
        assert!((public, volatile, file) == (1, 1, false), "crash at {b} must be all-volatile");
    }
    println!("  every mid-commit crash recovers the all-volatile state");
    println!("  (1 public word, 1 uncommitted volatile word, no committed report.txt)");

    // --- The full log: the commit landed ------------------------------
    let mut rec = recover(&log).expect("recover");
    let mut dict = UserDictionaryProvider::from_recovered(rec.take_db("user_dictionary"));
    let public =
        dict.query(&Caller::normal("observer"), &words, &QueryArgs::default()).expect("query").rows;
    let file = rec.vfs.with_store(|s| s.stat(&vpath("/backing/ext/pub/report.txt")).is_ok());
    assert!(public.iter().any(|r| format!("{r:?}").contains("draft")));
    assert!(file);
    println!("\nfull log recovers the committed state:");
    println!("  {} public words (draft included), report.txt promoted to public", public.len());
    println!("\nall-or-nothing: no crash point yields a half-committed hybrid");

    cold_start_from_file();
}

/// Act 2: the journal on a real file. Build state, drop the process,
/// then cold-boot a brand-new system from the device file alone.
fn cold_start_from_file() {
    let path = std::env::temp_dir().join(format!("maxoid-coldstart-{}.blk", std::process::id()));
    let _ = std::fs::remove_file(&path);
    println!("\n--- cold start from a file-backed device ({}) ---", path.display());

    // First life: every record flushed through the block device.
    let dev = FileDevice::create(&path).expect("create device");
    let journal = JournalHandle::with_storage(
        Box::new(BlockStorage::open(Box::new(dev), 16).expect("open")),
        1,
    );
    let sys = MaxoidSystem::boot_journaled(journal.clone()).expect("boot");
    sys.install("editor", vec![], MaxoidManifest::new()).expect("install");
    let words = Uri::parse("content://user_dictionary/words").unwrap();
    let editor = Caller::normal("editor");
    for (w, f) in [("persistent", 1), ("storage", 2), ("rocks", 3)] {
        sys.resolver
            .insert(&editor, &words, &ContentValues::new().put("word", w).put("frequency", f))
            .expect("insert");
    }
    let pid = sys.launch("editor").expect("launch");
    sys.kernel
        .write(pid, &vpath("/storage/sdcard/novel.txt"), &vec![b'x'; 16 * 1024], Mode::PUBLIC)
        .expect("write");
    journal.flush().expect("flush");
    let log_bytes = journal.bytes().len();
    drop(sys);
    drop(journal);
    println!("first life journaled {log_bytes} bytes; process gone, file remains");

    // Second life: reopen the device, cold-boot, measure.
    let dev = FileDevice::open(&path).expect("reopen device");
    let journal = JournalHandle::with_storage(
        Box::new(BlockStorage::open(Box::new(dev), 16).expect("open")),
        1,
    );
    let t0 = std::time::Instant::now();
    let sys = MaxoidSystem::boot_journaled(journal).expect("cold boot");
    let boot = t0.elapsed();
    sys.install("editor", vec![], MaxoidManifest::new()).expect("re-install");
    let rows = sys
        .resolver
        .query(&Caller::normal("observer"), &words, &QueryArgs::default())
        .expect("query")
        .rows
        .len();
    // The public write went through the editor's mount namespace into
    // the external-public branch; read it back from the recovered store.
    let novel = sys.kernel.vfs().with_store(|s| s.read(&vpath("/backing/ext/pub/novel.txt")));
    assert_eq!(rows, 3, "all three words must survive the reboot");
    assert_eq!(novel.expect("novel.txt must survive").len(), 16 * 1024);
    println!(
        "cold boot in {:.2?}: {} provider rows and a 16 KiB file recovered from {} log bytes",
        boot, rows, log_bytes
    );
    let _ = std::fs::remove_file(&path);
}
