//! Regenerates Table 1 of the paper: state left after apps process their
//! target data — then re-runs every operation under Maxoid and shows the
//! confinement.
//!
//! Run with: `cargo run -p maxoid-examples --bin leak_study`

use maxoid::manifest::{InvocationFilter, MaxoidManifest};
use maxoid::MaxoidSystem;
use maxoid_apps::{
    audit, compute, install_observer, install_viewer, AdobeReader, BarcodeScanner, CamScanner,
    CameraMx, FileRef, KingsoftOffice, TraceLocation, VPlayer, ACTION_VIEW,
};
use maxoid_vfs::{vpath, Mode};

/// One Table 1 row: run the operation, audit, print traces.
struct Row {
    category: &'static str,
    app: &'static str,
    operation: &'static str,
}

fn main() {
    println!("Reproducing Table 1: state left after apps process their target data\n");
    println!(
        "{:<10} {:<18} {:<22} {:>8} {:>8}",
        "Category", "App", "Operation", "private", "public"
    );
    println!("{}", "-".repeat(72));

    let rows = [
        Row { category: "Document", app: "Adobe Reader", operation: "open a file" },
        Row { category: "Document", app: "Kingsoft Office", operation: "open a file" },
        Row { category: "Scanner", app: "Barcode Scanner", operation: "scan a QR code" },
        Row { category: "Scanner", app: "CamScanner", operation: "scan a file" },
        Row { category: "Photo", app: "CameraMX", operation: "take+edit a photo" },
        Row { category: "Media", app: "VPlayer", operation: "play a video" },
    ];

    let mut stock_results = Vec::new();
    let mut maxoid_results = Vec::new();
    for row in &rows {
        let (priv_n, pub_n) = run_stock(row.app);
        stock_results.push((row, priv_n, pub_n));
        println!(
            "{:<10} {:<18} {:<22} {:>8} {:>8}",
            row.category, row.app, row.operation, priv_n, pub_n
        );
        maxoid_results.push((row.app, run_maxoid(row.app)));
    }

    println!("\nUnder stock Android, every app leaves traces other apps can read.");
    println!("\nThe same operations run as Maxoid delegates of 'secrets-app':\n");
    println!("{:<18} {:>8} {:>10}", "App", "public", "confined");
    println!("{}", "-".repeat(40));
    for (app, (pub_n, vol_n)) in &maxoid_results {
        println!("{:<18} {:>8} {:>10}", app, pub_n, vol_n);
        assert_eq!(*pub_n, 0, "{app} must not leak publicly under Maxoid");
    }
    println!("\nZero public traces; everything is confined to Vol(secrets-app),");
    println!("which one Clear-Vol gesture discards.");
}

const MARKER: &str = "xzqv_secret";

/// Runs the app's Table 1 operation as a normal app; returns the number
/// of (private, public) traces found.
fn run_stock(app: &str) -> (usize, usize) {
    let mut sys = MaxoidSystem::boot().expect("boot");
    let observer = install_observer(&mut sys).expect("observer");
    let suspect = run_operation(&mut sys, app, false);
    let report = audit(&mut sys, &observer, &suspect, None, MARKER).expect("audit");
    let priv_n =
        report.traces.iter().filter(|t| matches!(t, TraceLocation::PrivateFile(_))).count();
    (priv_n, report.public_leaks().len())
}

/// Runs the same operation as a delegate of `secrets-app`; returns
/// (public traces, confined traces).
fn run_maxoid(app: &str) -> (usize, usize) {
    let mut sys = MaxoidSystem::boot().expect("boot");
    let observer = install_observer(&mut sys).expect("observer");
    sys.install(
        "secrets-app",
        vec![],
        MaxoidManifest::new().filter(InvocationFilter::action(ACTION_VIEW)),
    )
    .expect("install initiator");
    let _ = sys.launch("secrets-app").expect("launch initiator");
    let suspect = run_operation(&mut sys, app, true);
    let report = audit(&mut sys, &observer, &suspect, Some("secrets-app"), MARKER).expect("audit");
    (report.public_leaks().len(), report.confined().len())
}

/// Performs one app's operation; `confined` runs it as a delegate of
/// `secrets-app` via the launcher gesture. Returns the app's package.
fn run_operation(sys: &mut MaxoidSystem, app: &str, confined: bool) -> String {
    let launch = |sys: &mut MaxoidSystem, pkg: &str| {
        if confined {
            sys.launch_as_delegate(pkg, "secrets-app").expect("delegate launch")
        } else {
            sys.launch(pkg).expect("launch")
        }
    };
    match app {
        "Adobe Reader" => {
            let a = AdobeReader::default();
            install_viewer(sys, &a.pkg).expect("install");
            let pid = launch(sys, &a.pkg);
            a.open(
                sys,
                pid,
                &FileRef::Content {
                    name: format!("{MARKER}.pdf"),
                    data: format!("{MARKER} body").into_bytes(),
                },
            )
            .expect("open");
            a.pkg
        }
        "Kingsoft Office" => {
            let k = KingsoftOffice::default();
            install_viewer(sys, &k.pkg).expect("install");
            let pid = launch(sys, &k.pkg);
            let doc = vpath("/storage/sdcard").join(&format!("{MARKER}.doc")).unwrap();
            sys.kernel
                .write(pid, &doc, format!("{MARKER} doc").as_bytes(), Mode::PUBLIC)
                .expect("seed doc");
            k.open(sys, pid, &doc).expect("open");
            k.pkg
        }
        "Barcode Scanner" => {
            let b = BarcodeScanner::default();
            install_viewer(sys, &b.pkg).expect("install");
            let pid = launch(sys, &b.pkg);
            // The QR payload is the sensitive datum; embed the marker.
            let payload = b.scan(sys, pid, 99).expect("scan");
            // Store a note with the marker in the scanner's history too.
            let hist = vpath("/data/data").join(&b.pkg).unwrap().join("scans.db").unwrap();
            let mut data = sys.kernel.read(pid, &hist).unwrap_or_default();
            data.extend_from_slice(format!("{MARKER} {payload}\n").as_bytes());
            sys.kernel.write(pid, &hist, &data, Mode::PRIVATE).expect("hist");
            b.pkg
        }
        "CamScanner" => {
            let c = CamScanner::default();
            install_viewer(sys, &c.pkg).expect("install");
            let pid = launch(sys, &c.pkg);
            let px = compute::capture_photo(64, 5);
            c.scan_page(sys, pid, MARKER, &px).expect("scan");
            c.pkg
        }
        "CameraMX" => {
            let c = CameraMx::default();
            install_viewer(sys, &c.pkg).expect("install");
            let pid = launch(sys, &c.pkg);
            let photo = c.take_photo(sys, pid, MARKER, 128).expect("photo");
            c.save_edited(sys, pid, &photo).expect("edit");
            c.pkg
        }
        "VPlayer" => {
            let v = VPlayer::default();
            install_viewer(sys, &v.pkg).expect("install");
            let pid = launch(sys, &v.pkg);
            let video = vpath("/storage/sdcard").join(&format!("{MARKER}.mp4")).unwrap();
            sys.kernel.write(pid, &video, b"video bytes", Mode::PUBLIC).expect("seed video");
            v.play(sys, pid, &video).expect("play");
            v.pkg
        }
        other => panic!("unknown app {other}"),
    }
}
