//! Quickstart: the Maxoid model in one run.
//!
//! Boots a device, installs an initiator (Email) and an untrusted viewer,
//! opens a private attachment with the viewer running as a delegate, and
//! walks through every guarantee: S1-S4, the volatile state, commit, and
//! Clear-Vol.
//!
//! Run with: `cargo run -p maxoid-examples --bin quickstart`

use maxoid::manifest::{InvocationFilter, MaxoidManifest};
use maxoid::{AppIntentFilter, Intent, MaxoidSystem};
use maxoid_vfs::{vpath, Mode};

const VIEW: &str = "android.intent.action.VIEW";

fn main() {
    let sys = MaxoidSystem::boot().expect("boot");

    // --- Install apps -------------------------------------------------
    // Email's Maxoid manifest: VIEW intents invoke delegates. No code
    // change to Email is needed for this.
    sys.install("email", vec![], MaxoidManifest::new().filter(InvocationFilter::action(VIEW)))
        .expect("install email");
    sys.install("viewer", vec![AppIntentFilter::new(VIEW, None)], MaxoidManifest::new())
        .expect("install viewer");
    sys.install("spy", vec![], MaxoidManifest::new()).expect("install spy");
    println!("installed: email (initiator), viewer (untrusted), spy (observer)");

    // --- Email receives a private attachment --------------------------
    let email = sys.launch("email").expect("launch email");
    let att = vpath("/data/data/email/attachments/q3_report.pdf");
    sys.kernel
        .mkdir_all(email, &vpath("/data/data/email/attachments"), Mode::PRIVATE)
        .expect("mkdir");
    sys.kernel.write(email, &att, b"CONFIDENTIAL Q3 numbers", Mode::PRIVATE).expect("write");
    println!("email stored private attachment at {att}");

    // --- The user taps VIEW: the viewer becomes email's delegate ------
    let viewer = sys
        .start_activity(Some(email), &Intent::new(VIEW).with_data(att.as_str()))
        .expect("start viewer")
        .pid();
    let ctx = sys.kernel.process(viewer).expect("proc").ctx.clone();
    println!("viewer started: {ctx}");

    // The delegate reads the private attachment (augmented access)...
    let content = sys.kernel.read(viewer, &att).expect("delegate read");
    println!("viewer read {} bytes of Priv(email)", content.len());

    // ...but cannot exfiltrate: network is cut (ENETUNREACH)...
    sys.kernel.net.publish("evil.example", "exfil", vec![]);
    let err = sys.kernel.connect(viewer, "evil.example").expect_err("must fail");
    println!("viewer connect() -> {err}   (S1: no network for delegates)");

    // ...and its public writes are transparently redirected to Vol(email).
    sys.kernel
        .write(viewer, &vpath("/storage/sdcard/copy.pdf"), &content, Mode::PUBLIC)
        .expect("delegate write");
    println!("viewer copied the attachment to /storage/sdcard/copy.pdf (it thinks)");

    // The viewer reads its own write (U2)...
    assert_eq!(sys.kernel.read(viewer, &vpath("/storage/sdcard/copy.pdf")).unwrap(), content);
    // ...the spy sees nothing (S1)...
    let spy = sys.launch("spy").expect("launch spy");
    assert!(!sys.kernel.exists(spy, &vpath("/storage/sdcard/copy.pdf")));
    println!("spy cannot see the copy        (S1: secrecy of the initiator)");
    // ...and email finds it in its volatile state (S2: revertible).
    let vol = sys.volatile_files("email").expect("vol");
    println!("Vol(email) = {:?}", vol.iter().map(|e| e.rel.as_str()).collect::<Vec<_>>());

    // The viewer also modified the attachment in place; email sees both
    // versions (integrity, S2).
    sys.kernel.write(viewer, &att, b"tampered!", Mode::PUBLIC).expect("delegate modify");
    assert_eq!(sys.kernel.read(email, &att).unwrap(), b"CONFIDENTIAL Q3 numbers");
    let tmp_att = vpath("/data/data/email/tmp/attachments/q3_report.pdf");
    assert_eq!(sys.kernel.read(email, &tmp_att).unwrap(), b"tampered!");
    println!("email still sees the original; the edit sits in {tmp_att}");

    // Email commits nothing and discards the delegate's side effects.
    let removed = sys.clear_vol("email").expect("clear-vol");
    println!("Clear-Vol(email) discarded {removed} volatile files");
    assert!(sys.volatile_files("email").unwrap().is_empty());

    // S3/S4: email cannot read or write the viewer's private state.
    let viewer_priv = vpath("/data/data/viewer/secrets.db");
    assert!(sys.kernel.read(email, &viewer_priv).is_err());
    println!("email cannot touch Priv(viewer)  (S3/S4: delegate protection)");

    println!("\nquickstart OK — all guarantees held");
}
