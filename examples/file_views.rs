//! Regenerates Figure 4 of the paper: the views of files for `A`, `B^A`
//! and an unrelated app `X`, showing unilateral copy-on-write.
//!
//! Run with: `cargo run -p maxoid-examples --bin file_views`

use maxoid::manifest::MaxoidManifest;
use maxoid::MaxoidSystem;
use maxoid_vfs::{vpath, Mode, VPath};

fn main() {
    let sys = MaxoidSystem::boot().expect("boot");
    sys.install("A", vec![], MaxoidManifest::new().private_ext_dir("data/A")).expect("install A");
    sys.install("B", vec![], MaxoidManifest::new().private_ext_dir("data/B")).expect("install B");
    sys.install("X", vec![], MaxoidManifest::new()).expect("install X");

    let a = sys.launch("A").expect("launch A");
    let x = sys.launch("X").expect("launch X");

    // Setup: A's private file b; public file c.
    let file_b = vpath("/storage/sdcard/data/A/b");
    let file_c = vpath("/storage/sdcard/c");
    sys.kernel.write(a, &file_b, b"b (original)", Mode::PUBLIC).expect("write b");
    sys.kernel.write(x, &file_c, b"c (original)", Mode::PUBLIC).expect("write c");

    let b_a = sys.launch_as_delegate("B", "A").expect("start B^A");
    println!("Scenario: A wants B^A to edit file b; B^A also touches c.\n");

    dump(&sys, "before B^A writes", &[(a, "A"), (b_a, "B^A"), (x, "X")], &[&file_b, &file_c]);

    // B^A edits b and has a side change on c.
    sys.kernel.write(b_a, &file_b, b"b (edited by B^A)", Mode::PUBLIC).expect("edit b");
    sys.kernel.write(b_a, &file_c, b"c (side change)", Mode::PUBLIC).expect("edit c");

    dump(&sys, "after B^A writes", &[(a, "A"), (b_a, "B^A"), (x, "X")], &[&file_b, &file_c]);

    // A's volatile view holds the updated versions under tmp.
    println!("A's view of Vol(A):");
    for p in ["/storage/sdcard/tmp/data/A/b", "/storage/sdcard/tmp/c"] {
        let content = sys.kernel.read(a, &vpath(p)).expect("vol read");
        println!("  {p:<36} = {:?}", String::from_utf8_lossy(&content));
    }

    // Render the Table 2 mount tables for A and B^A.
    let ma = sys.manifest_of(&maxoid::AppId::new("A")).unwrap();
    let mb = sys.manifest_of(&maxoid::AppId::new("B")).unwrap();
    let bm = sys.branch_manager();
    println!("\nMount table for A (initiator):");
    print!(
        "{}",
        maxoid::BranchManager::render_mount_table(&bm.initiator_namespace("A", &ma).unwrap())
    );
    println!("\nMount table for B^A (delegate) — compare with the paper's Table 2:");
    print!(
        "{}",
        maxoid::BranchManager::render_mount_table(
            &bm.delegate_namespace("B", &mb, "A", &ma).unwrap()
        )
    );
}

fn dump(sys: &MaxoidSystem, label: &str, who: &[(maxoid::Pid, &str)], files: &[&VPath]) {
    println!("--- {label} ---");
    for (pid, name) in who {
        for f in files {
            match sys.kernel.read(*pid, f) {
                Ok(data) => {
                    println!("  {name:<4} sees {f} = {:?}", String::from_utf8_lossy(&data))
                }
                Err(e) => println!("  {name:<4} sees {f} -> {e}"),
            }
        }
    }
    println!();
}
